// Quickstart: build a small attributed graph, write a query template with
// range and edge variables, define fairness groups, and generate an
// ε-Pareto set of query instances with BiQGen.
//
//   ./quickstart

#include <cstdio>

#include "core/bi_qgen.h"
#include "core/groups.h"
#include "graph/graph_builder.h"
#include "query/domains.h"

using namespace fairsqg;

int main() {
  // 1. An attributed graph: users recommending candidates, orgs they work
  //    at. Candidates carry a 'gender' attribute that defines the groups.
  GraphBuilder builder;
  NodeId orgs[2];
  for (int i = 0; i < 2; ++i) {
    orgs[i] = builder.AddNode("org");
    builder.SetAttr(orgs[i], "employees", AttrValue(int64_t{500 * (i + 1)}));
  }
  NodeId candidates[8];
  for (int i = 0; i < 8; ++i) {
    candidates[i] = builder.AddNode("candidate");
    builder.SetAttr(candidates[i], "gender",
                    AttrValue(std::string(i % 2 == 0 ? "female" : "male")));
    builder.SetAttr(candidates[i], "skill",
                    AttrValue(std::string(i % 3 == 0 ? "ml" : "databases")));
  }
  for (int i = 0; i < 12; ++i) {
    NodeId user = builder.AddNode("user");
    builder.SetAttr(user, "yearsOfExp", AttrValue(int64_t{2 + (i * 3) % 14}));
    builder.AddEdge(user, candidates[i % 8], "recommend");
    builder.AddEdge(user, orgs[i % 2], "worksAt");
  }
  Graph graph = std::move(builder).Build().ValueOrDie();
  std::printf("graph: %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  // 2. A query template: find candidates recommended by a user with at
  //    least x0 years of experience; optionally the user must work at an
  //    org with at least x1 employees.
  QueryTemplate tmpl(graph.schema_ptr());
  QNodeId cand = tmpl.AddNode("candidate");
  QNodeId user = tmpl.AddNode("user");
  QNodeId org = tmpl.AddNode("org");
  tmpl.SetOutputNode(cand);
  tmpl.AddRangeLiteral(user, "yearsOfExp", CompareOp::kGe);   // x0
  tmpl.AddRangeLiteral(org, "employees", CompareOp::kGe);     // x1
  tmpl.AddEdge(user, cand, "recommend");
  tmpl.AddVariableEdge(user, org, "worksAt");                 // edge var e0
  std::printf("\n%s", tmpl.ToString().c_str());

  // 3. Variable domains from the graph's active domains.
  VariableDomains domains = VariableDomains::Build(graph, tmpl).ValueOrDie();

  // 4. Gender groups over candidates with an equal coverage target of 2.
  LabelId cand_label = graph.schema().NodeLabelId("candidate");
  AttrId gender = graph.schema().AttrIdOf("gender");
  GroupSet groups =
      GroupSet::FromCategoricalAttr(graph, cand_label, gender, 2, 2)
          .ValueOrDie();

  // 5. Generate an ε-Pareto set of query instances.
  QGenConfig config;
  config.graph = &graph;
  config.tmpl = &tmpl;
  config.domains = &domains;
  config.groups = &groups;
  config.epsilon = 0.1;
  QGenResult result = BiQGen::Run(config).ValueOrDie();

  std::printf("\ngenerated %zu suggested queries (verified %zu instances):\n",
              result.pareto.size(), result.stats.verified);
  for (const EvaluatedPtr& q : result.pareto) {
    std::printf("  %s -> %zu matches, diversity=%.3f, coverage f=%.1f (",
                q->inst.ToString(tmpl, domains).c_str(), q->matches.size(),
                q->obj.diversity, q->obj.coverage);
    for (size_t i = 0; i < q->group_coverage.size(); ++i) {
      std::printf("%s%s=%zu", i > 0 ? ", " : "", groups.name(i).c_str(),
                  q->group_coverage[i]);
    }
    std::printf(")\n");
  }
  return 0;
}
