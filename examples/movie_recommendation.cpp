// Movie recommendation with genre fairness (the paper's Fig. 12 case
// study): over the DBP-like movie knowledge graph, compare the user
// preferences served by RfQGen (diversity-leaning) and BiQGen
// (coverage-leaning), and print the recommended queries.
//
//   ./movie_recommendation [--scale 0.2] [--groups 2] [--eps 0.05]

#include <cstdio>

#include "common/flags.h"
#include "core/bi_qgen.h"
#include "core/indicators.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"
#include "workload/scenario.h"

using namespace fairsqg;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineDouble("scale", 0.2, "graph scale multiplier");
  flags.DefineInt64("groups", 2, "number of genre groups");
  flags.DefineDouble("eps", 0.05, "epsilon tolerance");
  flags.DefineInt64("seed", 42, "dataset seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  ScenarioOptions options;
  options.dataset = "dbp";
  options.scale = flags.GetDouble("scale");
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.num_edges = 4;
  options.num_range_vars = 2;
  options.num_edge_vars = 1;
  options.num_groups = static_cast<size_t>(flags.GetInt64("groups"));
  options.coverage_fraction = 0.5;
  Result<Scenario> scenario_or = MakeScenario(options);
  if (!scenario_or.ok()) {
    std::fprintf(stderr, "%s\n", scenario_or.status().ToString().c_str());
    return 1;
  }
  Scenario scenario = std::move(scenario_or).ValueOrDie();

  std::printf("movie graph: %zu nodes, %zu edges\n",
              scenario.dataset.graph.num_nodes(),
              scenario.dataset.graph.num_edges());
  std::printf("\nsearch template:\n%s", scenario.tmpl->ToString().c_str());
  std::printf("genre groups:");
  for (size_t i = 0; i < scenario.groups->num_groups(); ++i) {
    std::printf(" %s(c=%zu)", scenario.groups->name(i).c_str(),
                scenario.groups->constraint(i));
  }
  std::printf("\n");

  QGenConfig config = scenario.MakeConfig(flags.GetDouble("eps"));
  QGenResult exact = Kungs::Run(config).ValueOrDie();
  QGenResult rf = RfQGen::Run(config).ValueOrDie();
  QGenResult bi = BiQGen::Run(config).ValueOrDie();
  Objectives maxima = MaxObjectives(exact.pareto);

  auto describe = [&](const char* name, const QGenResult& r) {
    std::printf("\n%s — %zu suggestions, %zu verifications, %.2fs\n", name,
                r.pareto.size(), r.stats.verified, r.stats.total_seconds);
    std::printf("  I_R diversity-leaning (l=0.1): %.3f | coverage-leaning "
                "(l=0.9): %.3f\n",
                RIndicator(r.pareto, 0.1, maxima.diversity, maxima.coverage),
                RIndicator(r.pareto, 0.9, maxima.diversity, maxima.coverage));
    size_t shown = 0;
    for (const EvaluatedPtr& q : r.pareto) {
      if (++shown > 4) break;
      std::printf("  %s: %zu movies, delta=%.2f, f=%.1f (",
                  q->inst.ToString(*scenario.tmpl, *scenario.domains).c_str(),
                  q->matches.size(), q->obj.diversity, q->obj.coverage);
      for (size_t i = 0; i < q->group_coverage.size(); ++i) {
        std::printf("%s%s=%zu", i > 0 ? " " : "",
                    scenario.groups->name(i).c_str(), q->group_coverage[i]);
      }
      std::printf(")\n");
    }
  };
  std::printf("\nexact Pareto set: %zu instances (Kungs over %zu verified)\n",
              exact.pareto.size(), exact.stats.verified);
  describe("RfQGen", rf);
  describe("BiQGen", bi);
  return 0;
}
