// Talent search (the paper's Example 1, Fig. 1): over the LKI-like
// professional network, suggest revisions of a recruiter's query so the
// answer covers male and female directors with an equal target while
// staying diversified in majors.
//
//   ./talent_search [--scale 0.2] [--seed 42] [--eps 0.05] [--coverage 6]

#include <cstdio>
#include <map>
#include <set>

#include "common/flags.h"
#include "core/bi_qgen.h"
#include "core/fairness_rules.h"
#include "core/verifier.h"
#include "workload/social_net_generator.h"

using namespace fairsqg;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineDouble("scale", 0.2, "graph scale multiplier");
  flags.DefineInt64("seed", 42, "generator seed");
  flags.DefineDouble("eps", 0.05, "epsilon tolerance");
  flags.DefineInt64("coverage", 6, "coverage target per gender group");
  flags.DefineString("rule", "eo",
                     "fairness rule: eo (equal opportunity) | di (80% rule)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // The professional network G of Example 1.
  SocialNetParams params;
  double scale = flags.GetDouble("scale");
  params.num_users = static_cast<size_t>(5000 * scale);
  params.num_directors = static_cast<size_t>(600 * scale);
  params.num_orgs = static_cast<size_t>(250 * scale);
  params.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto schema = std::make_shared<Schema>();
  Graph graph = GenerateSocialNetwork(params, schema).ValueOrDie();
  std::printf("professional network: %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  // The Fig. 1 template: directors u_o recommended by two users; the first
  // has yearsOfExp >= x1 and works at an org with employees >= x3; the
  // second recommender and their worksAt edge are optional (edge vars).
  QueryTemplate tmpl(schema);
  QNodeId uo = tmpl.AddNode("director");
  QNodeId u1 = tmpl.AddNode("user");
  QNodeId u2 = tmpl.AddNode("user");
  QNodeId u4 = tmpl.AddNode("org");
  tmpl.SetOutputNode(uo);
  tmpl.AddRangeLiteral(u1, "yearsOfExp", CompareOp::kGe);   // x1
  tmpl.AddRangeLiteral(u2, "yearsOfExp", CompareOp::kGe);   // x2
  tmpl.AddRangeLiteral(u4, "employees", CompareOp::kGe);    // x3
  tmpl.AddEdge(u1, uo, "recommend");
  tmpl.AddEdge(u1, u4, "worksAt");
  tmpl.AddVariableEdge(u2, uo, "recommend");                // xe1
  tmpl.AddVariableEdge(u2, u4, "worksAt");                  // xe2
  std::printf("\n%s", tmpl.ToString().c_str());

  VariableDomains domains =
      VariableDomains::Build(graph, tmpl).ValueOrDie().Coarsened(6);

  // Equal-opportunity gender groups over directors.
  size_t c = static_cast<size_t>(flags.GetInt64("coverage"));
  LabelId director = schema->NodeLabelId("director");
  AttrId gender = schema->AttrIdOf("gender");
  Result<GroupSet> groups_or =
      GroupSet::FromCategoricalAttr(graph, director, gender, 2, c);
  if (!groups_or.ok()) {
    std::fprintf(stderr, "groups: %s\n", groups_or.status().ToString().c_str());
    return 1;
  }
  GroupSet groups = std::move(groups_or).ValueOrDie();
  if (flags.GetString("rule") == "di") {
    // Disparate-impact constraints (the "80% rule" of Section III-B): the
    // minority group's target is at least 0.8x the majority's, within the
    // same total budget 2c.
    Result<GroupSet> di = DisparateImpactConstraints(graph.num_nodes(), groups,
                                                     2 * c, 0.8);
    if (!di.ok()) {
      std::fprintf(stderr, "80%% rule: %s\n", di.status().ToString().c_str());
      return 1;
    }
    groups = std::move(di).ValueOrDie();
    std::printf("80%% rule targets: %s>=%zu, %s>=%zu\n",
                groups.name(0).c_str(), groups.constraint(0),
                groups.name(1).c_str(), groups.constraint(1));
  } else if (flags.GetString("rule") != "eo") {
    std::fprintf(stderr, "unknown --rule (use eo or di)\n");
    return 1;
  }

  QGenConfig config;
  config.graph = &graph;
  config.tmpl = &tmpl;
  config.domains = &domains;
  config.groups = &groups;
  config.epsilon = flags.GetDouble("eps");

  // The recruiter's initial query: the most relaxed instance.
  InstanceVerifier verifier(config);
  EvaluatedPtr initial = verifier.Verify(Instantiation::MostRelaxed(tmpl));
  std::printf("\ninitial query: %zu candidates — %s=%zu, %s=%zu (target %zu each)\n",
              initial->matches.size(), groups.name(0).c_str(),
              initial->group_coverage[0], groups.name(1).c_str(),
              initial->group_coverage[1], c);
  if (!initial->feasible) {
    std::printf("initial query cannot cover the groups; lower --coverage\n");
    return 1;
  }

  QGenResult result = BiQGen::Run(config).ValueOrDie();
  std::printf("\nsuggested revisions (%zu queries, %zu instances verified):\n",
              result.pareto.size(), result.stats.verified);
  for (const EvaluatedPtr& q : result.pareto) {
    // Major spread of the answer (the diversity the recruiter asked for).
    std::set<std::string> majors;
    AttrId major = schema->AttrIdOf("major");
    for (NodeId v : q->matches) {
      const AttrValue* m = graph.GetAttr(v, major);
      if (m != nullptr) majors.insert(m->as_string());
    }
    std::printf("  %s\n    %zu candidates across %zu majors; %s=%zu %s=%zu; "
                "delta=%.2f f=%.1f\n",
                q->inst.ToString(tmpl, domains).c_str(), q->matches.size(),
                majors.size(), groups.name(0).c_str(), q->group_coverage[0],
                groups.name(1).c_str(), q->group_coverage[1], q->obj.diversity,
                q->obj.coverage);
  }
  return 0;
}
