// RPQ exploration with fairness and diversity (the paper's two future-work
// topics combined): evaluate a family of regular path queries over the
// citation graph, score each answer set with the library's diversity and
// topic-coverage measures, and keep an ε-Pareto set of path expressions —
// the box-archive machinery is query-class-agnostic.
//
//   ./rpq_exploration [--scale 0.1] [--coverage 6] [--eps 0.1]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/measures.h"
#include "core/pareto_archive.h"
#include "rpq/rpq_engine.h"
#include "workload/datasets.h"

using namespace fairsqg;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineDouble("scale", 0.1, "graph scale multiplier");
  flags.DefineInt64("coverage", 3, "coverage target per topic group");
  flags.DefineDouble("eps", 0.1, "epsilon tolerance");
  flags.DefineInt64("seed", 42, "dataset seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Result<Dataset> d_or = MakeDataset("cite", flags.GetDouble("scale"),
                                     static_cast<uint64_t>(flags.GetInt64("seed")));
  if (!d_or.ok()) {
    std::fprintf(stderr, "%s\n", d_or.status().ToString().c_str());
    return 1;
  }
  Dataset d = std::move(d_or).ValueOrDie();
  std::printf("citation graph: %zu nodes, %zu edges\n", d.graph.num_nodes(),
              d.graph.num_edges());

  // Sources: recent well-cited papers.
  NodeSet sources;
  AttrId cites_attr = d.schema->AttrIdOf("numberOfCitations");
  for (NodeId v : d.graph.NodesWithLabel(d.output_label)) {
    const AttrValue* c = d.graph.GetAttr(v, cites_attr);
    if (c != nullptr && c->as_int() >= 8) sources.push_back(v);
  }
  std::printf("sources: %zu papers with >= 8 citations\n", sources.size());

  // Candidate path expressions, from narrow to broad exploration.
  const char* expressions[] = {
      "cites",
      "cites/cites",
      "cites|^cites",
      "cites/(cites)?",
      "^cites",
      "(cites|^cites)/cites",
      "cites/cites/cites",
      "^cites/^cites",
  };

  Result<GroupSet> groups_or = GroupSet::FromCategoricalAttr(
      d.graph, d.output_label, d.schema->AttrIdOf("topic"), 3,
      static_cast<size_t>(flags.GetInt64("coverage")));
  if (!groups_or.ok()) {
    std::fprintf(stderr, "groups: %s\n", groups_or.status().ToString().c_str());
    return 1;
  }
  GroupSet groups = std::move(groups_or).ValueOrDie();
  DiversityEvaluator diversity(d.graph, d.output_label, DiversityConfig{});
  CoverageEvaluator coverage(groups);
  RpqEngine engine(d.graph);

  ParetoArchive archive(flags.GetDouble("eps"));
  std::vector<std::pair<std::string, EvaluatedPtr>> scored;
  for (const char* text : expressions) {
    Result<PathRegex> regex = ParsePathRegex(text, d.schema.get());
    if (!regex.ok()) {
      std::fprintf(stderr, "bad expression '%s': %s\n", text,
                   regex.status().ToString().c_str());
      continue;
    }
    NodeSet targets = engine.ReachableFromAny(*regex, sources);
    // Only paper-typed targets are scored (authors are a different label).
    NodeSet papers;
    for (NodeId v : targets) {
      if (d.graph.node_label(v) == d.output_label) papers.push_back(v);
    }
    auto eval = std::make_shared<EvaluatedInstance>();
    eval->obj.diversity = diversity.Diversity(papers);
    CoverageResult cov = coverage.Evaluate(papers);
    eval->obj.coverage = cov.value;
    eval->feasible = cov.feasible;
    eval->group_coverage = std::move(cov.per_group);
    eval->matches = std::move(papers);
    std::printf("  %-24s -> %5zu papers, delta=%8.2f, f=%5.1f%s\n", text,
                eval->matches.size(), eval->obj.diversity, eval->obj.coverage,
                eval->feasible ? "" : " (infeasible)");
    if (eval->feasible) {
      archive.Update(eval);
      scored.emplace_back(text, std::move(eval));
    }
  }

  std::printf("\neps-Pareto path expressions (eps=%.2f):\n",
              flags.GetDouble("eps"));
  for (const EvaluatedPtr& m : archive.SortedEntries()) {
    for (const auto& [text, eval] : scored) {
      if (eval == m) {
        std::printf("  %-24s delta=%8.2f f=%5.1f (", text.c_str(),
                    m->obj.diversity, m->obj.coverage);
        for (size_t i = 0; i < m->group_coverage.size(); ++i) {
          std::printf("%s%s=%zu", i > 0 ? ", " : "", groups.name(i).c_str(),
                      m->group_coverage[i]);
        }
        std::printf(")\n");
      }
    }
  }
  return 0;
}
