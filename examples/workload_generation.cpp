// Query-workload generation for benchmarking (Section IV-C): stream random
// instantiations of a citation-graph template through OnlineQGen and keep a
// fixed-size, high-quality query workload with topic-coverage guarantees.
//
//   ./workload_generation [--k 10] [--window 40] [--stream 200]

#include <cstdio>

#include "common/flags.h"
#include "core/online_qgen.h"
#include "workload/instance_stream.h"
#include "workload/scenario.h"
#include "workload/workload_io.h"

using namespace fairsqg;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt64("k", 10, "workload size to maintain");
  flags.DefineInt64("window", 40, "sliding-window cache size");
  flags.DefineInt64("stream", 200, "number of streamed instances");
  flags.DefineDouble("scale", 0.15, "graph scale multiplier");
  flags.DefineInt64("seed", 42, "dataset seed");
  flags.DefineString("out", "", "optional path to save the workload file");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  ScenarioOptions options;
  options.dataset = "cite";
  options.scale = flags.GetDouble("scale");
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.num_groups = 3;
  options.coverage_fraction = 0.5;
  Result<Scenario> scenario_or = MakeScenario(options);
  if (!scenario_or.ok()) {
    std::fprintf(stderr, "%s\n", scenario_or.status().ToString().c_str());
    return 1;
  }
  Scenario scenario = std::move(scenario_or).ValueOrDie();
  std::printf("citation graph: %zu nodes, %zu edges\n",
              scenario.dataset.graph.num_nodes(),
              scenario.dataset.graph.num_edges());
  std::printf("\nworkload template:\n%s", scenario.tmpl->ToString().c_str());

  QGenConfig config = scenario.MakeConfig(0.01);
  OnlineConfig online;
  online.k = static_cast<size_t>(flags.GetInt64("k"));
  online.window = static_cast<size_t>(flags.GetInt64("window"));
  online.initial_epsilon = 0.01;
  OnlineQGen generator(config, online);

  InstanceStream stream(*scenario.tmpl, *scenario.domains,
                        options.seed ^ 0x9e37);
  size_t n = static_cast<size_t>(flags.GetInt64("stream"));
  Instantiation inst;
  double total_delay = 0;
  for (size_t i = 0; i < n; ++i) {
    stream.Next(&inst);
    total_delay += generator.Process(inst);
    if ((i + 1) % 50 == 0) {
      std::printf("after %4zu instances: |workload|=%zu eps=%.4f avg delay "
                  "%.2f ms\n",
                  i + 1, generator.size(), generator.epsilon(),
                  1e3 * total_delay / static_cast<double>(i + 1));
    }
  }

  if (!flags.GetString("out").empty()) {
    Workload workload = MakeWorkload(*scenario.tmpl, generator.Current());
    if (Status s = WriteWorkloadFile(workload, flags.GetString("out")); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nsaved workload to %s\n", flags.GetString("out").c_str());
  }

  std::printf("\nfinal benchmark workload (%zu queries, eps=%.4f):\n",
              generator.size(), generator.epsilon());
  for (const EvaluatedPtr& q : generator.Current()) {
    std::printf("  %s -> %zu papers, delta=%.2f, f=%.1f\n",
                q->inst.ToString(*scenario.tmpl, *scenario.domains).c_str(),
                q->matches.size(), q->obj.diversity, q->obj.coverage);
  }
  return 0;
}
