// Table II: overview of the benchmark graphs (the paper's dataset summary),
// generated at the current bench scale.

#include <cstdio>

#include "bench_common.h"
#include "graph/graph_stats.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Table II", "Overview of benchmark graphs",
                    "synthetic stand-ins at scale " + Fmt(BenchScale(), 2) +
                        " (paper: DBP 1M/3.18M, LKI 3M/26M, Cite 4.9M/46M)");
  Table table({"dataset", "|V|", "|E|", "node-labels", "edge-labels",
               "avg #attr", "avg deg", "max deg", "max |adom|", "|P| max",
               "output label"});
  for (const char* name : {"dbp", "lki", "cite"}) {
    Result<Dataset> d = MakeDataset(name, BenchScale(), 42);
    if (!d.ok()) {
      std::fprintf(stderr, "%s\n", d.status().ToString().c_str());
      return 1;
    }
    GraphStats s = ComputeGraphStats(d->graph);
    table.AddRow({name, std::to_string(s.num_nodes), std::to_string(s.num_edges),
                  std::to_string(s.num_node_labels),
                  std::to_string(s.num_edge_labels), Fmt(s.avg_attrs_per_node, 2),
                  Fmt(s.avg_degree, 2), std::to_string(s.max_degree),
                  std::to_string(s.max_active_domain),
                  std::to_string(d->max_groups),
                  d->schema->NodeLabelName(d->output_label)});
  }
  table.Print();

  std::printf("\nlabel histograms (top 5):\n");
  for (const char* name : {"dbp", "lki", "cite"}) {
    Dataset d = MakeDataset(name, BenchScale(), 42).ValueOrDie();
    GraphStats s = ComputeGraphStats(d.graph);
    std::printf("  %s:", name);
    for (size_t i = 0; i < s.label_histogram.size() && i < 5; ++i) {
      std::printf(" %s=%zu", s.label_histogram[i].first.c_str(),
                  s.label_histogram[i].second);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
