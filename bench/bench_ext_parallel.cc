// Extension benchmark (Section VI future work): thread scaling of the
// parallel generators on the DBP scenario.
//
// Two parts:
//  1. a speedup report comparing each sequential path against its parallel
//     counterpart at several thread counts — wall-clock speedup, the
//     CPU-vs-wall verification split (GenStats reports both axes so the
//     comparison is apples-to-apples), and a mutual ε-cover check of the
//     Pareto output;
//  2. google-benchmark timings for the same configurations.
//
// Note: wall-clock speedups only materialize with > 1 hardware thread;
// on a single-core host the report still validates equivalence.

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/parallel_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario() {
  static Scenario* scenario = [] {
    Result<Scenario> s = MakeScenario(DefaultOptions("dbp"));
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    return new Scenario(std::move(s).ValueOrDie());
  }();
  return *scenario;
}

/// Every member of `covered` ε-dominated by some member of `covering`.
bool EpsilonCovers(const std::vector<EvaluatedPtr>& covering,
                   const std::vector<EvaluatedPtr>& covered, double epsilon) {
  for (const EvaluatedPtr& x : covered) {
    bool ok = false;
    for (const EvaluatedPtr& m : covering) {
      if (EpsilonDominates(m->obj, x->obj, epsilon + 1e-9)) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

QGenResult BestOf(const std::function<Result<QGenResult>()>& run, int reps) {
  QGenResult best;
  for (int i = 0; i < reps; ++i) {
    Result<QGenResult> r = run();
    FAIRSQG_CHECK(r.ok()) << r.status().ToString();
    if (i == 0 || r->stats.total_seconds < best.stats.total_seconds) {
      best = std::move(r).ValueOrDie();
    }
  }
  return best;
}

void AddRow(Table* table, const std::string& name, size_t threads,
            const QGenResult& r, double seq_seconds,
            const QGenResult& seq_result, double epsilon) {
  bool covers = EpsilonCovers(r.pareto, seq_result.pareto, epsilon) &&
                EpsilonCovers(seq_result.pareto, r.pareto, epsilon);
  table->AddRow({name, std::to_string(threads), Fmt(r.stats.total_seconds),
                 Fmt(r.stats.verify_cpu_seconds),
                 Fmt(r.stats.verify_wall_seconds),
                 Fmt(seq_seconds / r.stats.total_seconds, 2) + "x",
                 std::to_string(r.stats.verified),
                 std::to_string(r.pareto.size()), covers ? "yes" : "NO",
                 std::to_string(r.stats.stolen)});
}

void PrintSpeedupReport() {
  const Scenario& scenario = GetScenario();
  QGenConfig config = scenario.MakeConfig(0.01);
  constexpr int kReps = 3;

  PrintFigureHeader(
      "Ext-Parallel", "thread scaling of ParallelQGen and parallel Bi-QGen",
      "DBP scenario, eps=0.01; verify time split into CPU (sum over "
      "workers) and wall (max worker) axes");

  Table table({"algorithm", "threads", "total_s", "verify_cpu_s",
               "verify_wall_s", "speedup", "verified", "|pareto|",
               "eps-cover", "stolen"});

  QGenResult enum_seq = BestOf([&] { return EnumQGen::Run(config); }, kReps);
  AddRow(&table, "EnumQGen (seq)", 1, enum_seq, enum_seq.stats.total_seconds,
         enum_seq, config.epsilon);
  for (size_t threads : {2, 4, 8}) {
    QGenResult r =
        BestOf([&] { return ParallelQGen::Run(config, threads); }, kReps);
    AddRow(&table, "ParallelQGen", threads, r, enum_seq.stats.total_seconds,
           enum_seq, config.epsilon);
  }

  QGenResult bi_seq = BestOf([&] { return BiQGen::Run(config); }, kReps);
  AddRow(&table, "BiQGen (seq)", 1, bi_seq, bi_seq.stats.total_seconds, bi_seq,
         config.epsilon);
  for (size_t threads : {2, 4, 8}) {
    QGenResult r =
        BestOf([&] { return BiQGen::RunParallel(config, threads); }, kReps);
    AddRow(&table, "BiQGen (parallel)", threads, r, bi_seq.stats.total_seconds,
           bi_seq, config.epsilon);
  }
  table.Print();
}

void BM_Sequential(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  for (auto _ : state) {
    Result<QGenResult> r = EnumQGen::Run(config);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_Sequential)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Parallel(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Result<QGenResult> r = ParallelQGen::Run(config, threads);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BiSequential(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  for (auto _ : state) {
    Result<QGenResult> r = BiQGen::Run(config);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_BiSequential)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BiParallel(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Result<QGenResult> r = BiQGen::RunParallel(config, threads);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_BiParallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::PrintSpeedupReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
