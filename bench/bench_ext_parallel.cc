// Extension benchmark (Section VI future work): thread scaling of
// ParallelQGen against the sequential EnumQGen on the DBP scenario.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/enum_qgen.h"
#include "core/parallel_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario() {
  static Scenario* scenario = [] {
    Result<Scenario> s = MakeScenario(DefaultOptions("dbp"));
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    return new Scenario(std::move(s).ValueOrDie());
  }();
  return *scenario;
}

void BM_Sequential(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  for (auto _ : state) {
    Result<QGenResult> r = EnumQGen::Run(config);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_Sequential)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Parallel(benchmark::State& state) {
  QGenConfig config = GetScenario().MakeConfig(0.01);
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Result<QGenResult> r = ParallelQGen::Run(config, threads);
    FAIRSQG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->pareto.size());
  }
}
BENCHMARK(BM_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace fairsqg::bench

BENCHMARK_MAIN();
