// Scalability (Section V's feasibility claim: "it takes BiQGen 78s over
// LKI with 3M nodes and 26M edges"): runtime of RfQGen/BiQGen as the LKI
// graph grows, versus the enumeration baseline. The paper's claim is
// near-linear growth in graph size for the pruned algorithms.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Scalability", "Runtime vs graph scale (LKI)",
                    "Fig 9(a) setting; scale sweep (override list with "
                    "FAIRSQG_BENCH_SCALE for a single point)");
  Table table({"scale", "|V|", "|E|", "|I(Q)|", "Enum (s)", "RfQGen (s)",
               "BiQGen (s)"});
  for (double scale : {0.05, 0.1, 0.2, 0.4}) {
    ScenarioOptions options = DefaultOptions("lki");
    options.scale = scale;
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scale=%.2f: %s\n", scale,
                   scenario.status().ToString().c_str());
      continue;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    QGenResult enum_r = EnumQGen::Run(config).ValueOrDie();
    QGenResult rf = RfQGen::Run(config).ValueOrDie();
    QGenResult bi = BiQGen::Run(config).ValueOrDie();
    table.AddRow({Fmt(scale, 2),
                  std::to_string(scenario->dataset.graph.num_nodes()),
                  std::to_string(scenario->dataset.graph.num_edges()),
                  std::to_string(scenario->domains->InstanceSpaceSize(
                      *scenario->tmpl)),
                  Fmt(enum_r.stats.total_seconds, 3),
                  Fmt(rf.stats.total_seconds, 3),
                  Fmt(bi.stats.total_seconds, 3)});
  }
  table.Print();
  std::printf(
      "\npaper shape: generation stays feasible as the graph grows; the\n"
      "pruned algorithms track well below the enumeration baseline.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
