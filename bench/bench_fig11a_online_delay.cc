// Fig. 11(a): OnlineQGen delay time per batch of streamed instances on
// LKI, varying the result size k (5..20), the window size w (10, 40) and
// the batch size (40, 80). Paper: larger k and smaller w lower the delay.

#include <cstdio>

#include "bench_common.h"
#include "core/online_qgen.h"
#include "workload/instance_stream.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 11(a)", "OnlineQGen delay per batch (LKI)",
                    "k in {5,10,15,20}, w in {10,40}, batch in {40,80}");
  ScenarioOptions options = DefaultOptions("lki");
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  QGenConfig config = scenario->MakeConfig(0.01);

  Table table({"k", "w", "batch", "batch delay (ms)", "per-inst (ms)",
               "final eps", "|set|"});
  for (size_t k : {5, 10, 15, 20}) {
    for (size_t w : {10, 40}) {
      for (size_t batch : {40, 80}) {
        OnlineConfig online;
        online.k = k;
        online.window = w;
        online.initial_epsilon = 0.01;
        OnlineQGen gen(config, online);
        InstanceStream stream(*scenario->tmpl, *scenario->domains, 7);
        Instantiation inst;
        double total = 0;
        for (size_t i = 0; i < batch; ++i) {
          stream.Next(&inst);
          total += gen.Process(inst);
        }
        table.AddRow({std::to_string(k), std::to_string(w),
                      std::to_string(batch), Fmt(total * 1e3, 1),
                      Fmt(total * 1e3 / static_cast<double>(batch), 2),
                      Fmt(gen.epsilon(), 4), std::to_string(gen.size())});
      }
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: delay scales with the batch size; larger k and\n"
      "smaller w reduce maintenance work per instance.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
