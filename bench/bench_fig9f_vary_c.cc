// Fig. 9(f): I_R vs the coverage requirement C on DBP. Paper setting:
// |Q(u_o)|=4, |P|=3, |X|=3, lambda_R=0.5, equal-opportunity split of C.
// We sweep the coverage calibration fraction, which raises the per-group
// target c the same way the paper raises C.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 9(f)", "I_R vs coverage requirement C (DBP)",
                    "|Q|=4, |P|=3, |X|=3, lambda_R=0.5");
  Table table({"frac", "C", "feasible", "EnumQGen I_R", "RfQGen I_R",
               "BiQGen I_R"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    ScenarioOptions options = DefaultOptions("dbp");
    options.num_edges = 4;
    options.num_groups = 3;
    options.coverage_fraction = frac;
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "frac=%.2f: %s\n", frac,
                   scenario.status().ToString().c_str());
      continue;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    Truth truth = ComputeTruth(config).ValueOrDie();
    auto r_of = [&](const QGenResult& r) {
      return Fmt(RIndicator(r.pareto, 0.5, truth.maxima.diversity,
                            truth.maxima.coverage),
                 3);
    };
    table.AddRow({Fmt(frac, 2),
                  std::to_string(scenario->groups->total_constraint()),
                  std::to_string(truth.feasible.size()),
                  r_of(EnumQGen::Run(config).ValueOrDie()),
                  r_of(RfQGen::Run(config).ValueOrDie()),
                  r_of(BiQGen::Run(config).ValueOrDie())});
  }
  table.Print();
  std::printf(
      "\npaper shape: raising the required coverage leaves fewer feasible\n"
      "instances, reducing the chance of finding eps-dominating instances\n"
      "(the feasible count drops as C grows; I_R stays flat or dips).\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
