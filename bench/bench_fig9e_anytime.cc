// Fig. 9(e): "any time" quality under user preference — I_R of the
// maintained set as a function of the fraction of I(Q) explored, for
// lambda_R = 0.1 (favors diversity) and 0.9 (favors coverage), comparing
// RfQGen's refine-always convergence against BiQGen's bi-directional one.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

/// I_R of the archive state once `fraction` of the algorithm's own
/// exploration has elapsed (the algorithms stop long before exhausting
/// I(Q), so progress is normalized per run).
double AnytimeR(const std::vector<AnytimePoint>& trace, size_t total_verified,
                double fraction, double lambda_r, const Objectives& maxima) {
  Objectives best;
  for (const AnytimePoint& p : trace) {
    if (static_cast<double>(p.verified) >
        fraction * static_cast<double>(total_verified) + 1e-9) {
      break;
    }
    best = p.best;
  }
  double d_star = maxima.diversity > 0 ? best.diversity / maxima.diversity : 0;
  double f_star = maxima.coverage > 0 ? best.coverage / maxima.coverage : 0;
  if (d_star > 1) d_star = 1;
  if (f_star > 1) f_star = 1;
  return (1.0 - lambda_r) * d_star + lambda_r * f_star;
}

int Run() {
  PrintFigureHeader("Fig 9(e)",
                    "Anytime I_R vs fraction of I(Q) explored (DBP)",
                    "|Q|=4, |P|=2, |X|=3, eps=0.01, lambda_R in {0.1, 0.9}");
  ScenarioOptions options = DefaultOptions("dbp");
  options.num_edges = 4;
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  QGenConfig config = scenario->MakeConfig(0.01);
  config.record_trace = true;
  Truth truth = ComputeTruth(config).ValueOrDie();

  QGenResult rf = RfQGen::Run(config).ValueOrDie();
  QGenResult bi = BiQGen::Run(config).ValueOrDie();
  size_t rf_total = rf.stats.verified;
  size_t bi_total = bi.stats.verified;
  std::printf("explored: RfQGen %zu, BiQGen %zu of |I(Q)|=%zu\n", rf_total,
              bi_total, truth.all.size());

  Table table({"fraction", "RfQGen l=0.1", "BiQGen l=0.1", "RfQGen l=0.9",
               "BiQGen l=0.9"});
  for (double f : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    table.AddRow({Fmt(f, 2),
                  Fmt(AnytimeR(rf.trace, rf_total, f, 0.1, truth.maxima), 3),
                  Fmt(AnytimeR(bi.trace, bi_total, f, 0.1, truth.maxima), 3),
                  Fmt(AnytimeR(rf.trace, rf_total, f, 0.9, truth.maxima), 3),
                  Fmt(AnytimeR(bi.trace, bi_total, f, 0.9, truth.maxima), 3)});
  }
  table.Print();
  std::printf(
      "\npaper shape: RfQGen converges faster under lambda_R=0.1 (its\n"
      "refinement order probes high-diversity instances first); BiQGen\n"
      "converges faster under lambda_R=0.9 (backward relaxation finds\n"
      "high-coverage border instances early).\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
