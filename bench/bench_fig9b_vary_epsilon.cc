// Fig. 9(b): effectiveness (I_eps) under varying ε on LKI.
// Paper setting: |Q(u_o)|=4, |X|=3 (1 range + 2 edge), C=200, ε in 0.2..1.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 9(b)", "I_eps vs epsilon on LKI",
                    "|Q|=4, |X|=3 (1 range + 2 edge), eps in {0.2..1.0}");
  ScenarioOptions options = DefaultOptions("lki");
  options.num_edges = 4;
  options.num_range_vars = 1;
  options.num_edge_vars = 2;
  options.max_domain_values = 24;  // Richer single-variable domain (|I(Q)| ~ 100).
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  Table table({"eps", "algorithm", "I_eps", "eps_m", "|result|", "verified"});
  for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    QGenConfig config = scenario->MakeConfig(eps);
    Truth truth = ComputeTruth(config).ValueOrDie();
    auto add = [&](const char* name, const QGenResult& r) {
      auto ind = EpsilonIndicator(r.pareto, truth.feasible, eps);
      table.AddRow({Fmt(eps, 1), name, Fmt(ind.indicator, 3), Fmt(ind.eps_m, 4),
                    std::to_string(r.pareto.size()),
                    std::to_string(r.stats.verified)});
    };
    add("Kungs", Kungs::Run(config).ValueOrDie());
    add("EnumQGen", EnumQGen::Run(config).ValueOrDie());
    add("RfQGen", RfQGen::Run(config).ValueOrDie());
    add("BiQGen", BiQGen::Run(config).ValueOrDie());
  }
  table.Print();
  std::printf(
      "\npaper shape: eps_m grows with eps (larger boxes keep fewer\n"
      "representatives) yet stays well below eps; Rf/Bi match Enum.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
