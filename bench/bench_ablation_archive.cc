// Ablation (DESIGN.md §7): the box archive's Update vs a naive nested-loop
// ε-Pareto maintenance, as a google-benchmark microbenchmark over synthetic
// point streams. The box archive is O(|archive|) per update with a bounded
// archive; the nested loop degrades as the kept set grows.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "core/pareto_archive.h"

namespace fairsqg {
namespace {

EvaluatedPtr MakePoint(double d, double f) {
  auto e = std::make_shared<EvaluatedInstance>();
  e->obj = {d, f};
  e->feasible = true;
  return e;
}

std::vector<EvaluatedPtr> MakeStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EvaluatedPtr> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(MakePoint(rng.NextDouble() * 50, rng.NextDouble() * 50));
  }
  return out;
}

void BM_BoxArchive(benchmark::State& state) {
  auto stream = MakeStream(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    ParetoArchive archive(0.05);
    for (const EvaluatedPtr& p : stream) archive.Update(p);
    benchmark::DoNotOptimize(archive.size());
  }
}
BENCHMARK(BM_BoxArchive)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Naive maintenance: keep every instance not ε-dominated by the set,
// evicting members the newcomer ε-dominates (nested loop, unbounded size).
void BM_NestedLoop(benchmark::State& state) {
  auto stream = MakeStream(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    std::vector<EvaluatedPtr> kept;
    for (const EvaluatedPtr& p : stream) {
      bool dominated = false;
      for (const EvaluatedPtr& k : kept) {
        if (EpsilonDominates(k->obj, p->obj, 0.05)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(kept, [&](const EvaluatedPtr& k) {
        return EpsilonDominates(p->obj, k->obj, 0.05);
      });
      kept.push_back(p);
    }
    benchmark::DoNotOptimize(kept.size());
  }
}
BENCHMARK(BM_NestedLoop)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fairsqg

BENCHMARK_MAIN();
