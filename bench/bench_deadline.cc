// Anytime degradation under deadlines (DESIGN.md §11): archive quality as
// the wall-clock budget shrinks. A deadline-bounded BiQGen run returns the
// ε-Pareto set of its verified prefix; the ε- and R-indicators against the
// unbounded ground truth quantify how gracefully quality degrades, and the
// overshoot column checks that runs actually stop near their deadline.

#include <cstdio>

#include "bench_common.h"
#include "common/run_context.h"
#include "common/timer.h"
#include "core/bi_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Deadline", "Archive quality vs deadline budget",
                    "Fig 9(a) setting; BiQGen under --deadline-ms style "
                    "RunContext deadlines");
  ScenarioOptions options = DefaultOptions("lki");
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  QGenConfig config = scenario->MakeConfig(0.01);
  Result<Truth> truth = ComputeTruth(config);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  // Unbounded run: the budget every deadline is a fraction of.
  QGenResult full = BiQGen::Run(config).ValueOrDie();
  double full_ms = full.stats.total_seconds * 1e3;

  Table table({"deadline (ms)", "verified", "archive", "I_eps", "I_R",
               "expired", "overshoot (ms)"});
  for (double fraction : {2.0, 1.0, 0.5, 0.2, 0.1, 0.05, 0.01}) {
    double deadline_ms = full_ms * fraction;
    RunContext ctx;
    ctx.SetDeadlineAfterMillis(deadline_ms);
    QGenConfig bounded = config;
    bounded.run_context = &ctx;
    Timer timer;
    QGenResult r = BiQGen::Run(bounded).ValueOrDie();
    double elapsed_ms = timer.ElapsedSeconds() * 1e3;
    EpsilonIndicatorResult ieps =
        EpsilonIndicator(r.pareto, truth->pareto, config.epsilon);
    double ir = RIndicator(r.pareto, 0.5, truth->maxima.diversity,
                           truth->maxima.coverage);
    table.AddRow({Fmt(deadline_ms, 2), std::to_string(r.stats.verified),
                  std::to_string(r.pareto.size()), Fmt(ieps.indicator, 3),
                  Fmt(ir, 3), r.stats.deadline_exceeded ? "yes" : "no",
                  Fmt(elapsed_ms - deadline_ms, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: quality degrades smoothly as the budget shrinks —\n"
      "every row returns a valid (possibly smaller) archive, and overshoot\n"
      "stays within one verification slice of the deadline.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
