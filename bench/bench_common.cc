#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/timer.h"

namespace fairsqg::bench {

obs::Json BenchReport(const std::string& bench, int repeat) {
  obs::Json root = obs::Json::Object();
  root.Set("kind", obs::Json(obs::RunReport::kKind));
  root.Set("schema_version",
           obs::Json(static_cast<int64_t>(kBenchSchemaVersion)));
  root.Set("bench", obs::Json(bench));
  root.Set("repeat", obs::Json(static_cast<int64_t>(repeat)));
  return root;
}

void WriteBenchJson(const obs::Json& root, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FAIRSQG_CHECK(f != nullptr) << "cannot write " << path;
  std::string text = root.Dump(2);
  text.push_back('\n');
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int ParseRepeat(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--repeat" && i + 1 < argc) {
      int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
    const std::string prefix = "--repeat=";
    if (arg.rfind(prefix, 0) == 0) {
      int n = std::atoi(arg.c_str() + prefix.size());
      if (n > 0) return n;
    }
  }
  return 1;
}

obs::TraceDetail ParseTraceDetail(int argc, char** argv) {
  std::string level;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace-detail" && i + 1 < argc) level = argv[i + 1];
    const std::string prefix = "--trace-detail=";
    if (arg.rfind(prefix, 0) == 0) level = arg.substr(prefix.size());
  }
  if (level.empty() || level == "off") return obs::TraceDetail::kOff;
  if (level == "phase") return obs::TraceDetail::kPhase;
  if (level == "full") return obs::TraceDetail::kFull;
  FAIRSQG_CHECK(false) << "unknown --trace-detail level: " << level;
  return obs::TraceDetail::kOff;
}

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

double MinOf(const std::vector<double>& samples) {
  if (samples.empty()) return 0;
  return *std::min_element(samples.begin(), samples.end());
}

Result<Truth> ComputeTruth(const QGenConfig& config) {
  Truth truth;
  Timer timer;
  InstanceVerifier verifier(config);
  GenStats stats;
  FAIRSQG_ASSIGN_OR_RETURN(truth.all,
                           VerifyAllInstances(config, &verifier, &stats));
  truth.feasible = FeasibleOnly(truth.all);
  truth.pareto = ExactParetoSet(truth.feasible);
  truth.maxima = MaxObjectives(truth.feasible);
  truth.seconds = timer.ElapsedSeconds();
  return truth;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("| ");
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s | ", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 3, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void PrintFigureHeader(const std::string& figure, const std::string& caption,
                       const std::string& setting) {
  std::printf("\n==== %s: %s ====\n", figure.c_str(), caption.c_str());
  if (!setting.empty()) std::printf("setting: %s\n", setting.c_str());
  std::fflush(stdout);
}

double BenchScale() {
  const char* env = std::getenv("FAIRSQG_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.15;
}

ScenarioOptions DefaultOptions(const std::string& dataset) {
  ScenarioOptions options;
  options.dataset = dataset;
  options.scale = BenchScale();
  options.seed = 42;
  // Paper defaults: |P| = 2, |Q(u_o)| = 3, |X| = 3 (2 range + 1 edge),
  // C = 200 at 1M-5M nodes; C scales with the graph here.
  options.num_edges = 3;
  options.num_range_vars = 2;
  options.num_edge_vars = 1;
  options.num_groups = 2;
  options.total_coverage = 16;
  options.coverage_fraction = 0.55;  // Calibrate C to the template's matches.
  options.max_domain_values = 8;
  options.template_seed = 1;
  return options;
}

}  // namespace fairsqg::bench
