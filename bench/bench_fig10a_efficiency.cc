// Fig. 10(a): efficiency of Kungs, EnumQGen, RfQGen and BiQGen over the
// three datasets (Fig. 9(a) setting), as google-benchmark timings, plus the
// Section IV ablation rows (template refinement / incremental verification
// / sandwich + subtree pruning toggled off).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario(const std::string& dataset) {
  static std::map<std::string, std::unique_ptr<Scenario>>* cache =
      new std::map<std::string, std::unique_ptr<Scenario>>();
  auto it = cache->find(dataset);
  if (it == cache->end()) {
    Result<Scenario> s = MakeScenario(DefaultOptions(dataset));
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    it = cache->emplace(dataset,
                        std::make_unique<Scenario>(std::move(s).ValueOrDie()))
             .first;
  }
  return *it->second;
}

using Runner = Result<QGenResult> (*)(const QGenConfig&);

void BM_Generate(benchmark::State& state, const std::string& dataset,
                 Runner runner, bool template_refinement, bool incremental,
                 bool pruning) {
  const Scenario& scenario = GetScenario(dataset);
  QGenConfig config = scenario.MakeConfig(0.01);
  config.use_template_refinement = template_refinement;
  config.use_incremental_verify = incremental;
  config.use_sandwich_pruning = pruning;
  config.use_subtree_pruning = pruning;
  size_t verified = 0;
  for (auto _ : state) {
    Result<QGenResult> r = runner(config);
    FAIRSQG_CHECK(r.ok()) << r.status().ToString();
    verified = r->stats.verified;
    benchmark::DoNotOptimize(r->pareto.size());
  }
  state.counters["verified"] = static_cast<double>(verified);
}

void RegisterAll() {
  struct Algo {
    const char* name;
    Runner runner;
  };
  const Algo algos[] = {{"Kungs", &Kungs::Run},
                        {"EnumQGen", &EnumQGen::Run},
                        {"RfQGen", &RfQGen::Run},
                        {"BiQGen", &BiQGen::Run}};
  for (const char* dataset : {"dbp", "lki", "cite"}) {
    for (const Algo& algo : algos) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10a/") + dataset + "/" + algo.name).c_str(),
          [dataset, runner = algo.runner](benchmark::State& state) {
            BM_Generate(state, dataset, runner, true, true, true);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
    // Ablations (DESIGN.md §7) on the contributed algorithms.
    benchmark::RegisterBenchmark(
        (std::string("Fig10a/") + dataset + "/RfQGen_no_template_refine").c_str(),
        [dataset](benchmark::State& state) {
          BM_Generate(state, dataset, &RfQGen::Run, false, true, true);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        (std::string("Fig10a/") + dataset + "/RfQGen_no_incverify").c_str(),
        [dataset](benchmark::State& state) {
          BM_Generate(state, dataset, &RfQGen::Run, true, false, true);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        (std::string("Fig10a/") + dataset + "/BiQGen_no_pruning").c_str(),
        [dataset](benchmark::State& state) {
          BM_Generate(state, dataset, &BiQGen::Run, true, true, false);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::PrintFigureHeader(
      "Fig 10(a)", "Efficiency over the three datasets",
      "Fig 9(a) setting; paper: BiQGen ~4.4x over Enum, ~2.5x over RfQGen; "
      "plus ablation rows");
  fairsqg::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
