// Fig. 9(c): effectiveness (I_eps) vs the number of range variables |X_L|
// on DBP. Paper setting: |Q(u_o)|=4, |P|=2, C=200, eps=0.01, |X_L| in 2..5.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 9(c)", "I_eps vs |X_L| on DBP",
                    "|Q|=4, |P|=2, eps=0.01, |X_L| in 2..5");
  Table table({"|X_L|", "algorithm", "I_eps", "eps_m", "|I(Q)|", "feasible",
               "|result|"});
  for (size_t xl = 2; xl <= 5; ++xl) {
    ScenarioOptions options = DefaultOptions("dbp");
    options.num_edges = 4;
    options.num_range_vars = xl;
    options.num_edge_vars = 1;
    // Keep |I(Q)| enumerable as |X_L| grows.
    options.max_domain_values = xl <= 3 ? 8 : (xl == 4 ? 4 : 3);
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "|X_L|=%zu: %s\n", xl,
                   scenario.status().ToString().c_str());
      continue;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    Truth truth = ComputeTruth(config).ValueOrDie();
    auto add = [&](const char* name, const QGenResult& r) {
      auto ind = EpsilonIndicator(r.pareto, truth.feasible, config.epsilon);
      table.AddRow({std::to_string(xl), name, Fmt(ind.indicator, 3),
                    Fmt(ind.eps_m, 4), std::to_string(truth.all.size()),
                    std::to_string(truth.feasible.size()),
                    std::to_string(r.pareto.size())});
    };
    add("Kungs", Kungs::Run(config).ValueOrDie());
    add("EnumQGen", EnumQGen::Run(config).ValueOrDie());
    add("RfQGen", RfQGen::Run(config).ValueOrDie());
    add("BiQGen", BiQGen::Run(config).ValueOrDie());
  }
  table.Print();
  std::printf(
      "\npaper shape: more range variables -> more selective instances,\n"
      "fewer feasible ones and smaller Pareto sets -> easier to approximate\n"
      "(I_eps improves with |X_L|).\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
