// Fig. 9(a): overall effectiveness (normalized ε-indicator I_ε) of Kungs,
// EnumQGen, RfQGen and BiQGen on all three datasets, plus the pruning
// percentages the paper reports in Section IV ("RfQGen/BiQGen inspect
// 40%/60% fewer instances than EnumQGen").

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader(
      "Fig 9(a)", "Overall effectiveness (I_eps), 3 datasets x 4 algorithms",
      "|Q|=3, |X|=3 (1 edge + 2 range), |P|=2, eps=0.01, equal opportunity");

  Table table({"dataset", "algorithm", "I_eps", "eps_m", "|result|",
               "verified", "vs Enum"});
  for (const char* dataset : {"dbp", "lki", "cite"}) {
    ScenarioOptions options = DefaultOptions(dataset);
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", dataset,
                   scenario.status().ToString().c_str());
      return 1;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    Result<Truth> truth = ComputeTruth(config);
    if (!truth.ok()) {
      std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
      return 1;
    }

    QGenResult kungs = Kungs::Run(config).ValueOrDie();
    QGenResult enum_r = EnumQGen::Run(config).ValueOrDie();
    QGenResult rf = RfQGen::Run(config).ValueOrDie();
    QGenResult bi = BiQGen::Run(config).ValueOrDie();

    double enum_verified = static_cast<double>(enum_r.stats.verified);
    auto add = [&](const char* name, const QGenResult& r) {
      auto ind = EpsilonIndicator(r.pareto, truth->feasible, config.epsilon);
      double saved = enum_verified > 0
                         ? 100.0 * (1.0 - static_cast<double>(r.stats.verified) /
                                              enum_verified)
                         : 0.0;
      table.AddRow({dataset, name, Fmt(ind.indicator, 3), Fmt(ind.eps_m, 4),
                    std::to_string(r.pareto.size()),
                    std::to_string(r.stats.verified),
                    Fmt(-saved, 1) + "%"});
    };
    add("Kungs", kungs);
    add("EnumQGen", enum_r);
    add("RfQGen", rf);
    add("BiQGen", bi);
  }
  table.Print();
  std::printf(
      "\npaper shape: Kungs = 1.0 everywhere; Enum/Rf/Bi >= 0.6; Rf/Bi track\n"
      "Enum while verifying ~40%%/~60%% fewer instances (negative 'vs Enum').\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
