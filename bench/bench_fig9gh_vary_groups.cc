// Fig. 9(g)+(h): I_eps and I_R vs the number of groups |P| on DBP.
// Paper setting: |Q(u_o)|=4, |X|=3, lambda_R=0.5, C=240 split evenly,
// |P| in 2..5.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 9(g,h)", "I_eps and I_R vs |P| (DBP)",
                    "|Q|=4, |X|=3, lambda_R=0.5, equal split of C");
  Table table({"|P|", "algorithm", "I_eps", "I_R", "feasible", "|result|"});
  for (size_t p = 2; p <= 5; ++p) {
    ScenarioOptions options = DefaultOptions("dbp");
    options.num_edges = 4;
    options.num_groups = p;
    // The paper fixes C and splits it evenly; per-scenario calibration
    // would hide the fewer-feasible-with-more-groups effect.
    options.coverage_fraction = -1.0;
    options.total_coverage = 60;
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "|P|=%zu: %s\n", p,
                   scenario.status().ToString().c_str());
      continue;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    Truth truth = ComputeTruth(config).ValueOrDie();
    auto add = [&](const char* name, const QGenResult& r) {
      auto ind = EpsilonIndicator(r.pareto, truth.feasible, config.epsilon);
      double ir = RIndicator(r.pareto, 0.5, truth.maxima.diversity,
                             truth.maxima.coverage);
      table.AddRow({std::to_string(p), name, Fmt(ind.indicator, 3), Fmt(ir, 3),
                    std::to_string(truth.feasible.size()),
                    std::to_string(r.pareto.size())});
    };
    add("EnumQGen", EnumQGen::Run(config).ValueOrDie());
    add("RfQGen", RfQGen::Run(config).ValueOrDie());
    add("BiQGen", BiQGen::Run(config).ValueOrDie());
  }
  table.Print();
  std::printf(
      "\npaper shape: both indicators decrease as |P| grows — more groups\n"
      "to cover leave fewer feasible instances and fewer eps-dominating\n"
      "candidates.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
