// Fig. 10(b): efficiency vs ε on LKI (Fig. 9(b) setting). Paper: Enum and
// Kungs are insensitive (enumeration-bound); Rf/Bi get slightly faster as ε
// grows because coarser boxes let Update/pruning cut more instances.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario() {
  static Scenario* scenario = [] {
    ScenarioOptions options = DefaultOptions("lki");
    options.num_edges = 4;
    options.num_range_vars = 1;
    options.num_edge_vars = 2;
    Result<Scenario> s = MakeScenario(options);
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    return new Scenario(std::move(s).ValueOrDie());
  }();
  return *scenario;
}

using Runner = Result<QGenResult> (*)(const QGenConfig&);

void BM_VaryEps(benchmark::State& state, Runner runner) {
  double eps = static_cast<double>(state.range(0)) / 10.0;
  QGenConfig config = GetScenario().MakeConfig(eps);
  size_t verified = 0;
  for (auto _ : state) {
    Result<QGenResult> r = runner(config);
    FAIRSQG_CHECK(r.ok()) << r.status().ToString();
    verified = r->stats.verified;
  }
  state.counters["verified"] = static_cast<double>(verified);
}

void RegisterAll() {
  struct Algo {
    const char* name;
    Runner runner;
  };
  for (const Algo& algo : {Algo{"Kungs", &Kungs::Run},
                           Algo{"EnumQGen", &EnumQGen::Run},
                           Algo{"RfQGen", &RfQGen::Run},
                           Algo{"BiQGen", &BiQGen::Run}}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig10b/") + algo.name + "/eps_x10").c_str(),
        [runner = algo.runner](benchmark::State& state) {
          BM_VaryEps(state, runner);
        });
    for (int eps10 : {2, 4, 6, 8, 10}) b->Arg(eps10);
    b->Unit(benchmark::kMillisecond)->Iterations(3);
  }
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::PrintFigureHeader("Fig 10(b)", "Efficiency vs epsilon (LKI)",
                                    "|Q|=4, |X|=3 (1 range + 2 edge); "
                                    "eps = arg/10");
  fairsqg::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
