// Fig. 12 / Exp-4: case study — movie search over the DBP-like graph with
// an equal coverage constraint over genres. Shows the generated template,
// and how BiQGen's suggestions trade a little diversity for near-exact
// group coverage while RfQGen keeps more diversified but more skewed
// answers (the paper's q7/q8 vs q9 narrative).

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

void Describe(const char* algo, const QGenResult& result, const Scenario& s,
              const Truth& truth) {
  std::printf("\n%s suggested %zu queries (of %zu feasible instances):\n", algo,
              result.pareto.size(), truth.feasible.size());
  Table table({"instantiation", "matches", "diversity", "f(q,P)",
               "per-group coverage (target)"});
  size_t shown = 0;
  for (const EvaluatedPtr& q : result.pareto) {
    if (++shown > 6) break;
    std::string coverage;
    for (size_t i = 0; i < q->group_coverage.size(); ++i) {
      if (i > 0) coverage += ", ";
      coverage += s.groups->name(i) + "=" + std::to_string(q->group_coverage[i]) +
                  " (" + std::to_string(s.groups->constraint(i)) + ")";
    }
    table.AddRow({q->inst.ToString(*s.tmpl, *s.domains),
                  std::to_string(q->matches.size()), Fmt(q->obj.diversity, 2),
                  Fmt(q->obj.coverage, 1), coverage});
  }
  table.Print();
}

int Run() {
  PrintFigureHeader("Fig 12", "Case study: movie search with genre fairness",
                    "DBP, |P|=2 genre groups, equal coverage, eps=0.05");
  ScenarioOptions options = DefaultOptions("dbp");
  options.num_edges = 4;
  options.num_range_vars = 2;
  options.num_edge_vars = 1;
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery template (parameterized movie search):\n%s",
              scenario->tmpl->ToString().c_str());
  std::printf("groups over movies:");
  for (size_t i = 0; i < scenario->groups->num_groups(); ++i) {
    std::printf(" %s(|P|=%zu, c=%zu)", scenario->groups->name(i).c_str(),
                scenario->groups->group(i).size(),
                scenario->groups->constraint(i));
  }
  std::printf("\n");

  QGenConfig config = scenario->MakeConfig(0.05);
  Truth truth = ComputeTruth(config).ValueOrDie();

  // The "initial query" a user would write: the most relaxed instance.
  const EvaluatedPtr& initial = truth.all.front();
  std::printf("\ninitial (most relaxed) query: %zu matches, delta=%.2f, f=%.1f\n",
              initial->matches.size(), initial->obj.diversity,
              initial->obj.coverage);

  QGenResult bi = BiQGen::Run(config).ValueOrDie();
  QGenResult rf = RfQGen::Run(config).ValueOrDie();
  Describe("BiQGen", bi, *scenario, truth);
  Describe("RfQGen", rf, *scenario, truth);

  std::printf(
      "\npaper shape: the suggested refinements cut the skew of the initial\n"
      "query's answers toward the (c, c) coverage target while offering a\n"
      "spread of diversity/coverage trade-offs for the user to pick from.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
