// Fig. 10(d): efficiency vs |X_E| on LKI (Fig. 9(d) setting). Paper:
// BiQGen fastest; pruning benefits grow with the number of edge variables
// because forcing them to '1' quickly exhausts feasibility.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario(size_t xe) {
  static std::map<size_t, std::unique_ptr<Scenario>>* cache =
      new std::map<size_t, std::unique_ptr<Scenario>>();
  auto it = cache->find(xe);
  if (it == cache->end()) {
    ScenarioOptions options = DefaultOptions("lki");
    options.num_edges = 5;
    options.num_range_vars = 1;
    options.num_edge_vars = xe;
    options.max_domain_values = 6;
    Result<Scenario> s = MakeScenario(options);
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    it = cache->emplace(xe, std::make_unique<Scenario>(std::move(s).ValueOrDie()))
             .first;
  }
  return *it->second;
}

using Runner = Result<QGenResult> (*)(const QGenConfig&);

void BM_VaryXe(benchmark::State& state, Runner runner) {
  QGenConfig config =
      GetScenario(static_cast<size_t>(state.range(0))).MakeConfig(0.01);
  size_t verified = 0;
  for (auto _ : state) {
    Result<QGenResult> r = runner(config);
    FAIRSQG_CHECK(r.ok()) << r.status().ToString();
    verified = r->stats.verified;
  }
  state.counters["verified"] = static_cast<double>(verified);
}

void RegisterAll() {
  struct Algo {
    const char* name;
    Runner runner;
  };
  for (const Algo& algo : {Algo{"Kungs", &Kungs::Run},
                           Algo{"EnumQGen", &EnumQGen::Run},
                           Algo{"RfQGen", &RfQGen::Run},
                           Algo{"BiQGen", &BiQGen::Run}}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig10d/") + algo.name + "/XE").c_str(),
        [runner = algo.runner](benchmark::State& state) {
          BM_VaryXe(state, runner);
        });
    for (int xe : {2, 3, 4, 5}) b->Arg(xe);
    b->Unit(benchmark::kMillisecond)->Iterations(3);
  }
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::PrintFigureHeader("Fig 10(d)", "Efficiency vs |X_E| (LKI)",
                                    "|Q|=5, |P|=2, eps=0.01");
  fairsqg::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
