// Fig. 10(c): efficiency vs |X_L| on DBP (Fig. 9(c) setting). Paper:
// BiQGen fastest and least sensitive; RfQGen/BiQGen beat EnumQGen by
// growing margins as the space grows.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario(size_t xl) {
  static std::map<size_t, std::unique_ptr<Scenario>>* cache =
      new std::map<size_t, std::unique_ptr<Scenario>>();
  auto it = cache->find(xl);
  if (it == cache->end()) {
    ScenarioOptions options = DefaultOptions("dbp");
    options.num_edges = 4;
    options.num_range_vars = xl;
    options.num_edge_vars = 1;
    options.max_domain_values = xl <= 3 ? 8 : (xl == 4 ? 4 : 3);
    Result<Scenario> s = MakeScenario(options);
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    it = cache->emplace(xl, std::make_unique<Scenario>(std::move(s).ValueOrDie()))
             .first;
  }
  return *it->second;
}

using Runner = Result<QGenResult> (*)(const QGenConfig&);

void BM_VaryXl(benchmark::State& state, Runner runner) {
  QGenConfig config =
      GetScenario(static_cast<size_t>(state.range(0))).MakeConfig(0.01);
  size_t verified = 0;
  for (auto _ : state) {
    Result<QGenResult> r = runner(config);
    FAIRSQG_CHECK(r.ok()) << r.status().ToString();
    verified = r->stats.verified;
  }
  state.counters["verified"] = static_cast<double>(verified);
}

void RegisterAll() {
  struct Algo {
    const char* name;
    Runner runner;
  };
  for (const Algo& algo : {Algo{"Kungs", &Kungs::Run},
                           Algo{"EnumQGen", &EnumQGen::Run},
                           Algo{"RfQGen", &RfQGen::Run},
                           Algo{"BiQGen", &BiQGen::Run}}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig10c/") + algo.name + "/XL").c_str(),
        [runner = algo.runner](benchmark::State& state) {
          BM_VaryXl(state, runner);
        });
    for (int xl : {2, 3, 4, 5}) b->Arg(xl);
    b->Unit(benchmark::kMillisecond)->Iterations(3);
  }
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::PrintFigureHeader("Fig 10(c)", "Efficiency vs |X_L| (DBP)",
                                    "|Q|=4, |P|=2, eps=0.01");
  fairsqg::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
