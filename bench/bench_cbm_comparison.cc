// Exp-1 "Performance of CBM" (reported in prose, figure omitted by the
// paper): CBM's constraint-based bi-objective baseline vs Kungs and BiQGen
// on DBP under the Fig. 9(a) setting. Paper: Kungs outperforms CBM ~1.2x in
// runtime; BiQGen outperforms CBM ~1.1x in I_R.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/cbm.h"
#include "core/kungs.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Exp-1 CBM", "CBM vs Kungs vs BiQGen (DBP)",
                    "Fig 9(a) setting; CBM with 10 constraint sections");
  ScenarioOptions options = DefaultOptions("dbp");
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  QGenConfig config = scenario->MakeConfig(0.01);
  Truth truth = ComputeTruth(config).ValueOrDie();

  QGenResult kungs = Kungs::Run(config).ValueOrDie();
  QGenResult cbm = Cbm::Run(config, 10).ValueOrDie();
  QGenResult bi = BiQGen::Run(config).ValueOrDie();

  Table table({"algorithm", "time (s)", "I_R (l=0.5)", "|result|", "verified"});
  auto add = [&](const char* name, const QGenResult& r) {
    table.AddRow({name, Fmt(r.stats.total_seconds, 3),
                  Fmt(RIndicator(r.pareto, 0.5, truth.maxima.diversity,
                                 truth.maxima.coverage),
                      3),
                  std::to_string(r.pareto.size()),
                  std::to_string(r.stats.verified)});
  };
  add("Kungs", kungs);
  add("CBM", cbm);
  add("BiQGen", bi);
  table.Print();

  double speedup = cbm.stats.total_seconds > 0
                       ? cbm.stats.total_seconds / kungs.stats.total_seconds
                       : 0;
  std::printf(
      "\nKungs vs CBM runtime ratio: %.2fx (paper: ~1.2x in Kungs' favor —\n"
      "CBM pays for its per-section constrained re-optimizations).\n",
      speedup);
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
