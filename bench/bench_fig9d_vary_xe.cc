// Fig. 9(d): effectiveness (I_eps) vs the number of edge variables |X_E|
// on LKI. Paper setting: |Q(u_o)|=5, |P|=2, C=200, eps=0.01, |X_E| in 2..5.

#include <cstdio>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 9(d)", "I_eps vs |X_E| on LKI",
                    "|Q|=5, |P|=2, eps=0.01, |X_E| in 2..5");
  Table table({"|X_E|", "algorithm", "I_eps", "eps_m", "|I(Q)|", "feasible",
               "|result|"});
  for (size_t xe = 2; xe <= 5; ++xe) {
    ScenarioOptions options = DefaultOptions("lki");
    options.num_edges = 5;
    options.num_range_vars = 1;
    options.num_edge_vars = xe;
    options.max_domain_values = 6;
    Result<Scenario> scenario = MakeScenario(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "|X_E|=%zu: %s\n", xe,
                   scenario.status().ToString().c_str());
      continue;
    }
    QGenConfig config = scenario->MakeConfig(0.01);
    Truth truth = ComputeTruth(config).ValueOrDie();
    auto add = [&](const char* name, const QGenResult& r) {
      auto ind = EpsilonIndicator(r.pareto, truth.feasible, config.epsilon);
      table.AddRow({std::to_string(xe), name, Fmt(ind.indicator, 3),
                    Fmt(ind.eps_m, 4), std::to_string(truth.all.size()),
                    std::to_string(truth.feasible.size()),
                    std::to_string(r.pareto.size())});
    };
    add("Kungs", Kungs::Run(config).ValueOrDie());
    add("EnumQGen", EnumQGen::Run(config).ValueOrDie());
    add("RfQGen", RfQGen::Run(config).ValueOrDie());
    add("BiQGen", BiQGen::Run(config).ValueOrDie());
  }
  table.Print();
  std::printf(
      "\npaper shape: same trend as Fig 9(c) — more edge variables shrink\n"
      "the feasible space and improve the approximations.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
