// Fig. 11(b): anytime effectiveness (I_eps) of OnlineQGen on LKI, for
// k in {10, 20} and w in {40, 80}, as the stream progresses. Paper: I_eps
// decreases as more instances arrive (eps is compromised to keep |set|=k),
// and larger w sustains higher I_eps for larger k.

#include <cstdio>
#include <unordered_map>

#include "bench_common.h"
#include "core/online_qgen.h"
#include "workload/instance_stream.h"

namespace fairsqg::bench {
namespace {

int Run() {
  PrintFigureHeader("Fig 11(b)", "OnlineQGen anytime I_eps (LKI)",
                    "k in {10,20}, w in {40,80}; I_eps vs #processed");
  ScenarioOptions options = DefaultOptions("lki");
  Result<Scenario> scenario = MakeScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  QGenConfig config = scenario->MakeConfig(0.01);
  Truth truth = ComputeTruth(config).ValueOrDie();

  // The maintained set is scored against the feasible instances *seen so
  // far* (the paper's anytime semantics); the initial eps=0.01 saturates
  // I_eps at 0, so quality is reported as raw eps_m plus I_eps against a
  // tolerant reference epsilon.
  constexpr double kReferenceEps = 0.5;
  std::unordered_map<Instantiation, EvaluatedPtr, Instantiation::Hasher> lookup;
  for (const EvaluatedPtr& e : truth.all) lookup.emplace(e->inst, e);
  const size_t checkpoints[] = {20, 40, 80, 120, 160};
  Table table({"k", "w", "processed", "eps_m", "I_eps(ref 0.5)", "eps", "|set|"});
  for (size_t k : {10, 20}) {
    for (size_t w : {40, 80}) {
      OnlineConfig online;
      online.k = k;
      online.window = w;
      online.initial_epsilon = 0.01;
      OnlineQGen gen(config, online);
      InstanceStream stream(*scenario->tmpl, *scenario->domains, 23);
      Instantiation inst;
      size_t processed = 0;
      std::vector<EvaluatedPtr> seen_feasible;
      for (size_t checkpoint : checkpoints) {
        while (processed < checkpoint) {
          stream.Next(&inst);
          gen.Process(inst);
          const EvaluatedPtr& e = lookup.at(inst);
          if (e->feasible) seen_feasible.push_back(e);
          ++processed;
        }
        auto ind =
            EpsilonIndicator(gen.Current(), seen_feasible, kReferenceEps);
        table.AddRow({std::to_string(k), std::to_string(w),
                      std::to_string(processed), Fmt(ind.eps_m, 4),
                      Fmt(ind.indicator, 3), Fmt(gen.epsilon(), 4),
                      std::to_string(gen.size())});
      }
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: quality decays with stream length (eps_m grows) as eps\n"
      "is compromised to keep the set at size k; larger k and w sustain\n"
      "better quality.\n");
  return 0;
}

}  // namespace
}  // namespace fairsqg::bench

int main() { return fairsqg::bench::Run(); }
