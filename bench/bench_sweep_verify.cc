// Perf harness for literal-sweep batch verification (DESIGN.md §12):
// chain-heavy scenario (each range variable carries a long value chain),
// each generator run with --sweep-verify off vs on. Sweeping amortizes one
// matcher pass over the whole chain, so the interesting number is the
// verifier-time speedup at equal verified counts — the archives themselves
// are CHECKed byte-identical. Emits the console table plus
// BENCH_sweep_verify.json in the working directory.
//
// Both arms run the scan candidate pipeline (use_candidate_index = false)
// so per-member candidate construction is part of the measured verification
// cost the sweep amortizes; the index pipeline has its own harness in
// bench_candidate_index.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/rf_qgen.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairsqg::bench {
namespace {

/// Values per range variable: the sweep's amortization factor. The paper's
/// spaces use 8-16 values per variable; 12 keeps the enumerated space
/// around a few hundred instances at bench scale.
constexpr size_t kDomainValues = 12;
/// Pinned scenario: the lki dataset has a small output label, so the
/// per-member distance evaluation (which sweeping cannot skip — δ must be
/// recomputed per member for byte-identical archives) stays cheap relative
/// to the candidate-build and matcher costs the sweep does amortize. The
/// graph scale and template seed select a template whose range literals
/// restrict a non-output node, i.e. whole chains are sweepable.
constexpr double kScale = 0.1;
constexpr int kNumEdges = 5;
constexpr int kTemplateSeed = 7;

struct Algo {
  const char* name;
  std::function<Result<QGenResult>(const QGenConfig&)> run;
};

std::vector<Algo> Algos() {
  return {
      {"enum", [](const QGenConfig& c) { return EnumQGen::Run(c); }},
      {"rfqgen", [](const QGenConfig& c) { return RfQGen::Run(c); }},
      {"biqgen", [](const QGenConfig& c) { return BiQGen::Run(c); }},
      {"biqgen_par4",
       [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); }},
  };
}

void CheckSameArchive(const QGenResult& a, const QGenResult& b,
                      const char* algo) {
  FAIRSQG_CHECK(a.pareto.size() == b.pareto.size())
      << algo << ": sweep changed the archive size";
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    FAIRSQG_CHECK(a.pareto[i]->inst == b.pareto[i]->inst)
        << algo << ": sweep changed archive member " << i;
    FAIRSQG_CHECK(a.pareto[i]->matches == b.pareto[i]->matches)
        << algo << ": sweep changed match set of member " << i;
  }
}

struct Row {
  std::string algo;
  size_t verified = 0;
  double base_verify_s = 0;    // Median verify_cpu_seconds, sweep off.
  double sweep_verify_s = 0;   // Median verify_cpu_seconds, sweep on.
  double base_verify_s_min = 0;
  double sweep_verify_s_min = 0;
  double speedup = 0;          // base_verify_s / sweep_verify_s.
  size_t sweep_chains = 0;
  size_t sweep_instances = 0;
  size_t sweep_fallbacks = 0;
  GenStats swept_stats;        // Full GenStats of the rep-0 swept run.
};

void WriteJson(const std::vector<Row>& rows, int repeat,
               const std::string& path) {
  obs::Json root = BenchReport("sweep_verify", repeat);
  root.Set("dataset", obs::Json("lki"));
  root.Set("scale", obs::Json(kScale));
  root.Set("domain_values", obs::Json(static_cast<uint64_t>(kDomainValues)));
  obs::Json algos = obs::Json::Array();
  for (const Row& r : rows) {
    obs::Json row = obs::Json::Object();
    row.Set("name", obs::Json(r.algo));
    row.Set("verified", obs::Json(static_cast<uint64_t>(r.verified)));
    row.Set("baseline_verify_s", obs::Json(r.base_verify_s));
    row.Set("sweep_verify_s", obs::Json(r.sweep_verify_s));
    row.Set("baseline_verify_s_min", obs::Json(r.base_verify_s_min));
    row.Set("sweep_verify_s_min", obs::Json(r.sweep_verify_s_min));
    row.Set("speedup", obs::Json(r.speedup));
    row.Set("sweep_chains", obs::Json(static_cast<uint64_t>(r.sweep_chains)));
    row.Set("sweep_instances",
            obs::Json(static_cast<uint64_t>(r.sweep_instances)));
    row.Set("sweep_fallbacks",
            obs::Json(static_cast<uint64_t>(r.sweep_fallbacks)));
    row.Set("stats", obs::RunReport::StatsJson(r.swept_stats));
    algos.Push(std::move(row));
  }
  root.Set("algorithms", std::move(algos));
  WriteBenchJson(root, path);
}

void Run(int repeat) {
  ScenarioOptions options = DefaultOptions("lki");
  options.scale = kScale;
  options.max_domain_values = kDomainValues;
  options.num_edges = kNumEdges;
  options.template_seed = kTemplateSeed;
  Result<Scenario> s = MakeScenario(options);
  FAIRSQG_CHECK(s.ok()) << s.status().ToString();

  PrintFigureHeader(
      "sweep-verify", "literal-sweep batch verification",
      "lki, " + std::to_string(kDomainValues) +
          " values per range variable; median of " + std::to_string(repeat) +
          " run(s); verify_cpu_seconds from GenStats");

  Table table({"algo", "verified", "base verify s", "sweep verify s",
               "speedup", "chains", "swept insts", "fallbacks"});
  std::vector<Row> rows;
  for (const Algo& algo : Algos()) {
    Row row;
    row.algo = algo.name;
    std::vector<double> base_s, sweep_s;
    for (int rep = 0; rep < repeat; ++rep) {
      QGenConfig off = s->MakeConfig(0.01);
      off.use_candidate_index = false;
      QGenResult base = algo.run(off).ValueOrDie();

      QGenConfig on = s->MakeConfig(0.01);
      on.use_candidate_index = false;
      on.use_sweep_verify = true;
      QGenResult swept = algo.run(on).ValueOrDie();

      CheckSameArchive(base, swept, algo.name);
      FAIRSQG_CHECK(base.stats.verified == swept.stats.verified)
          << algo.name << ": sweep changed the verified count";
      base_s.push_back(base.stats.verify_cpu_seconds);
      sweep_s.push_back(swept.stats.verify_cpu_seconds);
      if (rep == 0) {
        row.verified = swept.stats.verified;
        row.sweep_chains = swept.stats.sweep_chains;
        row.sweep_instances = swept.stats.sweep_instances;
        row.sweep_fallbacks = swept.stats.sweep_fallbacks;
        row.swept_stats = swept.stats;
      }
    }
    row.base_verify_s = Median(base_s);
    row.sweep_verify_s = Median(sweep_s);
    row.base_verify_s_min = MinOf(base_s);
    row.sweep_verify_s_min = MinOf(sweep_s);
    row.speedup =
        row.sweep_verify_s > 0 ? row.base_verify_s / row.sweep_verify_s : 0;
    table.AddRow({row.algo, std::to_string(row.verified),
                  Fmt(row.base_verify_s, 4), Fmt(row.sweep_verify_s, 4),
                  Fmt(row.speedup, 2), std::to_string(row.sweep_chains),
                  std::to_string(row.sweep_instances),
                  std::to_string(row.sweep_fallbacks)});
    rows.push_back(std::move(row));
  }
  table.Print();
  WriteJson(rows, repeat, "BENCH_sweep_verify.json");
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  // --trace-detail full turns the whole bench into an overhead probe: same
  // timed sections, tracer + metrics hot (DESIGN.md §13 quotes the delta).
  fairsqg::obs::TraceDetail detail =
      fairsqg::bench::ParseTraceDetail(argc, argv);
  if (detail != fairsqg::obs::TraceDetail::kOff) {
    fairsqg::obs::Tracer::Global().Enable(detail);
    fairsqg::obs::MetricsRegistry::Global().set_enabled(true);
  }
  fairsqg::bench::Run(fairsqg::bench::ParseRepeat(argc, argv));
  return 0;
}
