// Ablation (DESIGN.md §7): incVerify — incremental verification along a
// refinement chain vs full re-matching of every instance, measured on the
// LKI scenario as a google-benchmark comparison.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/verifier.h"
#include "query/refinement.h"

namespace fairsqg::bench {
namespace {

const Scenario& GetScenario() {
  static Scenario* scenario = [] {
    Result<Scenario> s = MakeScenario(DefaultOptions("lki"));
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    return new Scenario(std::move(s).ValueOrDie());
  }();
  return *scenario;
}

/// Walks a refinement chain from the root to the bottom, verifying each
/// step either incrementally (from the parent) or from scratch.
void BM_Chain(benchmark::State& state, bool incremental) {
  const Scenario& s = GetScenario();
  QGenConfig config = s.MakeConfig(0.01);
  config.use_incremental_verify = incremental;
  for (auto _ : state) {
    InstanceVerifier verifier(config);
    Instantiation inst = Instantiation::MostRelaxed(*s.tmpl);
    CandidateSpace cands;
    EvaluatedPtr eval = verifier.Verify(inst, &cands);
    size_t steps = 0;
    for (;;) {
      auto children = LatticeNeighbors::RefineChildren(
          *s.tmpl, *s.domains, inst, RefinementHints::None(*s.tmpl));
      if (children.empty()) break;
      const LatticeStep& step = children[steps % children.size()];
      CandidateSpace next_cands;
      EvaluatedPtr next =
          incremental
              ? verifier.VerifyRefined(step.inst, cands, *eval,
                                       step.var_index, &next_cands)
              : verifier.Verify(step.inst, &next_cands);
      inst = step.inst;
      eval = std::move(next);
      cands = std::move(next_cands);
      ++steps;
    }
    benchmark::DoNotOptimize(steps);
    state.counters["chain_len"] = static_cast<double>(steps);
  }
}

void BM_Incremental(benchmark::State& state) { BM_Chain(state, true); }
void BM_FullRematch(benchmark::State& state) { BM_Chain(state, false); }

BENCHMARK(BM_Incremental)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_FullRematch)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace fairsqg::bench

BENCHMARK_MAIN();
