// Perf harness for the attribute-range-index candidate pipeline and the
// match-set cache (DESIGN.md §10): per dataset,
//  (a) candidate-space construction over an enumerated instance sample,
//      reference label scan vs index slicing / bitmap filtering;
//  (b) end-to-end Bi-QGen, scan path without a cache vs index path with a
//      shared MatchSetCache.
// Emits the console table plus machine-readable BENCH_candidate_index.json
// in the working directory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bi_qgen.h"
#include "core/match_cache.h"
#include "matching/candidate_space.h"

namespace fairsqg::bench {
namespace {

/// Instances sampled from the front of the enumeration order (which starts
/// at the most relaxed instance and sweeps the space systematically).
constexpr size_t kMaxInstances = 300;
/// Repetitions of the construction sweep per timing.
constexpr int kReps = 5;

struct BuildTiming {
  size_t instances = 0;
  double scan_ms = 0;
  double index_ms = 0;
  double speedup = 0;
};

struct EndToEnd {
  double baseline_s = 0;   // Scan candidates, no cache.
  double optimized_s = 0;  // Index candidates + cold match-set cache.
  double warm_s = 0;       // Index candidates + warm cache (rerun).
  double speedup = 0;      // baseline / optimized (cold).
  double warm_speedup = 0; // baseline / warm rerun.
  size_t cache_hits = 0;   // Hits during the warm rerun.
  size_t cache_misses = 0; // Misses during the cold run.
  GenStats opt_stats;      // Full GenStats of the cold optimized run.
};

std::vector<QueryInstance> SampleInstances(const Scenario& s) {
  std::vector<QueryInstance> out;
  InstantiationEnumerator it(*s.tmpl, *s.domains);
  Instantiation inst;
  while (out.size() < kMaxInstances && it.Next(&inst)) {
    out.push_back(QueryInstance::Materialize(*s.tmpl, *s.domains, inst));
  }
  return out;
}

double TimeBuilds(const Graph& g, const std::vector<QueryInstance>& instances,
                  bool use_index) {
  Timer timer;
  size_t total = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const QueryInstance& q : instances) {
      CandidateSpace space =
          CandidateSpace::Build(g, q, /*degree_filter=*/true, use_index);
      total += space.of(q.output_node()).size();
    }
  }
  // Consume `total` so the builds cannot be elided.
  if (total == static_cast<size_t>(-1)) std::printf("impossible\n");
  return timer.ElapsedMillis() / kReps;
}

BuildTiming BenchCandidateBuild(const Scenario& s) {
  std::vector<QueryInstance> instances = SampleInstances(s);
  BuildTiming t;
  t.instances = instances.size();
  // Warm-up pass, then measure scan and index sweeps over the same sample.
  TimeBuilds(s.dataset.graph, instances, /*use_index=*/true);
  t.scan_ms = TimeBuilds(s.dataset.graph, instances, /*use_index=*/false);
  t.index_ms = TimeBuilds(s.dataset.graph, instances, /*use_index=*/true);
  t.speedup = t.index_ms > 0 ? t.scan_ms / t.index_ms : 0;
  return t;
}

EndToEnd BenchBiQGen(const Scenario& s) {
  EndToEnd e;
  QGenConfig config = s.MakeConfig(0.01);
  config.use_candidate_index = false;
  Timer baseline;
  QGenResult base = BiQGen::Run(config).ValueOrDie();
  e.baseline_s = baseline.ElapsedSeconds();

  config.use_candidate_index = true;
  MatchSetCache cache;
  config.match_cache = &cache;
  Timer optimized;
  QGenResult opt = BiQGen::Run(config).ValueOrDie();
  e.optimized_s = optimized.ElapsedSeconds();
  e.speedup = e.optimized_s > 0 ? e.baseline_s / e.optimized_s : 0;
  e.cache_misses = opt.stats.cache_misses;
  e.opt_stats = opt.stats;

  // Rerun against the warm cache: the amortized regime of repeated
  // generation over one scenario (parameter sweeps, online re-generation),
  // where every verification becomes a lookup.
  Timer warm;
  QGenResult rerun = BiQGen::Run(config).ValueOrDie();
  e.warm_s = warm.ElapsedSeconds();
  e.warm_speedup = e.warm_s > 0 ? e.baseline_s / e.warm_s : 0;
  e.cache_hits = rerun.stats.cache_hits;
  FAIRSQG_CHECK(base.pareto.size() == opt.pareto.size())
      << "optimized path changed the Pareto front";
  FAIRSQG_CHECK(rerun.pareto.size() == opt.pareto.size())
      << "warm rerun changed the Pareto front";
  return e;
}

struct Row {
  std::string dataset;
  size_t nodes = 0;
  size_t edges = 0;
  BuildTiming build;   // Median across --repeat runs.
  EndToEnd e2e;        // Median across --repeat runs.
  double scan_ms_min = 0, index_ms_min = 0;
  double baseline_s_min = 0, optimized_s_min = 0, warm_s_min = 0;
};

void WriteJson(const std::vector<Row>& rows, int repeat,
               const std::string& path) {
  obs::Json root = BenchReport("candidate_index", repeat);
  root.Set("scale", obs::Json(BenchScale()));
  root.Set("reps", obs::Json(static_cast<int64_t>(kReps)));
  obs::Json datasets = obs::Json::Array();
  for (const Row& r : rows) {
    obs::Json row = obs::Json::Object();
    row.Set("name", obs::Json(r.dataset));
    row.Set("nodes", obs::Json(static_cast<uint64_t>(r.nodes)));
    row.Set("edges", obs::Json(static_cast<uint64_t>(r.edges)));
    obs::Json build = obs::Json::Object();
    build.Set("instances", obs::Json(static_cast<uint64_t>(r.build.instances)));
    build.Set("scan_ms", obs::Json(r.build.scan_ms));
    build.Set("index_ms", obs::Json(r.build.index_ms));
    build.Set("scan_ms_min", obs::Json(r.scan_ms_min));
    build.Set("index_ms_min", obs::Json(r.index_ms_min));
    build.Set("speedup", obs::Json(r.build.speedup));
    row.Set("candidate_build", std::move(build));
    obs::Json biqgen = obs::Json::Object();
    biqgen.Set("baseline_s", obs::Json(r.e2e.baseline_s));
    biqgen.Set("optimized_s", obs::Json(r.e2e.optimized_s));
    biqgen.Set("warm_s", obs::Json(r.e2e.warm_s));
    biqgen.Set("baseline_s_min", obs::Json(r.baseline_s_min));
    biqgen.Set("optimized_s_min", obs::Json(r.optimized_s_min));
    biqgen.Set("warm_s_min", obs::Json(r.warm_s_min));
    biqgen.Set("speedup", obs::Json(r.e2e.speedup));
    biqgen.Set("warm_speedup", obs::Json(r.e2e.warm_speedup));
    biqgen.Set("cache_hits", obs::Json(static_cast<uint64_t>(r.e2e.cache_hits)));
    biqgen.Set("cache_misses",
               obs::Json(static_cast<uint64_t>(r.e2e.cache_misses)));
    biqgen.Set("stats", obs::RunReport::StatsJson(r.e2e.opt_stats));
    row.Set("biqgen", std::move(biqgen));
    datasets.Push(std::move(row));
  }
  root.Set("datasets", std::move(datasets));
  WriteBenchJson(root, path);
}

void Run(int repeat) {
  PrintFigureHeader(
      "candidate-index", "attribute range indexes + bitmap candidate filtering",
      "candidate construction per instance sample; Bi-QGen end to end; "
      "median of " + std::to_string(repeat) + " run(s)");
  Table table({"dataset", "nodes", "insts", "scan ms", "index ms", "build x",
               "biqgen base s", "biqgen opt s", "warm s", "cold x", "warm x",
               "hits", "misses"});
  std::vector<Row> rows;
  for (const std::string dataset : {"dbp", "lki", "cite"}) {
    Result<Scenario> s = MakeScenario(DefaultOptions(dataset));
    FAIRSQG_CHECK(s.ok()) << s.status().ToString();
    Row row;
    row.dataset = dataset;
    row.nodes = s->dataset.graph.num_nodes();
    row.edges = s->dataset.graph.num_edges();
    std::vector<double> scan_ms, index_ms, base_s, opt_s, warm_s;
    for (int rep = 0; rep < repeat; ++rep) {
      BuildTiming b = BenchCandidateBuild(*s);
      EndToEnd e = BenchBiQGen(*s);
      if (rep == 0) {
        row.build = b;
        row.e2e = e;
      }
      scan_ms.push_back(b.scan_ms);
      index_ms.push_back(b.index_ms);
      base_s.push_back(e.baseline_s);
      opt_s.push_back(e.optimized_s);
      warm_s.push_back(e.warm_s);
    }
    row.build.scan_ms = Median(scan_ms);
    row.build.index_ms = Median(index_ms);
    row.build.speedup =
        row.build.index_ms > 0 ? row.build.scan_ms / row.build.index_ms : 0;
    row.scan_ms_min = MinOf(scan_ms);
    row.index_ms_min = MinOf(index_ms);
    row.e2e.baseline_s = Median(base_s);
    row.e2e.optimized_s = Median(opt_s);
    row.e2e.warm_s = Median(warm_s);
    row.e2e.speedup =
        row.e2e.optimized_s > 0 ? row.e2e.baseline_s / row.e2e.optimized_s : 0;
    row.e2e.warm_speedup =
        row.e2e.warm_s > 0 ? row.e2e.baseline_s / row.e2e.warm_s : 0;
    row.baseline_s_min = MinOf(base_s);
    row.optimized_s_min = MinOf(opt_s);
    row.warm_s_min = MinOf(warm_s);
    table.AddRow({dataset, std::to_string(row.nodes),
                  std::to_string(row.build.instances), Fmt(row.build.scan_ms, 2),
                  Fmt(row.build.index_ms, 2), Fmt(row.build.speedup, 2),
                  Fmt(row.e2e.baseline_s, 3), Fmt(row.e2e.optimized_s, 3),
                  Fmt(row.e2e.warm_s, 3), Fmt(row.e2e.speedup, 2),
                  Fmt(row.e2e.warm_speedup, 2),
                  std::to_string(row.e2e.cache_hits),
                  std::to_string(row.e2e.cache_misses)});
    rows.push_back(std::move(row));
  }
  table.Print();
  WriteJson(rows, repeat, "BENCH_candidate_index.json");
}

}  // namespace
}  // namespace fairsqg::bench

int main(int argc, char** argv) {
  fairsqg::bench::Run(fairsqg::bench::ParseRepeat(argc, argv));
  return 0;
}
