#ifndef FAIRSQG_BENCH_BENCH_COMMON_H_
#define FAIRSQG_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/enumerate.h"
#include "core/indicators.h"
#include "core/qgen_result.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace fairsqg::bench {

/// Version stamped as "schema_version" into every BENCH_*.json this
/// harness emits; bump whenever a field name or its semantics change so
/// downstream consumers (tools/check_bench_regression.py, dashboards) can
/// refuse to compare incompatible files.
///
/// v3: the file is a RunReport-shaped snapshot ("kind":
/// "fairsqg.run_report") built with obs::Json, and each row embeds the
/// full GenStats view of its representative run under "stats".
constexpr int kBenchSchemaVersion = 3;

/// Root object of one BENCH_*.json: the RunReport discriminator ("kind")
/// plus the bench id, this harness's schema stamp, and the repeat count.
/// Benches add their scenario fields and a row array, then hand the
/// finished object to WriteBenchJson.
obs::Json BenchReport(const std::string& bench, int repeat);

/// Pretty-prints `root` to `path` (trailing newline included) and logs the
/// path to stdout; CHECK-fails when the file cannot be written.
void WriteBenchJson(const obs::Json& root, const std::string& path);

/// Parses `--repeat N` from the benchmark's argv (default 1). Benchmarks
/// rerun each timed section N times and report the median (typical run)
/// and min (noise floor) of the samples.
int ParseRepeat(int argc, char** argv);

/// Parses `--trace-detail off|phase|full` (default off). Benches that honor
/// it enable the global tracer (and metrics) before their timed sections so
/// the observability overhead is measurable with the same harness that
/// produced the committed baselines (DESIGN.md §13). CHECK-fails on an
/// unknown level.
obs::TraceDetail ParseTraceDetail(int argc, char** argv);

/// Median of `samples` — the average of the middle two for even counts;
/// 0 when empty.
double Median(std::vector<double> samples);

/// Minimum of `samples`; 0 when empty.
double MinOf(const std::vector<double>& samples);

/// Ground truth of one configuration: the fully verified instance space,
/// its feasible subset, the exact Pareto set, and the objective maxima used
/// to normalize indicators.
struct Truth {
  std::vector<EvaluatedPtr> all;
  std::vector<EvaluatedPtr> feasible;
  std::vector<EvaluatedPtr> pareto;
  Objectives maxima;
  double seconds = 0;
};

/// Verifies the whole instance space once (shared by the indicator rows).
Result<Truth> ComputeTruth(const QGenConfig& config);

/// Fixed-width console table in the style of the paper's figures.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string Fmt(double value, int precision = 3);

/// Prints a figure banner: id, paper caption, and our setting line.
void PrintFigureHeader(const std::string& figure, const std::string& caption,
                       const std::string& setting);

/// Paper-default scenario options per dataset (Table II row), scaled to
/// bench size. Reads FAIRSQG_BENCH_SCALE (double) from the environment to
/// raise or lower all dataset sizes.
ScenarioOptions DefaultOptions(const std::string& dataset);

/// Benchmark-wide graph scale (default 0.15; override with env
/// FAIRSQG_BENCH_SCALE).
double BenchScale();

}  // namespace fairsqg::bench

#endif  // FAIRSQG_BENCH_BENCH_COMMON_H_
