file(REMOVE_RECURSE
  "CMakeFiles/generators_property_test.dir/generators_property_test.cc.o"
  "CMakeFiles/generators_property_test.dir/generators_property_test.cc.o.d"
  "generators_property_test"
  "generators_property_test.pdb"
  "generators_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
