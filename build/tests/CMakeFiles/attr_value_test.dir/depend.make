# Empty dependencies file for attr_value_test.
# This may be replaced when dependencies are built.
