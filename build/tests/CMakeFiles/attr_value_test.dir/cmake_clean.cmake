file(REMOVE_RECURSE
  "CMakeFiles/attr_value_test.dir/attr_value_test.cc.o"
  "CMakeFiles/attr_value_test.dir/attr_value_test.cc.o.d"
  "attr_value_test"
  "attr_value_test.pdb"
  "attr_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
