# Empty compiler generated dependencies file for rpq_test.
# This may be replaced when dependencies are built.
