file(REMOVE_RECURSE
  "CMakeFiles/rpq_test.dir/rpq_test.cc.o"
  "CMakeFiles/rpq_test.dir/rpq_test.cc.o.d"
  "rpq_test"
  "rpq_test.pdb"
  "rpq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
