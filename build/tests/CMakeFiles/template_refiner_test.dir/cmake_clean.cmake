file(REMOVE_RECURSE
  "CMakeFiles/template_refiner_test.dir/template_refiner_test.cc.o"
  "CMakeFiles/template_refiner_test.dir/template_refiner_test.cc.o.d"
  "template_refiner_test"
  "template_refiner_test.pdb"
  "template_refiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
