# Empty compiler generated dependencies file for template_refiner_test.
# This may be replaced when dependencies are built.
