# Empty compiler generated dependencies file for pareto_archive_test.
# This may be replaced when dependencies are built.
