file(REMOVE_RECURSE
  "CMakeFiles/pareto_archive_test.dir/pareto_archive_test.cc.o"
  "CMakeFiles/pareto_archive_test.dir/pareto_archive_test.cc.o.d"
  "pareto_archive_test"
  "pareto_archive_test.pdb"
  "pareto_archive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
