file(REMOVE_RECURSE
  "CMakeFiles/multi_output_test.dir/multi_output_test.cc.o"
  "CMakeFiles/multi_output_test.dir/multi_output_test.cc.o.d"
  "multi_output_test"
  "multi_output_test.pdb"
  "multi_output_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_output_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
