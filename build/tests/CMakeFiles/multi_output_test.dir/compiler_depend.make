# Empty compiler generated dependencies file for multi_output_test.
# This may be replaced when dependencies are built.
