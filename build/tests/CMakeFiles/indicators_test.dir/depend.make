# Empty dependencies file for indicators_test.
# This may be replaced when dependencies are built.
