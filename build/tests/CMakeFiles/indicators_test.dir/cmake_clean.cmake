file(REMOVE_RECURSE
  "CMakeFiles/indicators_test.dir/indicators_test.cc.o"
  "CMakeFiles/indicators_test.dir/indicators_test.cc.o.d"
  "indicators_test"
  "indicators_test.pdb"
  "indicators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indicators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
