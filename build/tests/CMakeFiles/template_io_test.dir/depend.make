# Empty dependencies file for template_io_test.
# This may be replaced when dependencies are built.
