file(REMOVE_RECURSE
  "CMakeFiles/template_io_test.dir/template_io_test.cc.o"
  "CMakeFiles/template_io_test.dir/template_io_test.cc.o.d"
  "template_io_test"
  "template_io_test.pdb"
  "template_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
