file(REMOVE_RECURSE
  "CMakeFiles/query_template_test.dir/query_template_test.cc.o"
  "CMakeFiles/query_template_test.dir/query_template_test.cc.o.d"
  "query_template_test"
  "query_template_test.pdb"
  "query_template_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
