# Empty dependencies file for query_template_test.
# This may be replaced when dependencies are built.
