file(REMOVE_RECURSE
  "CMakeFiles/fairness_rules_test.dir/fairness_rules_test.cc.o"
  "CMakeFiles/fairness_rules_test.dir/fairness_rules_test.cc.o.d"
  "fairness_rules_test"
  "fairness_rules_test.pdb"
  "fairness_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
