# Empty dependencies file for online_qgen_test.
# This may be replaced when dependencies are built.
