file(REMOVE_RECURSE
  "CMakeFiles/online_qgen_test.dir/online_qgen_test.cc.o"
  "CMakeFiles/online_qgen_test.dir/online_qgen_test.cc.o.d"
  "online_qgen_test"
  "online_qgen_test.pdb"
  "online_qgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_qgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
