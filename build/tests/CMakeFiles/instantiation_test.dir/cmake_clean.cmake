file(REMOVE_RECURSE
  "CMakeFiles/instantiation_test.dir/instantiation_test.cc.o"
  "CMakeFiles/instantiation_test.dir/instantiation_test.cc.o.d"
  "instantiation_test"
  "instantiation_test.pdb"
  "instantiation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instantiation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
