# Empty dependencies file for instantiation_test.
# This may be replaced when dependencies are built.
