# Empty dependencies file for parallel_qgen_test.
# This may be replaced when dependencies are built.
