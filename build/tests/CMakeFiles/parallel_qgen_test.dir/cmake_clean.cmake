file(REMOVE_RECURSE
  "CMakeFiles/parallel_qgen_test.dir/parallel_qgen_test.cc.o"
  "CMakeFiles/parallel_qgen_test.dir/parallel_qgen_test.cc.o.d"
  "parallel_qgen_test"
  "parallel_qgen_test.pdb"
  "parallel_qgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_qgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
