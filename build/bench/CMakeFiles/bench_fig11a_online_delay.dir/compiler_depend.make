# Empty compiler generated dependencies file for bench_fig11a_online_delay.
# This may be replaced when dependencies are built.
