file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_online_delay.dir/bench_fig11a_online_delay.cc.o"
  "CMakeFiles/bench_fig11a_online_delay.dir/bench_fig11a_online_delay.cc.o.d"
  "bench_fig11a_online_delay"
  "bench_fig11a_online_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_online_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
