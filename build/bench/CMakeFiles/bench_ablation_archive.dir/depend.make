# Empty dependencies file for bench_ablation_archive.
# This may be replaced when dependencies are built.
