
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_archive.cc" "bench/CMakeFiles/bench_ablation_archive.dir/bench_ablation_archive.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_archive.dir/bench_ablation_archive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fairsqg_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fairsqg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fairsqg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/fairsqg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fairsqg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fairsqg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
