file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_archive.dir/bench_ablation_archive.cc.o"
  "CMakeFiles/bench_ablation_archive.dir/bench_ablation_archive.cc.o.d"
  "bench_ablation_archive"
  "bench_ablation_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
