file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_efficiency.dir/bench_fig10a_efficiency.cc.o"
  "CMakeFiles/bench_fig10a_efficiency.dir/bench_fig10a_efficiency.cc.o.d"
  "bench_fig10a_efficiency"
  "bench_fig10a_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
