# Empty dependencies file for bench_fig10a_efficiency.
# This may be replaced when dependencies are built.
