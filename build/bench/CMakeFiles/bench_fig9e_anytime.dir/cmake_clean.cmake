file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9e_anytime.dir/bench_fig9e_anytime.cc.o"
  "CMakeFiles/bench_fig9e_anytime.dir/bench_fig9e_anytime.cc.o.d"
  "bench_fig9e_anytime"
  "bench_fig9e_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9e_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
