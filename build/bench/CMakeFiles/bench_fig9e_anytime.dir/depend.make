# Empty dependencies file for bench_fig9e_anytime.
# This may be replaced when dependencies are built.
