file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_parallel.dir/bench_ext_parallel.cc.o"
  "CMakeFiles/bench_ext_parallel.dir/bench_ext_parallel.cc.o.d"
  "bench_ext_parallel"
  "bench_ext_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
