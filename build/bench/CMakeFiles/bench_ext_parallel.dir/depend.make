# Empty dependencies file for bench_ext_parallel.
# This may be replaced when dependencies are built.
