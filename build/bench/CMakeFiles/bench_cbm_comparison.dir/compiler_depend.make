# Empty compiler generated dependencies file for bench_cbm_comparison.
# This may be replaced when dependencies are built.
