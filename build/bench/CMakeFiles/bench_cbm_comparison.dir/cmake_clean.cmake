file(REMOVE_RECURSE
  "CMakeFiles/bench_cbm_comparison.dir/bench_cbm_comparison.cc.o"
  "CMakeFiles/bench_cbm_comparison.dir/bench_cbm_comparison.cc.o.d"
  "bench_cbm_comparison"
  "bench_cbm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cbm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
