file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9d_vary_xe.dir/bench_fig9d_vary_xe.cc.o"
  "CMakeFiles/bench_fig9d_vary_xe.dir/bench_fig9d_vary_xe.cc.o.d"
  "bench_fig9d_vary_xe"
  "bench_fig9d_vary_xe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9d_vary_xe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
