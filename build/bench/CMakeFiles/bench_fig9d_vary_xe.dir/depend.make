# Empty dependencies file for bench_fig9d_vary_xe.
# This may be replaced when dependencies are built.
