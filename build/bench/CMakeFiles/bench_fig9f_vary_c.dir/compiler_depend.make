# Empty compiler generated dependencies file for bench_fig9f_vary_c.
# This may be replaced when dependencies are built.
