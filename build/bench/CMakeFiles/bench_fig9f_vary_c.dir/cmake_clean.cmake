file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9f_vary_c.dir/bench_fig9f_vary_c.cc.o"
  "CMakeFiles/bench_fig9f_vary_c.dir/bench_fig9f_vary_c.cc.o.d"
  "bench_fig9f_vary_c"
  "bench_fig9f_vary_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9f_vary_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
