# Empty compiler generated dependencies file for bench_fig10c_vary_xl.
# This may be replaced when dependencies are built.
