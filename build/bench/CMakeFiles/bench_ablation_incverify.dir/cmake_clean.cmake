file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incverify.dir/bench_ablation_incverify.cc.o"
  "CMakeFiles/bench_ablation_incverify.dir/bench_ablation_incverify.cc.o.d"
  "bench_ablation_incverify"
  "bench_ablation_incverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
