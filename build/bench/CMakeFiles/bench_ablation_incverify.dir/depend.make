# Empty dependencies file for bench_ablation_incverify.
# This may be replaced when dependencies are built.
