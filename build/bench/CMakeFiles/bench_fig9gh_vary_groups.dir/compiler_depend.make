# Empty compiler generated dependencies file for bench_fig9gh_vary_groups.
# This may be replaced when dependencies are built.
