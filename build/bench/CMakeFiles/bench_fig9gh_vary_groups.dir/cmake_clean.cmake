file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9gh_vary_groups.dir/bench_fig9gh_vary_groups.cc.o"
  "CMakeFiles/bench_fig9gh_vary_groups.dir/bench_fig9gh_vary_groups.cc.o.d"
  "bench_fig9gh_vary_groups"
  "bench_fig9gh_vary_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9gh_vary_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
