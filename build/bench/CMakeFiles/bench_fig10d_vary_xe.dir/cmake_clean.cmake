file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d_vary_xe.dir/bench_fig10d_vary_xe.cc.o"
  "CMakeFiles/bench_fig10d_vary_xe.dir/bench_fig10d_vary_xe.cc.o.d"
  "bench_fig10d_vary_xe"
  "bench_fig10d_vary_xe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d_vary_xe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
