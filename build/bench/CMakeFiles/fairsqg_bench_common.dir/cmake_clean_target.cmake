file(REMOVE_RECURSE
  "libfairsqg_bench_common.a"
)
