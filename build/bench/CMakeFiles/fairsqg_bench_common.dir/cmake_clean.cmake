file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/fairsqg_bench_common.dir/bench_common.cc.o.d"
  "libfairsqg_bench_common.a"
  "libfairsqg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
