# Empty dependencies file for fairsqg_bench_common.
# This may be replaced when dependencies are built.
