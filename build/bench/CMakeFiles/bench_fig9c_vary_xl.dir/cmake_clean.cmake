file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_vary_xl.dir/bench_fig9c_vary_xl.cc.o"
  "CMakeFiles/bench_fig9c_vary_xl.dir/bench_fig9c_vary_xl.cc.o.d"
  "bench_fig9c_vary_xl"
  "bench_fig9c_vary_xl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_vary_xl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
