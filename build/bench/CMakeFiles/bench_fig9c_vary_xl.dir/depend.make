# Empty dependencies file for bench_fig9c_vary_xl.
# This may be replaced when dependencies are built.
