# Empty dependencies file for bench_fig9b_vary_epsilon.
# This may be replaced when dependencies are built.
