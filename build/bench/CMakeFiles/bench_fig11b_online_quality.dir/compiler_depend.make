# Empty compiler generated dependencies file for bench_fig11b_online_quality.
# This may be replaced when dependencies are built.
