file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_online_quality.dir/bench_fig11b_online_quality.cc.o"
  "CMakeFiles/bench_fig11b_online_quality.dir/bench_fig11b_online_quality.cc.o.d"
  "bench_fig11b_online_quality"
  "bench_fig11b_online_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_online_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
