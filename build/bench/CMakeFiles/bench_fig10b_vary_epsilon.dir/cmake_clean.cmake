file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_vary_epsilon.dir/bench_fig10b_vary_epsilon.cc.o"
  "CMakeFiles/bench_fig10b_vary_epsilon.dir/bench_fig10b_vary_epsilon.cc.o.d"
  "bench_fig10b_vary_epsilon"
  "bench_fig10b_vary_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_vary_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
