# Empty compiler generated dependencies file for bench_fig10b_vary_epsilon.
# This may be replaced when dependencies are built.
