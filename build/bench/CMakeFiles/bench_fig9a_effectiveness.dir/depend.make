# Empty dependencies file for bench_fig9a_effectiveness.
# This may be replaced when dependencies are built.
