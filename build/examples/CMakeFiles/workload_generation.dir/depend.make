# Empty dependencies file for workload_generation.
# This may be replaced when dependencies are built.
