file(REMOVE_RECURSE
  "CMakeFiles/workload_generation.dir/workload_generation.cpp.o"
  "CMakeFiles/workload_generation.dir/workload_generation.cpp.o.d"
  "workload_generation"
  "workload_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
