# Empty dependencies file for rpq_exploration.
# This may be replaced when dependencies are built.
