file(REMOVE_RECURSE
  "CMakeFiles/rpq_exploration.dir/rpq_exploration.cpp.o"
  "CMakeFiles/rpq_exploration.dir/rpq_exploration.cpp.o.d"
  "rpq_exploration"
  "rpq_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
