# Empty compiler generated dependencies file for movie_recommendation.
# This may be replaced when dependencies are built.
