file(REMOVE_RECURSE
  "CMakeFiles/movie_recommendation.dir/movie_recommendation.cpp.o"
  "CMakeFiles/movie_recommendation.dir/movie_recommendation.cpp.o.d"
  "movie_recommendation"
  "movie_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
