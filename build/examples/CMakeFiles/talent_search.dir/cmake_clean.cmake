file(REMOVE_RECURSE
  "CMakeFiles/talent_search.dir/talent_search.cpp.o"
  "CMakeFiles/talent_search.dir/talent_search.cpp.o.d"
  "talent_search"
  "talent_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/talent_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
