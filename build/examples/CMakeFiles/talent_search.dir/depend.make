# Empty dependencies file for talent_search.
# This may be replaced when dependencies are built.
