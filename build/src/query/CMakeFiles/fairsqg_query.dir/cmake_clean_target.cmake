file(REMOVE_RECURSE
  "libfairsqg_query.a"
)
