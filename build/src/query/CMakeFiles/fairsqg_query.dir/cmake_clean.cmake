file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_query.dir/domains.cc.o"
  "CMakeFiles/fairsqg_query.dir/domains.cc.o.d"
  "CMakeFiles/fairsqg_query.dir/instance.cc.o"
  "CMakeFiles/fairsqg_query.dir/instance.cc.o.d"
  "CMakeFiles/fairsqg_query.dir/instantiation.cc.o"
  "CMakeFiles/fairsqg_query.dir/instantiation.cc.o.d"
  "CMakeFiles/fairsqg_query.dir/query_template.cc.o"
  "CMakeFiles/fairsqg_query.dir/query_template.cc.o.d"
  "CMakeFiles/fairsqg_query.dir/refinement.cc.o"
  "CMakeFiles/fairsqg_query.dir/refinement.cc.o.d"
  "CMakeFiles/fairsqg_query.dir/template_io.cc.o"
  "CMakeFiles/fairsqg_query.dir/template_io.cc.o.d"
  "libfairsqg_query.a"
  "libfairsqg_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
