
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/domains.cc" "src/query/CMakeFiles/fairsqg_query.dir/domains.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/domains.cc.o.d"
  "/root/repo/src/query/instance.cc" "src/query/CMakeFiles/fairsqg_query.dir/instance.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/instance.cc.o.d"
  "/root/repo/src/query/instantiation.cc" "src/query/CMakeFiles/fairsqg_query.dir/instantiation.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/instantiation.cc.o.d"
  "/root/repo/src/query/query_template.cc" "src/query/CMakeFiles/fairsqg_query.dir/query_template.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/query_template.cc.o.d"
  "/root/repo/src/query/refinement.cc" "src/query/CMakeFiles/fairsqg_query.dir/refinement.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/refinement.cc.o.d"
  "/root/repo/src/query/template_io.cc" "src/query/CMakeFiles/fairsqg_query.dir/template_io.cc.o" "gcc" "src/query/CMakeFiles/fairsqg_query.dir/template_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/fairsqg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
