# Empty compiler generated dependencies file for fairsqg_query.
# This may be replaced when dependencies are built.
