file(REMOVE_RECURSE
  "libfairsqg_rpq.a"
)
