# Empty compiler generated dependencies file for fairsqg_rpq.
# This may be replaced when dependencies are built.
