file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_rpq.dir/automaton.cc.o"
  "CMakeFiles/fairsqg_rpq.dir/automaton.cc.o.d"
  "CMakeFiles/fairsqg_rpq.dir/regex.cc.o"
  "CMakeFiles/fairsqg_rpq.dir/regex.cc.o.d"
  "CMakeFiles/fairsqg_rpq.dir/rpq_engine.cc.o"
  "CMakeFiles/fairsqg_rpq.dir/rpq_engine.cc.o.d"
  "libfairsqg_rpq.a"
  "libfairsqg_rpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
