
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpq/automaton.cc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/automaton.cc.o" "gcc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/automaton.cc.o.d"
  "/root/repo/src/rpq/regex.cc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/regex.cc.o" "gcc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/regex.cc.o.d"
  "/root/repo/src/rpq/rpq_engine.cc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/rpq_engine.cc.o" "gcc" "src/rpq/CMakeFiles/fairsqg_rpq.dir/rpq_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/fairsqg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
