file(REMOVE_RECURSE
  "libfairsqg_workload.a"
)
