
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/citation_generator.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/citation_generator.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/citation_generator.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/instance_stream.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/instance_stream.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/instance_stream.cc.o.d"
  "/root/repo/src/workload/movie_kg_generator.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/movie_kg_generator.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/movie_kg_generator.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/social_net_generator.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/social_net_generator.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/social_net_generator.cc.o.d"
  "/root/repo/src/workload/template_generator.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/template_generator.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/template_generator.cc.o.d"
  "/root/repo/src/workload/workload_io.cc" "src/workload/CMakeFiles/fairsqg_workload.dir/workload_io.cc.o" "gcc" "src/workload/CMakeFiles/fairsqg_workload.dir/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fairsqg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/fairsqg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fairsqg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fairsqg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
