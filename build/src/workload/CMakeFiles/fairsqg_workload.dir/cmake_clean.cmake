file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_workload.dir/citation_generator.cc.o"
  "CMakeFiles/fairsqg_workload.dir/citation_generator.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/datasets.cc.o"
  "CMakeFiles/fairsqg_workload.dir/datasets.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/instance_stream.cc.o"
  "CMakeFiles/fairsqg_workload.dir/instance_stream.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/movie_kg_generator.cc.o"
  "CMakeFiles/fairsqg_workload.dir/movie_kg_generator.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/scenario.cc.o"
  "CMakeFiles/fairsqg_workload.dir/scenario.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/social_net_generator.cc.o"
  "CMakeFiles/fairsqg_workload.dir/social_net_generator.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/template_generator.cc.o"
  "CMakeFiles/fairsqg_workload.dir/template_generator.cc.o.d"
  "CMakeFiles/fairsqg_workload.dir/workload_io.cc.o"
  "CMakeFiles/fairsqg_workload.dir/workload_io.cc.o.d"
  "libfairsqg_workload.a"
  "libfairsqg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
