# Empty dependencies file for fairsqg_workload.
# This may be replaced when dependencies are built.
