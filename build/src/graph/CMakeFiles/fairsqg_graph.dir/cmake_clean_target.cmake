file(REMOVE_RECURSE
  "libfairsqg_graph.a"
)
