# Empty dependencies file for fairsqg_graph.
# This may be replaced when dependencies are built.
