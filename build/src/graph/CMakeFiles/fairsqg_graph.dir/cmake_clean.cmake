file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_graph.dir/attr_value.cc.o"
  "CMakeFiles/fairsqg_graph.dir/attr_value.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/csv_loader.cc.o"
  "CMakeFiles/fairsqg_graph.dir/csv_loader.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/graph.cc.o"
  "CMakeFiles/fairsqg_graph.dir/graph.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/graph_builder.cc.o"
  "CMakeFiles/fairsqg_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/graph_io.cc.o"
  "CMakeFiles/fairsqg_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/graph_stats.cc.o"
  "CMakeFiles/fairsqg_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/neighborhood.cc.o"
  "CMakeFiles/fairsqg_graph.dir/neighborhood.cc.o.d"
  "CMakeFiles/fairsqg_graph.dir/schema.cc.o"
  "CMakeFiles/fairsqg_graph.dir/schema.cc.o.d"
  "libfairsqg_graph.a"
  "libfairsqg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
