
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attr_value.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/attr_value.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/attr_value.cc.o.d"
  "/root/repo/src/graph/csv_loader.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/csv_loader.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/csv_loader.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/neighborhood.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/neighborhood.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/neighborhood.cc.o.d"
  "/root/repo/src/graph/schema.cc" "src/graph/CMakeFiles/fairsqg_graph.dir/schema.cc.o" "gcc" "src/graph/CMakeFiles/fairsqg_graph.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
