file(REMOVE_RECURSE
  "libfairsqg_core.a"
)
