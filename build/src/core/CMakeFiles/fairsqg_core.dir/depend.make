# Empty dependencies file for fairsqg_core.
# This may be replaced when dependencies are built.
