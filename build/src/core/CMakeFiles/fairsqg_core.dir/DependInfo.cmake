
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bi_qgen.cc" "src/core/CMakeFiles/fairsqg_core.dir/bi_qgen.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/bi_qgen.cc.o.d"
  "/root/repo/src/core/cbm.cc" "src/core/CMakeFiles/fairsqg_core.dir/cbm.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/cbm.cc.o.d"
  "/root/repo/src/core/enum_qgen.cc" "src/core/CMakeFiles/fairsqg_core.dir/enum_qgen.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/enum_qgen.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "src/core/CMakeFiles/fairsqg_core.dir/enumerate.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/enumerate.cc.o.d"
  "/root/repo/src/core/fairness_rules.cc" "src/core/CMakeFiles/fairsqg_core.dir/fairness_rules.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/fairness_rules.cc.o.d"
  "/root/repo/src/core/groups.cc" "src/core/CMakeFiles/fairsqg_core.dir/groups.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/groups.cc.o.d"
  "/root/repo/src/core/indicators.cc" "src/core/CMakeFiles/fairsqg_core.dir/indicators.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/indicators.cc.o.d"
  "/root/repo/src/core/kungs.cc" "src/core/CMakeFiles/fairsqg_core.dir/kungs.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/kungs.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/fairsqg_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/measures.cc.o.d"
  "/root/repo/src/core/multi_output.cc" "src/core/CMakeFiles/fairsqg_core.dir/multi_output.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/multi_output.cc.o.d"
  "/root/repo/src/core/online_qgen.cc" "src/core/CMakeFiles/fairsqg_core.dir/online_qgen.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/online_qgen.cc.o.d"
  "/root/repo/src/core/parallel_qgen.cc" "src/core/CMakeFiles/fairsqg_core.dir/parallel_qgen.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/parallel_qgen.cc.o.d"
  "/root/repo/src/core/pareto_archive.cc" "src/core/CMakeFiles/fairsqg_core.dir/pareto_archive.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/pareto_archive.cc.o.d"
  "/root/repo/src/core/rf_qgen.cc" "src/core/CMakeFiles/fairsqg_core.dir/rf_qgen.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/rf_qgen.cc.o.d"
  "/root/repo/src/core/template_refiner.cc" "src/core/CMakeFiles/fairsqg_core.dir/template_refiner.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/template_refiner.cc.o.d"
  "/root/repo/src/core/verifier.cc" "src/core/CMakeFiles/fairsqg_core.dir/verifier.cc.o" "gcc" "src/core/CMakeFiles/fairsqg_core.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/fairsqg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fairsqg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fairsqg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairsqg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
