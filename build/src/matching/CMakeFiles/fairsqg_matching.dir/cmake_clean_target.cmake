file(REMOVE_RECURSE
  "libfairsqg_matching.a"
)
