# Empty dependencies file for fairsqg_matching.
# This may be replaced when dependencies are built.
