file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_matching.dir/brute_force.cc.o"
  "CMakeFiles/fairsqg_matching.dir/brute_force.cc.o.d"
  "CMakeFiles/fairsqg_matching.dir/candidate_space.cc.o"
  "CMakeFiles/fairsqg_matching.dir/candidate_space.cc.o.d"
  "CMakeFiles/fairsqg_matching.dir/subgraph_matcher.cc.o"
  "CMakeFiles/fairsqg_matching.dir/subgraph_matcher.cc.o.d"
  "libfairsqg_matching.a"
  "libfairsqg_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
