# Empty compiler generated dependencies file for fairsqg_common.
# This may be replaced when dependencies are built.
