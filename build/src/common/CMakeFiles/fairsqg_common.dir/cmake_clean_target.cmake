file(REMOVE_RECURSE
  "libfairsqg_common.a"
)
