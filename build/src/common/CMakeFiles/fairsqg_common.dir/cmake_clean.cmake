file(REMOVE_RECURSE
  "CMakeFiles/fairsqg_common.dir/flags.cc.o"
  "CMakeFiles/fairsqg_common.dir/flags.cc.o.d"
  "CMakeFiles/fairsqg_common.dir/logging.cc.o"
  "CMakeFiles/fairsqg_common.dir/logging.cc.o.d"
  "CMakeFiles/fairsqg_common.dir/random.cc.o"
  "CMakeFiles/fairsqg_common.dir/random.cc.o.d"
  "CMakeFiles/fairsqg_common.dir/status.cc.o"
  "CMakeFiles/fairsqg_common.dir/status.cc.o.d"
  "CMakeFiles/fairsqg_common.dir/string_util.cc.o"
  "CMakeFiles/fairsqg_common.dir/string_util.cc.o.d"
  "libfairsqg_common.a"
  "libfairsqg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
