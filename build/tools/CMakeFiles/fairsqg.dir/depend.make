# Empty dependencies file for fairsqg.
# This may be replaced when dependencies are built.
