file(REMOVE_RECURSE
  "CMakeFiles/fairsqg.dir/fairsqg_cli.cc.o"
  "CMakeFiles/fairsqg.dir/fairsqg_cli.cc.o.d"
  "fairsqg"
  "fairsqg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairsqg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
