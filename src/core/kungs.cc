#include "core/kungs.h"

#include "common/timer.h"
#include "core/enumerate.h"
#include "obs/trace.h"

namespace fairsqg {

Result<QGenResult> Kungs::Run(const QGenConfig& config) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("kungs.run");
  Timer timer;
  QGenResult result;
  InstanceVerifier verifier(config);
  FAIRSQG_ASSIGN_OR_RETURN(
      std::vector<EvaluatedPtr> all,
      VerifyAllInstances(config, &verifier, &result.stats));
  result.pareto = ExactParetoSet(FeasibleOnly(all));
  result.stats.SetSequentialVerifySeconds(verifier.verify_seconds());
  result.stats.cache_hits = verifier.cache_hits();
  result.stats.cache_misses = verifier.cache_misses();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairsqg
