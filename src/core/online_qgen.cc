#include "core/online_qgen.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "obs/trace.h"

namespace fairsqg {

OnlineQGen::OnlineQGen(const QGenConfig& config, OnlineConfig online)
    : config_(&config),
      online_(online),
      verifier_(config),
      archive_(online.initial_epsilon) {
  FAIRSQG_CHECK_OK(config.Validate());
  FAIRSQG_CHECK(online.k > 0) << "k must be positive";
}

void OnlineQGen::ExpireWindow() {
  // Fig. 8 lines 5-6: drop cached instances older than now - w + 1.
  while (!window_.empty() &&
         window_.front().timestamp + online_.window < now_ + 1) {
    window_.pop_front();
  }
}

void OnlineQGen::TryPromoteCached() {
  // Fig. 8 lines 18-19: admit cached instances that no longer grow the set.
  for (auto it = window_.begin(); it != window_.end();) {
    UpdateOutcome would = archive_.Classify(*it->eval);
    bool non_growing = would == UpdateOutcome::kReplacedBoxes ||
                       would == UpdateOutcome::kReplacedInstance;
    if (non_growing || (archive_.size() < online_.k && Accepted(would))) {
      archive_.Update(it->eval);
      it = window_.erase(it);
    } else {
      ++it;
    }
  }
}

double OnlineQGen::Process(const Instantiation& inst) {
  FAIRSQG_TRACE_SPAN_FULL("online_qgen.process");
  Timer timer;
  if (config_->run_context != nullptr &&
      config_->run_context->PollVerification()) {
    FAIRSQG_TRACE_INSTANT("run_context.stop");
    // Stream element dropped: the archive keeps serving its current
    // best-so-far top-k; the caller sees the flag in Snapshot().stats.
    stats_.deadline_exceeded = true;
    return 0;
  }
  ++now_;
  ++stats_.generated;
  EvaluatedPtr eval = verifier_.Verify(inst);  // Line 4.
  if (eval == nullptr) {
    // Aborted mid-match; drop this element, keep the stream alive.
    stats_.aborted_matches = verifier_.aborted_matches();
    stats_.timed_out_instances = verifier_.timed_out_instances();
    double aborted_elapsed = timer.ElapsedSeconds();
    stats_.total_seconds += aborted_elapsed;
    return aborted_elapsed;
  }
  ++stats_.verified;
  ExpireWindow();
  if (!eval->feasible) {
    stats_.total_seconds += timer.ElapsedSeconds();
    return timer.ElapsedSeconds();
  }
  ++stats_.feasible;

  if (archive_.size() < online_.k) {
    // Lines 7-10: free capacity; cache rejected instances for later.
    UpdateOutcome outcome = archive_.Update(eval);
    if (!Accepted(outcome)) window_.push_back({eval, now_});
  } else {
    UpdateOutcome would = archive_.Classify(*eval);
    switch (would) {
      case UpdateOutcome::kReplacedBoxes:
      case UpdateOutcome::kReplacedInstance:
        // Lines 12-13: accepting cannot grow the set.
        archive_.Update(eval);
        break;
      case UpdateOutcome::kAddedNewBox: {
        // Lines 14-20: adding would exceed k. Enlarge ε to the distance to
        // the nearest member in the (δ, f) plane, which coarsens the grid
        // and merges boxes; then replace the nearest neighbour with q.
        EvaluatedPtr nearest;
        double best = 0;
        for (const ParetoArchive::Entry& e : archive_.entries()) {
          const EvaluatedPtr& m = e.instance;
          double dd = m->obj.diversity - eval->obj.diversity;
          double df = m->obj.coverage - eval->obj.coverage;
          double dist = std::sqrt(dd * dd + df * df);
          if (nearest == nullptr || dist < best) {
            best = dist;
            nearest = m;
          }
        }
        double grown = std::max(archive_.epsilon(),
                                archive_.epsilon() + best /
                                    (1.0 + verifier_.diversity().MaxDiversity() +
                                     verifier_.coverage().MaxCoverage()));
        archive_.SetEpsilon(grown);
        if (archive_.size() >= online_.k &&
            archive_.Classify(*eval) == UpdateOutcome::kAddedNewBox &&
            nearest != nullptr) {
          archive_.Remove(nearest);
          window_.push_back({nearest, now_});
        }
        archive_.Update(eval);
        TryPromoteCached();
        break;
      }
      default:
        // Rejected: keep it around, it may fit after future evictions.
        window_.push_back({eval, now_});
        break;
    }
  }
  // Invariant: never exceed k.
  FAIRSQG_CHECK(archive_.size() <= online_.k)
      << "online archive exceeded k=" << online_.k;
  double elapsed = timer.ElapsedSeconds();
  stats_.total_seconds += elapsed;
  stats_.SetSequentialVerifySeconds(verifier_.verify_seconds());
  stats_.cache_hits = verifier_.cache_hits();
  stats_.cache_misses = verifier_.cache_misses();
  stats_.aborted_matches = verifier_.aborted_matches();
  stats_.timed_out_instances = verifier_.timed_out_instances();
  return elapsed;
}

QGenResult OnlineQGen::Snapshot() const {
  QGenResult out;
  out.pareto = archive_.SortedEntries();
  out.stats = stats_;
  return out;
}

}  // namespace fairsqg
