#include "core/multi_output.h"

#include <algorithm>

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/pareto_archive.h"

namespace fairsqg {

MultiOutputVerifier::MultiOutputVerifier(const QGenConfig& config,
                                         std::vector<QNodeId> outputs)
    : config_(&config),
      outputs_(std::move(outputs)),
      matcher_(*config.graph, config.semantics),
      diversity_(*config.graph, config.tmpl->node_label(config.tmpl->output_node()),
                 config.diversity),
      coverage_(*config.groups) {}

Result<MultiOutputVerifier> MultiOutputVerifier::Create(
    const QGenConfig& config, std::vector<QNodeId> outputs) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  if (outputs.empty()) {
    return Status::InvalidArgument("need at least one output node");
  }
  std::sort(outputs.begin(), outputs.end());
  outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());
  const QueryTemplate& tmpl = *config.tmpl;
  LabelId label = tmpl.node_label(tmpl.output_node());
  for (QNodeId u : outputs) {
    if (u >= tmpl.num_nodes()) {
      return Status::InvalidArgument("output node out of range");
    }
    if (tmpl.node_label(u) != label) {
      return Status::InvalidArgument(
          "all output nodes must share the primary output node's label");
    }
  }
  return MultiOutputVerifier(config, std::move(outputs));
}

EvaluatedPtr MultiOutputVerifier::Verify(const Instantiation& inst) {
  QueryInstance q =
      QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
  CandidateSpace candidates = CandidateSpace::Build(*config_->graph, q);

  NodeSet matches;
  for (QNodeId u : outputs_) {
    NodeSet part = matcher_.MatchNode(q, candidates, u);
    NodeSet merged;
    merged.reserve(matches.size() + part.size());
    std::set_union(matches.begin(), matches.end(), part.begin(), part.end(),
                   std::back_inserter(merged));
    matches = std::move(merged);
  }

  auto out = std::make_shared<EvaluatedInstance>();
  out->inst = inst;
  DiversityEvaluator::Parts parts = diversity_.ComputeParts(matches);
  out->relevance_sum = parts.relevance_sum;
  out->pair_sum = parts.pair_sum;
  out->obj.diversity = diversity_.Combine(parts);
  CoverageResult cov = coverage_.Evaluate(matches);
  out->obj.coverage = cov.value;
  out->feasible = cov.feasible;
  out->group_coverage = std::move(cov.per_group);
  out->matches = std::move(matches);
  out->verify_seq = verify_seq_++;
  return out;
}

Result<QGenResult> MultiOutputEnumQGen(const QGenConfig& config,
                                       std::vector<QNodeId> outputs) {
  FAIRSQG_ASSIGN_OR_RETURN(MultiOutputVerifier verifier,
                           MultiOutputVerifier::Create(config, std::move(outputs)));
  Timer timer;
  QGenResult result;
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  if (it.SpaceSize() > 1000000) {
    return Status::FailedPrecondition("instance space too large to enumerate");
  }
  ParetoArchive archive(config.epsilon);
  Instantiation inst;
  while (it.Next(&inst)) {
    EvaluatedPtr e = verifier.Verify(inst);
    ++result.stats.generated;
    ++result.stats.verified;
    if (e->feasible) {
      ++result.stats.feasible;
      archive.Update(std::move(e));
    }
    if (config.max_verifications > 0 &&
        result.stats.verified >= config.max_verifications) {
      break;
    }
  }
  result.pareto = archive.SortedEntries();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairsqg
