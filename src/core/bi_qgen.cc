#include "core/bi_qgen.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_set>

#include "common/timer.h"
#include "core/pareto_archive.h"
#include "core/template_refiner.h"
#include "core/verifier.h"

namespace fairsqg {

namespace {


/// True when the archive already ε-dominates every refinement of a parent
/// with diversity `max_diversity` (box-level check; see rf_qgen.cc).
bool SubtreeCovered(const ParetoArchive& archive, double max_diversity,
                    double max_coverage, double epsilon) {
  BoxCoord bound = BoxOf({max_diversity, max_coverage}, epsilon);
  for (const EvaluatedPtr& m : archive.Entries()) {
    if (BoxDominatesOrEqual(BoxOf(m->obj, epsilon), bound)) return true;
  }
  return false;
}

/// A feasible sandwich pair (low ≺_I high) with equal boxing coordinates in
/// one objective: everything strictly between is ε-dominated (Lemma 3).
struct SandwichPair {
  Instantiation low;   // The more relaxed end (forward side).
  Instantiation high;  // The more refined end (backward side).
};

struct WorkItem {
  Instantiation inst;
  uint32_t changed_var = 0;
  // Parent context for incremental verification; forward items carry the
  // parent's candidate space, backward items the parent's match set.
  EvaluatedPtr parent_eval;
  std::shared_ptr<const CandidateSpace> parent_cands;
};

struct BiExplorer {
  const QGenConfig& config;
  InstanceVerifier verifier;
  ParetoArchive archive;
  std::unordered_set<Instantiation, Instantiation::Hasher> visited;
  std::vector<SandwichPair> sbounds;
  std::deque<WorkItem> forward;
  std::deque<WorkItem> backward;
  QGenResult* result;

  // Most recent feasible instances of each direction, paired for SBounds.
  EvaluatedPtr last_forward;
  EvaluatedPtr last_backward;

  BiExplorer(const QGenConfig& cfg, QGenResult* res)
      : config(cfg), verifier(cfg), archive(cfg.epsilon), result(res) {}

  bool Budget() const {
    return config.max_verifications == 0 ||
           result->stats.verified < config.max_verifications;
  }

  /// Procedure SPrune: q lies strictly inside a recorded sandwich pair.
  bool SPrune(const Instantiation& inst) const {
    if (!config.use_sandwich_pruning) return false;
    for (const SandwichPair& p : sbounds) {
      if (inst.StrictlyRefines(p.low) && p.high.StrictlyRefines(inst)) {
        return true;
      }
    }
    return false;
  }

  /// Records a pair (lines 16-17 of Fig. 6), dropping pairs it subsumes.
  void UpdateSBounds(const EvaluatedPtr& fwd, const EvaluatedPtr& bwd) {
    if (fwd == nullptr || bwd == nullptr) return;
    if (!bwd->inst.StrictlyRefines(fwd->inst)) return;
    BoxCoord bf = BoxOf(fwd->obj, config.epsilon);
    BoxCoord bb = BoxOf(bwd->obj, config.epsilon);
    if (bf.diversity != bb.diversity && bf.coverage != bb.coverage) return;
    // Drop existing pairs whose span lies inside the new pair.
    std::erase_if(sbounds, [&](const SandwichPair& p) {
      return p.low.Refines(fwd->inst) && bwd->inst.Refines(p.high);
    });
    sbounds.push_back({fwd->inst, bwd->inst});
  }

  void Trace() {
    if (config.record_trace) {
      result->trace.push_back(
          {result->stats.verified, archive.BestObjectives(), archive.size()});
    }
  }

  /// One forward step (lines 4-9): verify, update, spawn refinements.
  ///
  /// A sandwich-pruned instance skips the expensive verification and the
  /// archive update (Lemma 3 guarantees it is ε-dominated) but still
  /// spawns its children with the *ancestor's* verification context —
  /// otherwise instances beyond the sandwiched band, reachable only
  /// through it, would never be explored. An ancestor's match set is a
  /// superset of any descendant's (Lemma 2), so incVerify stays sound with
  /// the stale context.
  void StepForward() {
    WorkItem item = std::move(forward.front());
    forward.pop_front();
    if (!visited.insert(item.inst).second) {
      ++result->stats.pruned;
      return;
    }

    EvaluatedPtr eval;
    auto cands = std::shared_ptr<CandidateSpace>();
    bool sandwiched = SPrune(item.inst);
    if (sandwiched) {
      ++result->stats.pruned;
    } else {
      cands = std::make_shared<CandidateSpace>();
      if (item.parent_eval != nullptr && config.use_incremental_verify) {
        eval = verifier.VerifyRefined(item.inst, *item.parent_cands,
                                      *item.parent_eval, item.changed_var,
                                      cands.get());
      } else {
        eval = verifier.Verify(item.inst, cands.get());
      }
      ++result->stats.verified;
      if (!eval->feasible) return;  // Refinements stay infeasible (Lemma 2).
      ++result->stats.feasible;
      archive.Update(eval);
      Trace();
      last_forward = eval;
      UpdateSBounds(last_forward, last_backward);
      if (config.use_subtree_pruning &&
          SubtreeCovered(archive, eval->obj.diversity,
                         static_cast<double>(config.groups->total_constraint()),
                         config.epsilon)) {
        return;  // Every refinement of this instance is already ε-dominated.
      }
    }

    RefinementHints hints =
        (!sandwiched && config.use_template_refinement)
            ? ComputeRefinementHints(*config.graph, *config.tmpl, *config.domains,
                                     eval->matches)
            : RefinementHints::None(*config.tmpl);
    std::vector<LatticeStep> children = LatticeNeighbors::RefineChildren(
        *config.tmpl, *config.domains, item.inst, hints);
    result->stats.generated += children.size();
    // Context for the children: this instance if verified, otherwise the
    // ancestor context the item itself carried.
    const EvaluatedPtr& ctx_eval = sandwiched ? item.parent_eval : eval;
    const std::shared_ptr<const CandidateSpace> ctx_cands =
        sandwiched ? item.parent_cands
                   : std::shared_ptr<const CandidateSpace>(cands);
    for (LatticeStep& child : children) {
      // A sandwiched item's changed_var no longer matches the ancestor
      // context, so children re-derive from the ancestor conservatively:
      // DeriveRefined only re-filters the changed literal's node against a
      // superset, which remains correct for any ancestor.
      forward.push_back(
          {std::move(child.inst), child.var_index, ctx_eval, ctx_cands});
    }
  }

  /// One backward step (lines 10-15): verify; if feasible the feasibility
  /// border has been reached — record the instance and stop relaxing (the
  /// forward exploration owns the downward-closed feasible region); if
  /// infeasible, descend further with a bounded-width beam of relaxations
  /// so the backward pass homes in on the high-coverage border instead of
  /// sweeping the whole infeasible upper set (DESIGN.md §4).
  void StepBackward() {
    WorkItem item = std::move(backward.front());
    backward.pop_front();
    if (!visited.insert(item.inst).second || SPrune(item.inst)) {
      ++result->stats.pruned;
      return;
    }
    EvaluatedPtr eval;
    if (item.parent_eval != nullptr && config.use_incremental_verify) {
      eval = verifier.VerifyRelaxed(item.inst, *item.parent_eval);
    } else {
      eval = verifier.Verify(item.inst);
    }
    ++result->stats.verified;
    if (eval->feasible) {
      ++result->stats.feasible;
      archive.Update(eval);
      Trace();
      last_backward = eval;
      UpdateSBounds(last_forward, last_backward);
      return;  // Border reached; relaxations belong to the forward region.
    }

    std::vector<LatticeStep> children =
        LatticeNeighbors::RelaxChildren(*config.tmpl, *config.domains, item.inst);
    result->stats.generated += children.size();
    // Beam: prefer relaxing the most refined bindings (largest step back
    // toward the feasibility border); keep at most kBackwardBeam children.
    constexpr size_t kBackwardBeam = 2;
    std::sort(children.begin(), children.end(),
              [&](const LatticeStep& a, const LatticeStep& b) {
                return StepDepth(a) > StepDepth(b);
              });
    if (children.size() > kBackwardBeam) {
      result->stats.pruned += children.size() - kBackwardBeam;
      children.resize(kBackwardBeam);
    }
    // Depth-first descent: dive straight down to the feasibility border
    // so the high-coverage instances surface within the first few rounds.
    for (size_t i = children.size(); i-- > 0;) {
      backward.push_front(
          {std::move(children[i].inst), children[i].var_index, eval, nullptr});
    }
  }

  /// Depth proxy of the changed variable's binding in `step`: how refined
  /// the variable still is after the relaxation.
  int32_t StepDepth(const LatticeStep& step) const {
    if (step.var_index < config.tmpl->num_range_vars()) {
      return step.inst.range_binding(step.var_index);
    }
    return step.inst.edge_binding(
        static_cast<EdgeVarId>(step.var_index - config.tmpl->num_range_vars()));
  }

  void Run() {
    Instantiation root = Instantiation::MostRelaxed(*config.tmpl);
    Instantiation bottom = Instantiation::MostRefined(*config.tmpl, *config.domains);
    forward.push_back({root, 0, nullptr, nullptr});
    ++result->stats.generated;
    if (bottom != root) {
      backward.push_back({bottom, 0, nullptr, nullptr});
      ++result->stats.generated;
    }
    while ((!forward.empty() || !backward.empty()) && Budget()) {
      if (!forward.empty()) StepForward();
      if (!backward.empty() && Budget()) StepBackward();
    }
  }
};

}  // namespace

Result<QGenResult> BiQGen::Run(const QGenConfig& config) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  Timer timer;
  QGenResult result;
  BiExplorer explorer(config, &result);
  explorer.Run();
  result.pareto = explorer.archive.SortedEntries();
  result.stats.verify_seconds = explorer.verifier.verify_seconds();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairsqg
