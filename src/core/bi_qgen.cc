#include "core/bi_qgen.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/enumerate.h"
#include "core/pareto_archive.h"
#include "core/template_refiner.h"
#include "core/verifier.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {


/// True when the archive already ε-dominates every refinement of a parent
/// with diversity `max_diversity` (box-level check; see rf_qgen.cc). Scans
/// the archive's cached boxes — no allocation, no BoxOf recomputation.
bool SubtreeCovered(const ParetoArchive& archive, double max_diversity,
                    double max_coverage) {
  BoxCoord bound = BoxOf({max_diversity, max_coverage}, archive.epsilon());
  for (const ParetoArchive::Entry& e : archive.entries()) {
    if (BoxDominatesOrEqual(e.box, bound)) return true;
  }
  return false;
}

/// A feasible sandwich pair (low ≺_I high) with equal boxing coordinates in
/// one objective: everything strictly between is ε-dominated (Lemma 3).
struct SandwichPair {
  Instantiation low;   // The more relaxed end (forward side).
  Instantiation high;  // The more refined end (backward side).
};

struct WorkItem {
  Instantiation inst;
  uint32_t changed_var = 0;
  // Parent context for incremental verification; forward items carry the
  // parent's candidate space, backward items the parent's match set.
  EvaluatedPtr parent_eval;
  std::shared_ptr<const CandidateSpace> parent_cands;
};

/// Beam width of the backward relaxation descent (DESIGN.md §4).
constexpr size_t kBackwardBeam = 2;

/// Lattice bookkeeping shared by the sequential and the parallel explorer.
/// Everything here is written by exactly one thread (the coordinator); the
/// parallel explorer hands out only verification work.
struct ExplorerState {
  const QGenConfig& config;
  ParetoArchive archive;
  std::unordered_set<Instantiation, Instantiation::Hasher> visited;
  std::vector<SandwichPair> sbounds;
  std::deque<WorkItem> forward;
  std::deque<WorkItem> backward;
  QGenResult* result;
  double max_coverage;

  // Most recent feasible instances of each direction, paired for SBounds.
  EvaluatedPtr last_forward;
  EvaluatedPtr last_backward;

  /// RunContext expired: stop dispatching further verifications.
  bool stopped = false;

  ExplorerState(const QGenConfig& cfg, QGenResult* res)
      : config(cfg),
        archive(cfg.epsilon),
        result(res),
        max_coverage(static_cast<double>(cfg.groups->total_constraint())) {}

  bool Budget() const {
    return !stopped && (config.max_verifications == 0 ||
                        result->stats.verified < config.max_verifications);
  }

  /// Polls the RunContext at a coordinator-side scheduling point (once per
  /// verification about to be dispatched); true once expired. Only the
  /// thread owning the exploration state may call this, so parallel runs
  /// stay deterministic under poll-budget cancellation.
  bool PollStop() {
    if (stopped) return true;
    if (config.run_context != nullptr &&
        config.run_context->PollVerification()) {
      FAIRSQG_TRACE_INSTANT("run_context.stop");
      stopped = true;
      result->stats.deadline_exceeded = true;
      return true;
    }
    return false;
  }

  /// Procedure SPrune: q lies strictly inside a recorded sandwich pair.
  bool SPrune(const Instantiation& inst) const {
    if (!config.use_sandwich_pruning) return false;
    for (const SandwichPair& p : sbounds) {
      if (inst.StrictlyRefines(p.low) && p.high.StrictlyRefines(inst)) {
        return true;
      }
    }
    return false;
  }

  /// Records a pair (lines 16-17 of Fig. 6), dropping pairs it subsumes.
  void UpdateSBounds(const EvaluatedPtr& fwd, const EvaluatedPtr& bwd) {
    if (fwd == nullptr || bwd == nullptr) return;
    if (!bwd->inst.StrictlyRefines(fwd->inst)) return;
    BoxCoord bf = BoxOf(fwd->obj, config.epsilon);
    BoxCoord bb = BoxOf(bwd->obj, config.epsilon);
    if (bf.diversity != bb.diversity && bf.coverage != bb.coverage) return;
    // Drop existing pairs whose span lies inside the new pair.
    std::erase_if(sbounds, [&](const SandwichPair& p) {
      return p.low.Refines(fwd->inst) && bwd->inst.Refines(p.high);
    });
    sbounds.push_back({fwd->inst, bwd->inst});
  }

  void Trace() {
    if (config.record_trace) {
      result->trace.push_back(
          {result->stats.verified, archive.BestObjectives(), archive.size()});
    }
  }

  /// Depth proxy of the changed variable's binding in `step`: how refined
  /// the variable still is after the relaxation.
  int32_t StepDepth(const LatticeStep& step) const {
    if (step.var_index < config.tmpl->num_range_vars()) {
      return step.inst.range_binding(step.var_index);
    }
    return step.inst.edge_binding(
        static_cast<EdgeVarId>(step.var_index - config.tmpl->num_range_vars()));
  }

  /// Sort + beam of backward relaxation children: prefer relaxing the most
  /// refined bindings (largest step back toward the feasibility border);
  /// keep at most kBackwardBeam. Returns how many were dropped.
  size_t ApplyBackwardBeam(std::vector<LatticeStep>* children) const {
    std::sort(children->begin(), children->end(),
              [&](const LatticeStep& a, const LatticeStep& b) {
                return StepDepth(a) > StepDepth(b);
              });
    if (children->size() <= kBackwardBeam) return 0;
    size_t dropped = children->size() - kBackwardBeam;
    children->resize(kBackwardBeam);
    return dropped;
  }

  /// A sandwich-pruned forward item skips the expensive verification and
  /// the archive update (Lemma 3 guarantees it is ε-dominated) but still
  /// spawns its children with the *ancestor's* verification context —
  /// otherwise instances beyond the sandwiched band, reachable only
  /// through it, would never be explored. An ancestor's match set is a
  /// superset of any descendant's (Lemma 2), so incVerify stays sound with
  /// the stale context. A sandwiched item's changed_var no longer matches
  /// the ancestor context, so children re-derive from the ancestor
  /// conservatively: DeriveRefined only re-filters the changed literal's
  /// node against a superset, which remains correct for any ancestor.
  void SpawnSandwichedForward(const WorkItem& item) {
    std::vector<LatticeStep> children = LatticeNeighbors::RefineChildren(
        *config.tmpl, *config.domains, item.inst,
        RefinementHints::None(*config.tmpl));
    result->stats.generated += children.size();
    for (LatticeStep& child : children) {
      forward.push_back({std::move(child.inst), child.var_index,
                         item.parent_eval, item.parent_cands});
    }
  }

  void SeedFrontiers() {
    Instantiation root = Instantiation::MostRelaxed(*config.tmpl);
    Instantiation bottom =
        Instantiation::MostRefined(*config.tmpl, *config.domains);
    forward.push_back({root, 0, nullptr, nullptr});
    ++result->stats.generated;
    if (bottom != root) {
      backward.push_back({bottom, 0, nullptr, nullptr});
      ++result->stats.generated;
    }
  }
};

/// Sequential explorer — the paper's Fig. 6 interleaving, one lattice step
/// at a time.
struct BiExplorer : ExplorerState {
  InstanceVerifier verifier;

  BiExplorer(const QGenConfig& cfg, QGenResult* res)
      : ExplorerState(cfg, res), verifier(cfg) {}

  /// One forward step (lines 4-9): verify, update, spawn refinements.
  void StepForward() {
    WorkItem item = std::move(forward.front());
    forward.pop_front();
    if (!visited.insert(item.inst).second) {
      ++result->stats.pruned;
      return;
    }
    if (SPrune(item.inst)) {
      ++result->stats.pruned;
      ++result->stats.pruned_sandwich;
      SpawnSandwichedForward(item);
      return;
    }
    if (PollStop()) return;

    auto cands = std::make_shared<CandidateSpace>();
    EvaluatedPtr eval;
    if (item.parent_eval != nullptr && config.use_incremental_verify) {
      eval = verifier.VerifyRefined(item.inst, *item.parent_cands,
                                    *item.parent_eval, item.changed_var,
                                    cands.get());
    } else {
      eval = verifier.Verify(item.inst, cands.get());
    }
    if (eval == nullptr) return;  // Aborted mid-match; subtree abandoned.
    ++result->stats.verified;
    if (!eval->feasible) return;  // Refinements stay infeasible (Lemma 2).
    ++result->stats.feasible;
    archive.Update(eval);
    Trace();
    last_forward = eval;
    UpdateSBounds(last_forward, last_backward);
    if (config.use_subtree_pruning &&
        SubtreeCovered(archive, eval->obj.diversity, max_coverage)) {
      // Every refinement of this instance is already ε-dominated.
      ++result->stats.pruned_subtree;
      return;
    }

    RefinementHints hints =
        config.use_template_refinement
            ? ComputeRefinementHints(*config.graph, *config.tmpl,
                                     *config.domains, eval->matches)
            : RefinementHints::None(*config.tmpl);
    std::vector<LatticeStep> children = LatticeNeighbors::RefineChildren(
        *config.tmpl, *config.domains, item.inst, hints);
    result->stats.generated += children.size();
    for (LatticeStep& child : children) {
      forward.push_back({std::move(child.inst), child.var_index, eval,
                         std::shared_ptr<const CandidateSpace>(cands)});
    }
  }

  /// One backward step (lines 10-15): verify; if feasible the feasibility
  /// border has been reached — record the instance and stop relaxing (the
  /// forward exploration owns the downward-closed feasible region); if
  /// infeasible, descend further with a bounded-width beam of relaxations
  /// so the backward pass homes in on the high-coverage border instead of
  /// sweeping the whole infeasible upper set (DESIGN.md §4).
  void StepBackward() {
    WorkItem item = std::move(backward.front());
    backward.pop_front();
    if (!visited.insert(item.inst).second) {
      ++result->stats.pruned;
      return;
    }
    if (SPrune(item.inst)) {
      ++result->stats.pruned;
      ++result->stats.pruned_sandwich;
      return;
    }
    if (PollStop()) return;
    EvaluatedPtr eval;
    if (item.parent_eval != nullptr && config.use_incremental_verify) {
      eval = verifier.VerifyRelaxed(item.inst, *item.parent_eval);
    } else {
      eval = verifier.Verify(item.inst);
    }
    if (eval == nullptr) return;  // Aborted mid-match; descent abandoned.
    ++result->stats.verified;
    if (eval->feasible) {
      ++result->stats.feasible;
      archive.Update(eval);
      Trace();
      last_backward = eval;
      UpdateSBounds(last_forward, last_backward);
      return;  // Border reached; relaxations belong to the forward region.
    }

    std::vector<LatticeStep> children =
        LatticeNeighbors::RelaxChildren(*config.tmpl, *config.domains, item.inst);
    result->stats.generated += children.size();
    size_t dropped = ApplyBackwardBeam(&children);
    result->stats.pruned += dropped;
    // Depth-first descent: dive straight down to the feasibility border
    // so the high-coverage instances surface within the first few rounds.
    for (size_t i = children.size(); i-- > 0;) {
      backward.push_front(
          {std::move(children[i].inst), children[i].var_index, eval, nullptr});
    }
  }

  void Run() {
    FAIRSQG_TRACE_SPAN("bi_qgen.explore");
    SeedFrontiers();
    while ((!forward.empty() || !backward.empty()) && Budget()) {
      if (!forward.empty()) StepForward();
      if (!backward.empty() && Budget()) StepBackward();
    }
    result->stats.SetSequentialVerifySeconds(verifier.verify_seconds());
    result->stats.cache_hits = verifier.cache_hits();
    result->stats.cache_misses = verifier.cache_misses();
    FoldVerifierStats(verifier, &result->stats);
  }
};

/// Parallel explorer — coordinator/worker exploration over a work-stealing
/// pool (see BiQGen's class comment for the batching semantics).
///
/// Division of labour per batch:
///  - the coordinator pops frontier items, applies `visited` dedup and
///    SPrune (both depend on coordinator-only state), and builds a batch
///    of verification slots;
///  - pool workers verify slots with their private InstanceVerifier and
///    *speculatively* compute the refinement hints and lattice children of
///    feasible results (the expensive, state-free part of a step);
///  - the coordinator folds results back in slot order: archive update,
///    sandwich-pair recording, subtree pruning, frontier pushes. Folding
///    in slot order makes the run deterministic for a fixed thread count.
struct ParallelBiExplorer : ExplorerState {
  /// Verification slots dispatched per batch, per pool worker. Larger
  /// batches amortize the fork/join barrier but see staler pruning state.
  static constexpr size_t kBatchPerWorker = 4;

  ThreadPool pool;
  std::vector<std::unique_ptr<InstanceVerifier>> verifiers;

  struct Slot {
    WorkItem item;
    bool is_forward = true;
    // Worker outputs.
    EvaluatedPtr eval;
    std::shared_ptr<CandidateSpace> cands;     // Forward slots only.
    std::vector<LatticeStep> children;
    size_t beam_dropped = 0;                   // Backward slots only.
  };

  ParallelBiExplorer(const QGenConfig& cfg, QGenResult* res,
                     size_t num_threads)
      : ExplorerState(cfg, res), pool(num_threads) {
    verifiers.reserve(pool.num_workers());
    for (size_t w = 0; w < pool.num_workers(); ++w) {
      verifiers.push_back(std::make_unique<InstanceVerifier>(cfg));
    }
  }

  size_t BatchLimit() const {
    size_t limit = pool.num_workers() * kBatchPerWorker;
    if (config.max_verifications > 0) {
      // Budget() held on entry, so `remaining` is positive; the cap keeps
      // the batch from overshooting max_verifications.
      size_t remaining = config.max_verifications - result->stats.verified;
      limit = std::min(limit, remaining);
    }
    return limit;
  }

  /// Pops frontier items into `batch`, alternating directions like the
  /// sequential interleaving; visited/sandwich-pruned items are consumed
  /// here (sandwiched forward items spawn their children immediately).
  /// RunContext polling happens here, once per admitted slot, on the
  /// coordinator only: workers never observe poll-budget expiry, so the
  /// dispatched set is an exact deterministic prefix and the final batch
  /// always completes and folds fully (deterministic pool drain).
  void CollectBatch(std::vector<Slot>* batch) {
    batch->clear();
    const size_t limit = BatchLimit();
    bool prefer_forward = true;
    while (batch->size() < limit && (!forward.empty() || !backward.empty())) {
      bool take_forward = prefer_forward ? !forward.empty() : backward.empty();
      prefer_forward = !prefer_forward;
      std::deque<WorkItem>& src = take_forward ? forward : backward;
      WorkItem item = std::move(src.front());
      src.pop_front();
      if (!visited.insert(item.inst).second) {
        ++result->stats.pruned;
        continue;
      }
      if (SPrune(item.inst)) {
        ++result->stats.pruned;
        ++result->stats.pruned_sandwich;
        if (take_forward) SpawnSandwichedForward(item);
        continue;
      }
      if (PollStop()) break;
      Slot slot;
      slot.item = std::move(item);
      slot.is_forward = take_forward;
      batch->push_back(std::move(slot));
    }
  }

  /// Runs on a pool worker: verify with the worker-private verifier, then
  /// precompute the children of the step. Only reads shared state that is
  /// immutable during the batch (graph, template, domains, parent
  /// contexts); all mutation is confined to the slot and the verifier.
  void VerifySlot(Slot* slot) {
    InstanceVerifier& verifier = *verifiers[pool.WorkerIndex()];
    if (slot->is_forward) {
      slot->cands = std::make_shared<CandidateSpace>();
      if (slot->item.parent_eval != nullptr && config.use_incremental_verify) {
        slot->eval = verifier.VerifyRefined(
            slot->item.inst, *slot->item.parent_cands, *slot->item.parent_eval,
            slot->item.changed_var, slot->cands.get());
      } else {
        slot->eval = verifier.Verify(slot->item.inst, slot->cands.get());
      }
      if (slot->eval == nullptr || !slot->eval->feasible) return;
      // Speculative: wasted only if the fold subtree-prunes this slot.
      RefinementHints hints =
          config.use_template_refinement
              ? ComputeRefinementHints(*config.graph, *config.tmpl,
                                       *config.domains, slot->eval->matches)
              : RefinementHints::None(*config.tmpl);
      slot->children = LatticeNeighbors::RefineChildren(
          *config.tmpl, *config.domains, slot->item.inst, hints);
    } else {
      if (slot->item.parent_eval != nullptr && config.use_incremental_verify) {
        slot->eval = verifier.VerifyRelaxed(slot->item.inst,
                                            *slot->item.parent_eval);
      } else {
        slot->eval = verifier.Verify(slot->item.inst);
      }
      if (slot->eval == nullptr || slot->eval->feasible) return;
      slot->children = LatticeNeighbors::RelaxChildren(
          *config.tmpl, *config.domains, slot->item.inst);
      slot->beam_dropped = ApplyBackwardBeam(&slot->children);
    }
  }

  /// Coordinator-only: fold one verified slot back into the exploration
  /// state (mirrors the post-verification halves of Step{Forward,Backward}).
  void FoldSlot(Slot& slot) {
    if (slot.eval == nullptr) return;  // Aborted mid-match (hard expiry).
    ++result->stats.verified;
    if (slot.is_forward) {
      if (!slot.eval->feasible) return;
      ++result->stats.feasible;
      archive.Update(slot.eval);
      Trace();
      last_forward = slot.eval;
      UpdateSBounds(last_forward, last_backward);
      if (config.use_subtree_pruning &&
          SubtreeCovered(archive, slot.eval->obj.diversity, max_coverage)) {
        ++result->stats.pruned_subtree;
        return;
      }
      result->stats.generated += slot.children.size();
      auto ctx_cands = std::shared_ptr<const CandidateSpace>(slot.cands);
      for (LatticeStep& child : slot.children) {
        forward.push_back(
            {std::move(child.inst), child.var_index, slot.eval, ctx_cands});
      }
    } else {
      if (slot.eval->feasible) {
        ++result->stats.feasible;
        archive.Update(slot.eval);
        Trace();
        last_backward = slot.eval;
        UpdateSBounds(last_forward, last_backward);
        return;  // Border reached (see StepBackward).
      }
      result->stats.generated += slot.children.size() + slot.beam_dropped;
      result->stats.pruned += slot.beam_dropped;
      for (size_t i = slot.children.size(); i-- > 0;) {
        backward.push_front({std::move(slot.children[i].inst),
                             slot.children[i].var_index, slot.eval, nullptr});
      }
    }
  }

  void Run() {
    FAIRSQG_TRACE_SPAN("bi_qgen.explore_parallel");
    SeedFrontiers();
    std::vector<Slot> batch;
    while ((!forward.empty() || !backward.empty()) && Budget()) {
      CollectBatch(&batch);
      if (batch.empty()) continue;  // Whole batch pruned; refill.
      result->stats.enqueued += batch.size();
      {
        FAIRSQG_TRACE_SPAN_FULL("bi_qgen.batch");
        for (Slot& slot : batch) {
          pool.Submit([this, &slot] { VerifySlot(&slot); });
        }
        pool.Wait();
      }
      for (Slot& slot : batch) FoldSlot(slot);
    }
    for (const std::unique_ptr<InstanceVerifier>& v : verifiers) {
      double seconds = v->verify_seconds();
      result->stats.per_worker_verify_seconds.push_back(seconds);
      result->stats.verify_cpu_seconds += seconds;
      result->stats.verify_wall_seconds =
          std::max(result->stats.verify_wall_seconds, seconds);
      result->stats.cache_hits += v->cache_hits();
      result->stats.cache_misses += v->cache_misses();
      FoldVerifierStats(*v, &result->stats);
    }
    result->stats.stolen = pool.stats().stolen;
    FAIRSQG_COUNT_N("fairsqg.pool.stolen", result->stats.stolen);
    FAIRSQG_COUNT_N("fairsqg.pool.enqueued", result->stats.enqueued);
  }
};

}  // namespace

Result<QGenResult> BiQGen::Run(const QGenConfig& config) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("bi_qgen.run");
  Timer timer;
  QGenResult result;
  BiExplorer explorer(config, &result);
  explorer.Run();
  if (config.run_context != nullptr && config.run_context->Expired()) {
    result.stats.deadline_exceeded = true;
  }
  result.pareto = explorer.archive.SortedEntries();
  result.stats.total_seconds = timer.ElapsedSeconds();
  FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, result.stats));
  return result;
}

Result<QGenResult> BiQGen::RunParallel(const QGenConfig& config,
                                       size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (num_threads == 1) return Run(config);
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("bi_qgen.run_parallel");
  Timer timer;
  QGenResult result;
  // Build the diversity precompute once and share it read-only across the
  // per-worker verifiers instead of redoing it per verifier.
  QGenConfig cfg = config;
  if (cfg.diversity_index == nullptr) {
    cfg.diversity_index = DiversityEvaluator::BuildIndex(
        *cfg.graph, cfg.tmpl->node_label(cfg.tmpl->output_node()),
        cfg.diversity.relevance);
  }
  ParallelBiExplorer explorer(cfg, &result, num_threads);
  explorer.Run();
  if (config.run_context != nullptr && config.run_context->Expired()) {
    result.stats.deadline_exceeded = true;
  }
  result.pareto = explorer.archive.SortedEntries();
  result.stats.total_seconds = timer.ElapsedSeconds();
  FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, result.stats));
  return result;
}

}  // namespace fairsqg
