#ifndef FAIRSQG_CORE_CBM_H_
#define FAIRSQG_CORE_CBM_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief CBM (constraint-based method [10], the skyline-literature
/// baseline of Section V).
///
/// Computes the two anchor instances that optimize each single objective,
/// then bisects the coverage range into `num_sections` ε-constraint levels
/// θ and solves one constrained single-objective problem per level:
/// maximize δ(q) subject to f(q) >= θ. Each sub-problem rescans the
/// verified instance space — the "more expensive bi-level optimization
/// procedure" the paper observes makes CBM ~1.2x slower than Kungs.
class Cbm {
 public:
  static Result<QGenResult> Run(const QGenConfig& config,
                                size_t num_sections = 10);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_CBM_H_
