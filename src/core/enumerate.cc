#include "core/enumerate.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/trace.h"

namespace fairsqg {

InstantiationEnumerator::InstantiationEnumerator(const QueryTemplate& tmpl,
                                                 const VariableDomains& domains)
    : tmpl_(&tmpl), domains_(&domains) {
  Reset();
}

void InstantiationEnumerator::Reset() {
  current_ = Instantiation::MostRelaxed(*tmpl_);
  started_ = false;
  exhausted_ = false;
}

size_t InstantiationEnumerator::SpaceSize() const {
  return domains_->InstanceSpaceSize(*tmpl_);
}

bool InstantiationEnumerator::Next(Instantiation* out) {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    *out = current_;
    return true;
  }
  // Odometer increment: range variables cycle wildcard -> 0 -> ... -> last,
  // then edge variables cycle 0 -> 1.
  for (RangeVarId x = 0; x < tmpl_->num_range_vars(); ++x) {
    int32_t binding = current_.range_binding(x);
    if (binding + 1 < static_cast<int32_t>(domains_->size(x))) {
      current_.set_range_binding(x, binding + 1);
      *out = current_;
      return true;
    }
    current_.set_range_binding(x, kWildcardBinding);  // Carry.
  }
  for (EdgeVarId x = 0; x < tmpl_->num_edge_vars(); ++x) {
    if (current_.edge_binding(x) == 0) {
      current_.set_edge_binding(x, 1);
      *out = current_;
      return true;
    }
    current_.set_edge_binding(x, 0);  // Carry.
  }
  exhausted_ = true;
  return false;
}

Result<std::vector<EvaluatedPtr>> VerifyAllInstances(const QGenConfig& config,
                                                     InstanceVerifier* verifier,
                                                     GenStats* stats, size_t cap) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  if (cap == 0) cap = 1000000;
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  if (it.SpaceSize() > cap) {
    return Status::FailedPrecondition(
        "instance space too large to enumerate: " + std::to_string(it.SpaceSize()) +
        " > " + std::to_string(cap) + "; coarsen the variable domains");
  }
  Timer timer;
  FAIRSQG_TRACE_SPAN("enumerate_verify");
  RunContext* ctx = config.run_context;
  std::vector<EvaluatedPtr> all;
  all.reserve(it.SpaceSize());
  Instantiation inst;
  while (it.Next(&inst)) {
    if (ctx != nullptr && ctx->PollVerification()) {
      FAIRSQG_TRACE_INSTANT("run_context.stop");
      if (stats != nullptr) stats->deadline_exceeded = true;
      break;
    }
    if (stats != nullptr) ++stats->generated;
    EvaluatedPtr e = verifier->Verify(inst);
    if (e == nullptr) continue;  // Aborted mid-match; instance dropped.
    if (stats != nullptr) {
      ++stats->verified;
      if (e->feasible) ++stats->feasible;
    }
    all.push_back(std::move(e));
    if (config.max_verifications > 0 && all.size() >= config.max_verifications) {
      break;
    }
  }
  if (stats != nullptr) {
    if (ctx != nullptr && ctx->Expired()) stats->deadline_exceeded = true;
    stats->total_seconds += timer.ElapsedSeconds();
    FoldVerifierStats(*verifier, stats);
    FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, *stats));
  }
  return all;
}

void FoldVerifierStats(const InstanceVerifier& verifier, GenStats* stats) {
  stats->aborted_matches += verifier.aborted_matches();
  stats->timed_out_instances += verifier.timed_out_instances();
  stats->sweep_chains += verifier.sweep_chains();
  stats->sweep_instances += verifier.sweep_instances();
  stats->sweep_fallbacks += verifier.sweep_fallbacks();
}

Status ApplyExpiryPolicy(const QGenConfig& config, const GenStats& stats) {
  if (!stats.deadline_exceeded || config.run_context == nullptr) {
    return Status::OK();
  }
  if (config.run_context->on_expiry() == ExpiryPolicy::kFail) {
    return Status::DeadlineExceeded(
        "generation stopped early (deadline/cancellation) after " +
        std::to_string(stats.verified) +
        " verifications; rerun with ExpiryPolicy::kPartial to accept the "
        "truncated archive");
  }
  return Status::OK();
}

std::vector<EvaluatedPtr> FeasibleOnly(const std::vector<EvaluatedPtr>& all) {
  std::vector<EvaluatedPtr> out;
  for (const EvaluatedPtr& e : all) {
    if (e->feasible) out.push_back(e);
  }
  return out;
}

std::vector<EvaluatedPtr> ExactParetoSet(std::vector<EvaluatedPtr> instances) {
  std::sort(instances.begin(), instances.end(),
            [](const EvaluatedPtr& a, const EvaluatedPtr& b) {
              if (a->obj.diversity != b->obj.diversity) {
                return a->obj.diversity > b->obj.diversity;
              }
              return a->obj.coverage > b->obj.coverage;
            });
  // Sweep: within an equal-diversity run the max-coverage entry comes
  // first; any later point survives only by strictly beating the running
  // coverage maximum (duplicates of a kept coordinate are dropped).
  std::vector<EvaluatedPtr> front;
  double best_coverage = -1;
  for (EvaluatedPtr& e : instances) {
    if (e->obj.coverage > best_coverage) {
      best_coverage = e->obj.coverage;
      front.push_back(std::move(e));
    }
  }
  return front;
}

}  // namespace fairsqg
