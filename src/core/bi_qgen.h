#ifndef FAIRSQG_CORE_BI_QGEN_H_
#define FAIRSQG_CORE_BI_QGEN_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief BiQGen (Section IV-B, Fig. 6): bi-directional lattice exploration.
///
/// A forward frontier refines from the most relaxed instantiation q_r
/// (SpawnF, as in RfQGen) while a backward frontier relaxes from the most
/// refined instantiation q_b (SpawnB). Feasible "sandwich" pairs (q, q')
/// with q' refining q and equal boxing coordinates in one objective prove
/// that every instance strictly between them is ε-dominated (Lemma 3);
/// such instances are skipped by SPrune without verification. Convergence
/// balances high-diversity (forward) and high-coverage (backward)
/// instances (Section V, Fig. 9(e)).
class BiQGen {
 public:
  static Result<QGenResult> Run(const QGenConfig& config);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_BI_QGEN_H_
