#ifndef FAIRSQG_CORE_BI_QGEN_H_
#define FAIRSQG_CORE_BI_QGEN_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief BiQGen (Section IV-B, Fig. 6): bi-directional lattice exploration.
///
/// A forward frontier refines from the most relaxed instantiation q_r
/// (SpawnF, as in RfQGen) while a backward frontier relaxes from the most
/// refined instantiation q_b (SpawnB). Feasible "sandwich" pairs (q, q')
/// with q' refining q and equal boxing coordinates in one objective prove
/// that every instance strictly between them is ε-dominated (Lemma 3);
/// such instances are skipped by SPrune without verification. Convergence
/// balances high-diversity (forward) and high-coverage (backward)
/// instances (Section V, Fig. 9(e)).
///
/// With `num_threads > 1` the exploration runs in coordinator/worker form:
/// the coordinator owns all lattice bookkeeping (frontiers, `visited`,
/// sandwich pairs, the archive — strictly single-writer) and dispatches
/// batches of work items to a work-stealing ThreadPool whose workers each
/// own a private InstanceVerifier (memo caches stay thread-private).
/// Verification results are folded back in batch order, so the output is
/// deterministic for a fixed thread count. Batching relaxes *when* pruning
/// information becomes available (prunes may trigger a batch later than in
/// the sequential interleaving) but never what the archive guarantees: the
/// result still ε-covers the full feasible space.
class BiQGen {
 public:
  /// Sequential exploration (the paper's Fig. 6).
  static Result<QGenResult> Run(const QGenConfig& config);

  /// Parallel exploration; `num_threads` 0 selects hardware concurrency,
  /// 1 falls back to the sequential path.
  static Result<QGenResult> RunParallel(const QGenConfig& config,
                                        size_t num_threads = 0);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_BI_QGEN_H_
