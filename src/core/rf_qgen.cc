#include "core/rf_qgen.h"

#include <unordered_set>

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/pareto_archive.h"
#include "core/template_refiner.h"
#include "core/verifier.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

/// True when the archive already ε-dominates every instance a subtree
/// rooted at a parent with diversity `max_diversity` can produce (children
/// only lose diversity, and coverage never exceeds C).
///
/// The check is at box level: a member whose box dominates-or-equals the
/// bound's box keeps covering the subtree across later archive
/// replacements (replacements preserve box dominance), whereas a raw
/// value-level ε-dominance check would degrade to 2ε under replacement.
bool SubtreeCovered(const ParetoArchive& archive, double max_diversity,
                    double max_coverage) {
  BoxCoord bound = BoxOf({max_diversity, max_coverage}, archive.epsilon());
  // The cached per-entry boxes make this a non-allocating scan on the
  // feasible-verification hot path.
  for (const ParetoArchive::Entry& e : archive.entries()) {
    if (BoxDominatesOrEqual(e.box, bound)) return true;
  }
  return false;
}

struct Explorer {
  const QGenConfig& config;
  InstanceVerifier verifier;
  ParetoArchive archive;
  std::unordered_set<Instantiation, Instantiation::Hasher> visited;
  QGenResult* result;
  double max_coverage;
  /// RunContext expired: unwind the recursion without further verifies.
  bool stopped = false;

  Explorer(const QGenConfig& cfg, QGenResult* res)
      : config(cfg),
        verifier(cfg),
        archive(cfg.epsilon),
        result(res),
        max_coverage(static_cast<double>(cfg.groups->total_constraint())) {}

  bool Budget() const {
    return !stopped && (config.max_verifications == 0 ||
                        result->stats.verified < config.max_verifications);
  }

  /// Procedure BFExplore (Fig. 3). `parent` is null at the lattice root.
  void Explore(const Instantiation& inst, const EvaluatedPtr& parent_eval,
               const CandidateSpace* parent_cands, uint32_t changed_var) {
    if (!Budget()) return;
    if (!visited.insert(inst).second) {
      ++result->stats.pruned;  // Reached via another lattice path already.
      return;
    }
    if (config.run_context != nullptr &&
        config.run_context->PollVerification()) {
      FAIRSQG_TRACE_INSTANT("run_context.stop");
      stopped = true;
      result->stats.deadline_exceeded = true;
      return;
    }

    CandidateSpace cands;
    EvaluatedPtr eval;
    if (parent_eval != nullptr && config.use_incremental_verify) {
      eval = verifier.VerifyRefined(inst, *parent_cands, *parent_eval,
                                    changed_var, &cands);
    } else {
      eval = verifier.Verify(inst, &cands);
    }
    if (eval == nullptr) return;  // Aborted mid-match; subtree abandoned.
    ++result->stats.verified;
    if (!eval->feasible) return;  // Backtrack: the whole subtree is infeasible.
    ++result->stats.feasible;

    archive.Update(eval);
    if (config.record_trace) {
      result->trace.push_back(
          {result->stats.verified, archive.BestObjectives(), archive.size()});
    }

    if (config.use_subtree_pruning &&
        SubtreeCovered(archive, eval->obj.diversity, max_coverage)) {
      // Every refinement of `inst` is already ε-dominated.
      ++result->stats.pruned_subtree;
      return;
    }

    RefinementHints hints =
        config.use_template_refinement
            ? ComputeRefinementHints(*config.graph, *config.tmpl, *config.domains,
                                     eval->matches)
            : RefinementHints::None(*config.tmpl);
    std::vector<LatticeStep> children = LatticeNeighbors::RefineChildren(
        *config.tmpl, *config.domains, inst, hints);
    result->stats.generated += children.size();
    for (LatticeStep& child : children) {
      Explore(child.inst, eval, &cands, child.var_index);
    }
  }
};

}  // namespace

Result<QGenResult> RfQGen::Run(const QGenConfig& config) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("rf_qgen.run");
  Timer timer;
  QGenResult result;
  Explorer explorer(config, &result);
  Instantiation root = Instantiation::MostRelaxed(*config.tmpl);
  ++result.stats.generated;
  explorer.Explore(root, nullptr, nullptr, 0);
  if (config.run_context != nullptr && config.run_context->Expired()) {
    result.stats.deadline_exceeded = true;
  }
  {
    FAIRSQG_TRACE_SPAN("archive_collect");
    result.pareto = explorer.archive.SortedEntries();
  }
  result.stats.SetSequentialVerifySeconds(explorer.verifier.verify_seconds());
  result.stats.cache_hits = explorer.verifier.cache_hits();
  result.stats.cache_misses = explorer.verifier.cache_misses();
  FoldVerifierStats(explorer.verifier, &result.stats);
  result.stats.total_seconds = timer.ElapsedSeconds();
  FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, result.stats));
  return result;
}

}  // namespace fairsqg
