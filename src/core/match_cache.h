#ifndef FAIRSQG_CORE_MATCH_CACHE_H_
#define FAIRSQG_CORE_MATCH_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "graph/types.h"
#include "query/instance.h"

namespace fairsqg {

/// \brief Sharded, thread-safe LRU cache from canonical query-instance
/// signatures to match sets q(G).
///
/// Distinct instantiations frequently materialize to the *same* query
/// instance (a wildcard on a node outside u_o's component, an edge toggle
/// that never changes the active component, or lattice paths meeting at a
/// common descendant), and the generation algorithms re-verify such
/// duplicates from different lattice directions. The cache keys on the
/// canonical signature of the materialized instance — the edge-variable
/// assignment plus every bound literal with its full value payload — so two
/// instantiations hit iff they denote the same instance. Keys are compared
/// as exact byte strings (never by hash alone): a hash collision can cost a
/// false miss shard-internally but can never return a wrong match set.
///
/// One cache is valid for a fixed configuration (graph, template, domains,
/// matching semantics); create one per QGenConfig. Sharding: a key hashes
/// to one of `num_shards` independently locked LRU lists, so parallel
/// workers contend only when touching the same shard. The byte budget
/// (`capacity_bytes`, split evenly across shards) counts key bytes plus
/// stored node ids plus a fixed per-entry overhead; least-recently used
/// entries are evicted per shard when its budget is exceeded.
///
/// Consulting the cache replaces only the subgraph-matcher invocation; the
/// measure pipeline consumes the cached set exactly as it would a freshly
/// computed one, so results are byte-identical with the cache on or off.
class MatchSetCache {
 public:
  struct Options {
    /// Total byte budget across all shards; must be non-zero (a zero
    /// budget would silently admit nothing — reject it instead).
    size_t capacity_bytes = size_t{64} << 20;
    /// Rounded up to a power of two; 1 disables sharding; must be
    /// non-zero.
    size_t num_shards = 16;
  };

  /// Rejects degenerate configurations (zero byte budget, zero shards)
  /// with kInvalidArgument instead of constructing a cache that caches
  /// nothing or divides by zero.
  static Status ValidateOptions(const Options& options);

  /// Validating factory: the preferred way to build a cache from
  /// user-supplied options (CLI flags, config files).
  static Result<std::unique_ptr<MatchSetCache>> Create(Options options);

  MatchSetCache() : MatchSetCache(Options()) {}
  /// CHECK-fails on options that ValidateOptions rejects; use Create for
  /// untrusted input.
  explicit MatchSetCache(Options options);
  MatchSetCache(const MatchSetCache&) = delete;
  MatchSetCache& operator=(const MatchSetCache&) = delete;

  /// Canonical byte signature of a materialized instance: edge-variable
  /// assignment plus every node's bound literals (attr, op, typed value).
  static std::string KeyFor(const QueryInstance& q);

  /// On hit, copies the cached match set into `*out` (sorted ascending,
  /// exactly as stored) and refreshes recency. Thread-safe.
  bool Lookup(const std::string& key, NodeSet* out);

  /// Inserts or refreshes `key -> matches`. Entries larger than a whole
  /// shard's budget are not admitted. Thread-safe.
  void Insert(const std::string& key, const NodeSet& matches);

  /// Point-in-time aggregate over all shards. Hit/miss totals here are
  /// cache-global and schedule-dependent under parallel runs; algorithms
  /// report the deterministic per-verifier counters instead.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  CacheStats GetStats() const;

  size_t num_shards() const { return num_shards_; }
  size_t capacity_bytes() const { return shard_capacity_ * num_shards_; }

 private:
  struct Entry {
    std::string key;
    NodeSet matches;
    size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    // Views point at Entry::key; std::list nodes never relocate.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t num_shards_ = 1;
  size_t shard_capacity_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_MATCH_CACHE_H_
