#include "core/enum_qgen.h"

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/pareto_archive.h"
#include "obs/trace.h"

namespace fairsqg {

Result<QGenResult> EnumQGen::Run(const QGenConfig& config) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("enum_qgen.run");
  Timer timer;
  QGenResult result;
  InstanceVerifier verifier(config);
  ParetoArchive archive(config.epsilon);

  RunContext* ctx = config.run_context;
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  Instantiation inst;
  while (it.Next(&inst)) {
    if (ctx != nullptr && ctx->PollVerification()) {
      FAIRSQG_TRACE_INSTANT("run_context.stop");
      result.stats.deadline_exceeded = true;
      break;
    }
    ++result.stats.generated;
    EvaluatedPtr e = verifier.Verify(inst);
    if (e == nullptr) continue;  // Aborted mid-match; instance dropped.
    ++result.stats.verified;
    if (e->feasible) {
      ++result.stats.feasible;
      archive.Update(e);
      if (config.record_trace) {
        result.trace.push_back(
            {result.stats.verified, archive.BestObjectives(), archive.size()});
      }
    }
    if (config.max_verifications > 0 &&
        result.stats.verified >= config.max_verifications) {
      break;
    }
  }
  if (ctx != nullptr && ctx->Expired()) result.stats.deadline_exceeded = true;
  {
    FAIRSQG_TRACE_SPAN("archive_collect");
    result.pareto = archive.SortedEntries();
  }
  result.stats.SetSequentialVerifySeconds(verifier.verify_seconds());
  result.stats.cache_hits = verifier.cache_hits();
  result.stats.cache_misses = verifier.cache_misses();
  FoldVerifierStats(verifier, &result.stats);
  result.stats.total_seconds = timer.ElapsedSeconds();
  FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, result.stats));
  return result;
}

}  // namespace fairsqg
