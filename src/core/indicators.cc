#include "core/indicators.h"

#include <algorithm>
#include <limits>

namespace fairsqg {

EpsilonIndicatorResult EpsilonIndicator(const std::vector<EvaluatedPtr>& solution,
                                        const std::vector<EvaluatedPtr>& reference,
                                        double configured_epsilon) {
  EpsilonIndicatorResult out;
  if (reference.empty()) {
    out.indicator = 1.0;
    return out;
  }
  if (solution.empty()) {
    out.eps_m = std::numeric_limits<double>::infinity();
    out.indicator = 0.0;
    return out;
  }
  double eps_m = 0;
  for (const EvaluatedPtr& x : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const EvaluatedPtr& m : solution) {
      best = std::min(best, RequiredEpsilon(m->obj, x->obj));
      if (best == 0) break;
    }
    eps_m = std::max(eps_m, best);
  }
  out.eps_m = eps_m;
  out.indicator =
      std::clamp(1.0 - eps_m / configured_epsilon, 0.0, 1.0);
  return out;
}

Objectives MaxObjectives(const std::vector<EvaluatedPtr>& instances) {
  Objectives best;
  for (const EvaluatedPtr& e : instances) {
    best.diversity = std::max(best.diversity, e->obj.diversity);
    best.coverage = std::max(best.coverage, e->obj.coverage);
  }
  return best;
}

double RIndicator(const std::vector<EvaluatedPtr>& solution, double lambda_r,
                  double max_diversity, double max_coverage) {
  Objectives best = MaxObjectives(solution);
  double d_star = max_diversity > 0 ? best.diversity / max_diversity : 0.0;
  double f_star = max_coverage > 0 ? best.coverage / max_coverage : 0.0;
  return (1.0 - lambda_r) * d_star + lambda_r * f_star;
}

}  // namespace fairsqg
