#include "core/template_refiner.h"

#include <set>

#include "graph/neighborhood.h"

namespace fairsqg {

RefinementHints ComputeRefinementHints(const Graph& g, const QueryTemplate& tmpl,
                                       const VariableDomains& domains,
                                       const NodeSet& matches) {
  RefinementHints hints = RefinementHints::None(tmpl);
  std::vector<bool> mask = DHopMask(g, matches, tmpl.Diameter());

  // Range variables: keep only domain values occurring in G_q^d on nodes
  // with the literal node's label.
  for (RangeVarId x = 0; x < tmpl.num_range_vars(); ++x) {
    const LiteralTemplate& l = tmpl.literals()[tmpl.literal_of_var(x)];
    LabelId label = tmpl.node_label(l.node);
    std::set<AttrValue> occurring;
    for (NodeId v : g.NodesWithLabel(label)) {
      if (!mask[v]) continue;
      const AttrValue* value = g.GetAttr(v, l.attr);
      if (value != nullptr) occurring.insert(*value);
    }
    hints.restrict_range[x] = true;
    auto& allowed = hints.allowed_range_indexes[x];
    for (size_t i = 0; i < domains.size(x); ++i) {
      if (occurring.count(domains.value(x, i)) > 0) {
        allowed.push_back(static_cast<int32_t>(i));
      }
    }
  }

  // Edge variables: pin to 0 when no label-compatible edge exists in G_q^d.
  for (EdgeVarId x = 0; x < tmpl.num_edge_vars(); ++x) {
    const QueryEdge& e = tmpl.edge(tmpl.edge_of_var(x));
    LabelId from_label = tmpl.node_label(e.from);
    LabelId to_label = tmpl.node_label(e.to);
    bool exists = false;
    for (NodeId v : g.NodesWithLabel(from_label)) {
      if (!mask[v]) continue;
      for (const AdjEntry& adj : g.OutEdges(v)) {
        if (adj.edge_label == e.label && mask[adj.neighbor] &&
            g.node_label(adj.neighbor) == to_label) {
          exists = true;
          break;
        }
      }
      if (exists) break;
    }
    hints.edge_fixed_zero[x] = !exists;
  }
  return hints;
}

}  // namespace fairsqg
