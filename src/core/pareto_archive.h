#ifndef FAIRSQG_CORE_PARETO_ARCHIVE_H_
#define FAIRSQG_CORE_PARETO_ARCHIVE_H_

#include <vector>

#include "core/evaluated.h"

namespace fairsqg {

/// Which case of procedure Update (Fig. 5) an instance triggered.
enum class UpdateOutcome {
  /// Case 1: the instance's box dominates existing boxes; they were evicted.
  kReplacedBoxes,
  /// Case 2: same box as an existing member and dominates it; swapped in.
  kReplacedInstance,
  /// Case 2: same box as an existing member that is at least as good; dropped.
  kRejectedSameBox,
  /// Case 3: a new non-dominated box; added.
  kAddedNewBox,
  /// An existing member's box dominates the instance's box; dropped.
  kRejectedDominated,
};

/// True if the outcome left the instance in the archive.
inline bool Accepted(UpdateOutcome outcome) {
  return outcome == UpdateOutcome::kReplacedBoxes ||
         outcome == UpdateOutcome::kReplacedInstance ||
         outcome == UpdateOutcome::kAddedNewBox;
}

/// \brief The ε-Pareto archive maintained by procedure Update (Section IV,
/// Fig. 5), extending Laumanns et al.'s box archiving.
///
/// The bi-objective space is discretized into boxes of the log-scale boxing
/// coordinates; the archive keeps exactly one representative instance per
/// non-dominated box. Invariant (provable, and asserted by the property
/// tests): for every instance ever offered to Update there is a current
/// member whose box dominates-or-equals its box — hence a member that
/// ε-dominates it — and the member count is bounded by the number of boxes
/// along an antichain, ≤ log(1+max δ)/log(1+ε) + log(1+C)/log(1+ε).
class ParetoArchive {
 public:
  /// A member plus its cached boxing coordinates (computed with the
  /// archive's current ε, so box-level checks need not recompute BoxOf).
  struct Entry {
    EvaluatedPtr instance;
    BoxCoord box;
  };

  explicit ParetoArchive(double epsilon);

  /// Applies procedure Update for a feasible instance.
  UpdateOutcome Update(EvaluatedPtr q);

  /// Dry-run: which case Update *would* take, without modifying anything.
  UpdateOutcome Classify(const EvaluatedInstance& q) const;

  /// Current members (box representatives), unordered. Allocates a vector
  /// of shared_ptr copies; hot paths should iterate `entries()` instead.
  std::vector<EvaluatedPtr> Entries() const;

  /// Non-allocating view of the members with their cached boxes — the
  /// accessor for per-verification scans (SubtreeCovered, Classify-style
  /// dry runs, nearest-neighbour searches).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Members sorted by descending diversity (ties: ascending coverage).
  std::vector<EvaluatedPtr> SortedEntries() const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  double epsilon() const { return epsilon_; }

  /// Raises ε (OnlineQGen line 16) and re-boxes all members; members whose
  /// coarsened boxes now collide or dominate are merged, keeping per-box
  /// dominant representatives. ε may only grow (Lemma 4).
  void SetEpsilon(double epsilon);

  /// Removes a specific member (OnlineQGen replacement); no-op if absent.
  void Remove(const EvaluatedPtr& q);

  /// Best (max) diversity and coverage among members; zeros when empty.
  Objectives BestObjectives() const;

 private:
  /// Update without touching the observability counters; SetEpsilon's
  /// re-boxing goes through here so internal churn is not reported as
  /// fresh archive traffic.
  UpdateOutcome UpdateUncounted(EvaluatedPtr q);

  double epsilon_;
  std::vector<Entry> entries_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_PARETO_ARCHIVE_H_
