#ifndef FAIRSQG_CORE_GROUPS_H_
#define FAIRSQG_CORE_GROUPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairsqg {

/// \brief The paper's `P`: m disjoint node groups, each with a coverage
/// constraint `c_i` (0 <= c_i <= |P_i|), plus an O(1) node -> group lookup.
///
/// Groups model protected/targeted populations (gender groups, movie
/// genres, paper topics). Coverage is evaluated against the match set
/// `q(G)` of the output node.
class GroupSet {
 public:
  /// Builds from explicit (sorted or unsorted) node sets and constraints;
  /// rejects overlapping groups and constraints exceeding group sizes.
  static Result<GroupSet> Create(size_t num_graph_nodes,
                                 std::vector<NodeSet> groups,
                                 std::vector<size_t> constraints);

  /// Groups nodes of `label` by the string value of categorical attribute
  /// `attr`, keeping the `num_groups` most populous values, with coverage
  /// target `c` for every group ("Equal opportunity": total C = c * m).
  static Result<GroupSet> FromCategoricalAttr(const Graph& g, LabelId label,
                                              AttrId attr, size_t num_groups,
                                              size_t coverage_per_group);

  size_t num_groups() const { return groups_.size(); }
  const NodeSet& group(size_t i) const { return groups_[i]; }
  size_t constraint(size_t i) const { return constraints_[i]; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Total coverage target C = sum of c_i.
  size_t total_constraint() const { return total_constraint_; }

  /// Group of node v, or kNoGroup.
  static constexpr uint32_t kNoGroup = 0xffffffffu;
  uint32_t group_of(NodeId v) const {
    return v < node_group_.size() ? node_group_[v] : kNoGroup;
  }

  /// Per-group intersection sizes |matches ∩ P_i|; `matches` need not be
  /// sorted.
  std::vector<size_t> CoverageCounts(const NodeSet& matches) const;

  void set_name(size_t i, std::string name) { names_[i] = std::move(name); }

 private:
  std::vector<NodeSet> groups_;
  std::vector<size_t> constraints_;
  std::vector<std::string> names_;
  std::vector<uint32_t> node_group_;
  size_t total_constraint_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_GROUPS_H_
