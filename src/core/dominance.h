#ifndef FAIRSQG_CORE_DOMINANCE_H_
#define FAIRSQG_CORE_DOMINANCE_H_

#include <cmath>
#include <cstdint>

namespace fairsqg {

/// The bi-objective coordinate of an instance: (δ(q), f(q)).
struct Objectives {
  double diversity = 0;
  double coverage = 0;
};

/// \brief Pareto dominance (Section III-B): a dominates b iff a is >= in
/// both objectives and strictly greater in at least one.
inline bool Dominates(const Objectives& a, const Objectives& b) {
  return (a.diversity >= b.diversity && a.coverage > b.coverage) ||
         (a.diversity > b.diversity && a.coverage >= b.coverage);
}

/// \brief ε-dominance: a ⪰_ε b.
///
/// Implemented on the 1-shifted coordinates,
///   (1+ε)(1+δ(a)) >= 1+δ(b)  and  (1+ε)(1+f(a)) >= 1+f(b),
/// which is the relation the log-scale boxing coordinates of Section IV
/// discretize exactly (Laumanns et al. [26]); the shift also makes zero
/// objective values well-behaved. DESIGN.md §4 records this resolution of
/// the paper's raw-value phrasing.
inline bool EpsilonDominates(const Objectives& a, const Objectives& b,
                             double epsilon) {
  return (1.0 + epsilon) * (1.0 + a.diversity) >= 1.0 + b.diversity &&
         (1.0 + epsilon) * (1.0 + a.coverage) >= 1.0 + b.coverage;
}

/// Integer boxing coordinate Box(q) = (floor(log(1+δ)/log(1+ε)),
/// floor(log(1+f)/log(1+ε))) (Section IV, "Instance Lattice" item (c)).
struct BoxCoord {
  int64_t diversity = 0;
  int64_t coverage = 0;

  bool operator==(const BoxCoord& other) const {
    return diversity == other.diversity && coverage == other.coverage;
  }
  bool operator!=(const BoxCoord& other) const { return !(*this == other); }
};

inline BoxCoord BoxOf(const Objectives& obj, double epsilon) {
  double scale = std::log1p(epsilon);
  return BoxCoord{
      static_cast<int64_t>(std::floor(std::log1p(obj.diversity) / scale)),
      static_cast<int64_t>(std::floor(std::log1p(obj.coverage) / scale))};
}

/// Box-level dominance: componentwise >= with at least one >.
inline bool BoxDominates(const BoxCoord& a, const BoxCoord& b) {
  return a.diversity >= b.diversity && a.coverage >= b.coverage &&
         (a.diversity > b.diversity || a.coverage > b.coverage);
}

/// Box(a) ⪰ Box(b): dominates or equal.
inline bool BoxDominatesOrEqual(const BoxCoord& a, const BoxCoord& b) {
  return a.diversity >= b.diversity && a.coverage >= b.coverage;
}

/// Smallest ε' such that a ⪰_ε' b (0 when a already dominates-or-equals b
/// in the shifted sense). Used by the ε-indicator.
inline double RequiredEpsilon(const Objectives& a, const Objectives& b) {
  double need_d = (1.0 + b.diversity) / (1.0 + a.diversity) - 1.0;
  double need_f = (1.0 + b.coverage) / (1.0 + a.coverage) - 1.0;
  double need = need_d > need_f ? need_d : need_f;
  return need > 0 ? need : 0.0;
}

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_DOMINANCE_H_
