#ifndef FAIRSQG_CORE_FAIRNESS_RULES_H_
#define FAIRSQG_CORE_FAIRNESS_RULES_H_

#include <vector>

#include "common/result.h"
#include "core/groups.h"

namespace fairsqg {

/// \brief Helpers constructing coverage constraints for the practical
/// fairness measures the paper notes group coverage can express (Section
/// III-B): Equal Opportunity and disparate-impact ("80% rule") fairness.
///
/// Each helper takes existing group node sets (constraints ignored) and a
/// total budget C, and returns a GroupSet with the rule's per-group
/// constraints.

/// Equal Opportunity: every group gets the same target c = C / m (remainder
/// distributed to the first groups). Fails if any group is smaller than its
/// target.
Result<GroupSet> EqualOpportunityConstraints(size_t num_graph_nodes,
                                             const GroupSet& groups,
                                             size_t total_coverage);

/// Disparate-impact ("80% rule"): the largest group is the reference
/// majority with target c_major; every other (minority) group must be
/// covered with at least ceil(ratio * c_major) nodes (ratio 0.8 gives the
/// EEOC rule). The majority target is chosen as the largest c_major such
/// that c_major + (m-1) * ceil(ratio * c_major) <= total_coverage and all
/// targets fit their groups.
Result<GroupSet> DisparateImpactConstraints(size_t num_graph_nodes,
                                            const GroupSet& groups,
                                            size_t total_coverage,
                                            double ratio = 0.8);

/// True iff `coverage_counts` satisfies the ratio rule a posteriori: every
/// group's count is at least `ratio` times the maximum group count.
bool SatisfiesDisparateImpact(const std::vector<size_t>& coverage_counts,
                              double ratio = 0.8);

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_FAIRNESS_RULES_H_
