#include "core/pareto_archive.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

// kRejected* leaves the archive untouched; everything else mutated it.
// Counts cover every path into an archive, including the per-worker merges
// ConcurrentArchive::Merged performs through Update.
void CountOutcome(UpdateOutcome outcome) {
  FAIRSQG_COUNT("fairsqg.archive.updates");
  if (outcome != UpdateOutcome::kRejectedSameBox &&
      outcome != UpdateOutcome::kRejectedDominated) {
    FAIRSQG_COUNT("fairsqg.archive.inserts");
  }
}

}  // namespace

ParetoArchive::ParetoArchive(double epsilon) : epsilon_(epsilon) {
  FAIRSQG_CHECK(epsilon > 0) << "epsilon must be positive";
}

UpdateOutcome ParetoArchive::Classify(const EvaluatedInstance& q) const {
  BoxCoord box = BoxOf(q.obj, epsilon_);
  bool any_dominated = false;
  for (const Entry& e : entries_) {
    if (BoxDominates(box, e.box)) {
      any_dominated = true;
    } else if (e.box == box) {
      return Dominates(q.obj, e.instance->obj) ? UpdateOutcome::kReplacedInstance
                                               : UpdateOutcome::kRejectedSameBox;
    } else if (BoxDominates(e.box, box)) {
      return UpdateOutcome::kRejectedDominated;
    }
  }
  return any_dominated ? UpdateOutcome::kReplacedBoxes : UpdateOutcome::kAddedNewBox;
}

UpdateOutcome ParetoArchive::Update(EvaluatedPtr q) {
  UpdateOutcome outcome = UpdateUncounted(std::move(q));
  CountOutcome(outcome);
  return outcome;
}

UpdateOutcome ParetoArchive::UpdateUncounted(EvaluatedPtr q) {
  BoxCoord box = BoxOf(q->obj, epsilon_);

  // Case 1 scan: boxes strictly dominated by Box(q).
  std::vector<size_t> dominated;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (BoxDominates(box, entries_[i].box)) dominated.push_back(i);
  }
  if (!dominated.empty()) {
    // Remove all dominated representatives; add q.
    for (size_t k = dominated.size(); k-- > 0;) {
      entries_[dominated[k]] = entries_.back();
      entries_.pop_back();
    }
    entries_.push_back({std::move(q), box});
    return UpdateOutcome::kReplacedBoxes;
  }

  // Case 2: q falls into an occupied box; keep the dominant instance.
  for (Entry& e : entries_) {
    if (e.box == box) {
      if (Dominates(q->obj, e.instance->obj)) {
        e.instance = std::move(q);
        return UpdateOutcome::kReplacedInstance;
      }
      return UpdateOutcome::kRejectedSameBox;
    }
  }

  // Case 3: add q unless an existing box dominates it.
  for (const Entry& e : entries_) {
    if (BoxDominates(e.box, box)) return UpdateOutcome::kRejectedDominated;
  }
  entries_.push_back({std::move(q), box});
  return UpdateOutcome::kAddedNewBox;
}

std::vector<EvaluatedPtr> ParetoArchive::Entries() const {
  std::vector<EvaluatedPtr> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.instance);
  return out;
}

std::vector<EvaluatedPtr> ParetoArchive::SortedEntries() const {
  std::vector<EvaluatedPtr> out = Entries();
  std::sort(out.begin(), out.end(), [](const EvaluatedPtr& a, const EvaluatedPtr& b) {
    if (a->obj.diversity != b->obj.diversity) {
      return a->obj.diversity > b->obj.diversity;
    }
    return a->obj.coverage < b->obj.coverage;
  });
  return out;
}

void ParetoArchive::SetEpsilon(double epsilon) {
  FAIRSQG_CHECK(epsilon >= epsilon_) << "epsilon may only grow (Lemma 4)";
  if (epsilon == epsilon_) return;
  epsilon_ = epsilon;
  // Re-box all members and re-insert through Update to restore the
  // one-representative-per-box antichain invariant under the coarser grid.
  std::vector<Entry> old = std::move(entries_);
  entries_.clear();
  for (Entry& e : old) UpdateUncounted(std::move(e.instance));
}

void ParetoArchive::Remove(const EvaluatedPtr& q) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].instance == q) {
      entries_[i] = entries_.back();
      entries_.pop_back();
      return;
    }
  }
}

Objectives ParetoArchive::BestObjectives() const {
  Objectives best;
  for (const Entry& e : entries_) {
    best.diversity = std::max(best.diversity, e.instance->obj.diversity);
    best.coverage = std::max(best.coverage, e.instance->obj.coverage);
  }
  return best;
}

}  // namespace fairsqg
