#include "core/verifier.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/sweep_verifier.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

/// Builds the diversity evaluator from the config's shared index when one
/// is provided (parallel runs build it once per run), else from scratch.
DiversityEvaluator MakeDiversity(const QGenConfig& config) {
  const LabelId label = config.tmpl->node_label(config.tmpl->output_node());
  if (config.diversity_index != nullptr) {
    FAIRSQG_CHECK(config.diversity_index->label == label)
        << "diversity_index built for a different output label";
    return DiversityEvaluator(config.diversity_index, config.diversity);
  }
  return DiversityEvaluator(*config.graph, label, config.diversity);
}

}  // namespace

InstanceVerifier::InstanceVerifier(const QGenConfig& config)
    : config_(&config),
      matcher_(*config.graph, config.semantics),
      diversity_(MakeDiversity(config)),
      coverage_(*config.groups) {
  if (config.use_sweep_verify) {
    sweep_ = std::make_unique<SweepVerifier>(config);
  }
}

InstanceVerifier::~InstanceVerifier() = default;

bool InstanceVerifier::SweepAllowed() const {
  return sweep_ != nullptr &&
         (config_->run_context == nullptr ||
          config_->run_context->match_step_limit() == 0);
}

bool InstanceVerifier::ServeSwept(const Instantiation& inst, NodeSet* matches) {
  if (sweep_ != nullptr && sweep_->Serve(inst, matches)) {
    FAIRSQG_COUNT("fairsqg.verify.sweep_served");
    return true;
  }
  return false;
}

uint64_t InstanceVerifier::sweep_chains() const {
  return sweep_ != nullptr ? sweep_->chains() : 0;
}

uint64_t InstanceVerifier::sweep_instances() const {
  return sweep_ != nullptr ? sweep_->instances() : 0;
}

uint64_t InstanceVerifier::sweep_fallbacks() const {
  return sweep_ != nullptr ? sweep_->fallbacks() : 0;
}

EvaluatedPtr InstanceVerifier::FinishWithParts(const Instantiation& inst,
                                               NodeSet matches,
                                               DiversityEvaluator::Parts parts) {
  FAIRSQG_TRACE_SPAN_FULL("evaluate");
  FAIRSQG_COUNT("fairsqg.verify.completed");
  auto out = std::make_shared<EvaluatedInstance>();
  out->inst = inst;
  out->relevance_sum = parts.relevance_sum;
  out->pair_sum = parts.pair_sum;
  out->obj.diversity = diversity_.Combine(parts);
  CoverageResult cov = coverage_.Evaluate(matches);
  out->obj.coverage = cov.value;
  out->feasible = cov.feasible;
  out->group_coverage = std::move(cov.per_group);
  out->matches = std::move(matches);
  out->verify_seq = verify_seq_++;
  return out;
}

EvaluatedPtr InstanceVerifier::Finish(const Instantiation& inst, NodeSet matches) {
  DiversityEvaluator::Parts parts = diversity_.ComputeParts(matches);
  return FinishWithParts(inst, std::move(matches), parts);
}

EvaluatedPtr InstanceVerifier::RecordAbort() {
  FAIRSQG_COUNT("fairsqg.verify.aborted_instances");
  ++aborted_matches_;
  ++timed_out_instances_;
  return nullptr;
}

bool InstanceVerifier::LookupCached(const QueryInstance& q, NodeSet* matches,
                                    std::string* key) {
  if (config_->match_cache == nullptr) return false;
  FAIRSQG_COUNT("fairsqg.verify.cache_lookups");
  *key = MatchSetCache::KeyFor(q);
  if (config_->match_cache->Lookup(*key, matches)) {
    FAIRSQG_COUNT("fairsqg.verify.cache_hits");
    ++cache_hits_;
    key->clear();
    return true;
  }
  FAIRSQG_COUNT("fairsqg.verify.cache_misses");
  ++cache_misses_;
  return false;
}

EvaluatedPtr InstanceVerifier::Verify(const Instantiation& inst,
                                      CandidateSpace* out_candidates) {
  FAIRSQG_TRACE_SPAN_FULL("verify");
  Timer timer;
  NodeSet matches;
  std::string key;
  bool hit = ServeSwept(inst, &matches);
  if (!hit || out_candidates != nullptr) {
    QueryInstance q =
        QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
    if (!hit) hit = LookupCached(q, &matches, &key);
    if (!hit || out_candidates != nullptr) {
      CandidateSpace candidates = [&] {
        FAIRSQG_TRACE_SPAN_FULL("candidate_build");
        return CandidateSpace::Build(
            *config_->graph, q,
            /*degree_filter=*/config_->semantics ==
                MatchSemantics::kIsomorphism,
            config_->use_candidate_index, &matcher_.mutable_stats());
      }();
      if (!hit) {
        bool swept = false;
        if (SweepAllowed() && config_->tmpl->num_range_vars() > 0 &&
            inst.is_wildcard(0) && config_->domains->size(0) > 0) {
          // Chain head at variable 0 — the odometer's fastest axis, so
          // Enum (and ParallelQGen chunks) hit this for every run, and
          // Rf/Bi hit it at the lattice root. No feasibility gate: the
          // whole chain is enumerated regardless.
          SweepVerifier::Outcome sw = sweep_->SweepChain(
              q, /*var=*/0, candidates, /*output_restrict=*/nullptr,
              &matcher_, /*gate=*/nullptr, &matches);
          // kAborted falls through: the per-instance path observes the
          // same hard expiry and records the abort.
          swept = sw == SweepVerifier::Outcome::kSwept;
        }
        if (!swept) {
          MatchResult res =
              matcher_.MatchOutputBounded(q, candidates, config_->run_context);
          if (res.outcome == MatchOutcome::kAborted) {
            verify_seconds_ += timer.ElapsedSeconds();
            return RecordAbort();  // Partial matches: never cached.
          }
          matches = std::move(res.matches);
        }
        if (!key.empty()) config_->match_cache->Insert(key, matches);
      }
      if (out_candidates != nullptr) *out_candidates = std::move(candidates);
    }
  }
  EvaluatedPtr out = Finish(inst, std::move(matches));
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

EvaluatedPtr InstanceVerifier::VerifyRefined(const Instantiation& inst,
                                             const CandidateSpace& parent_candidates,
                                             const EvaluatedInstance& parent,
                                             uint32_t changed_var,
                                             CandidateSpace* out_candidates) {
  if (!config_->use_incremental_verify) return Verify(inst, out_candidates);
  FAIRSQG_TRACE_SPAN_FULL("verify_refined");
  Timer timer;
  NodeSet matches;
  std::string key;
  bool hit = ServeSwept(inst, &matches);
  if (!hit || out_candidates != nullptr) {
    QueryInstance q =
        QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
    if (!hit) hit = LookupCached(q, &matches, &key);
    if (!hit || out_candidates != nullptr) {
      CandidateSpace candidates = [&] {
        FAIRSQG_TRACE_SPAN_FULL("candidate_build");
        return CandidateSpace::DeriveRefined(
            *config_->graph, q, parent_candidates, changed_var,
            config_->use_candidate_index, &matcher_.mutable_stats());
      }();
      if (!hit) {
        bool swept = false;
        if (SweepAllowed() &&
            changed_var < config_->tmpl->num_range_vars()) {
          const int32_t k = inst.range_binding(changed_var);
          const int32_t m =
              static_cast<int32_t>(config_->domains->size(changed_var));
          if (k != kWildcardBinding && k + 1 < m) {
            // Fresh refinement along a range chain with members still
            // below it: sweep the rest of the chain. Thresholds are only
            // probed when the head itself is coverage-feasible — the
            // explorers abandon infeasible heads, so their chains would
            // never be served.
            auto gate = [this](const NodeSet& head) {
              return coverage_.Evaluate(head).feasible;
            };
            SweepVerifier::Outcome sw = sweep_->SweepChain(
                q, changed_var, candidates, &parent.matches, &matcher_, gate,
                &matches);
            // kSwept and kHeadOnly both deliver the head's exact set;
            // kAborted falls through to the per-instance path below.
            swept = sw != SweepVerifier::Outcome::kAborted;
          }
        }
        if (!swept) {
          // Lemma 2: q(G) ⊆ parent's match set; test only those.
          MatchResult res = matcher_.MatchOutputBounded(
              q, candidates, config_->run_context, &parent.matches);
          if (res.outcome == MatchOutcome::kAborted) {
            verify_seconds_ += timer.ElapsedSeconds();
            return RecordAbort();  // Partial matches: never cached.
          }
          matches = std::move(res.matches);
        }
        if (!key.empty()) config_->match_cache->Insert(key, matches);
      }
      if (out_candidates != nullptr) *out_candidates = std::move(candidates);
    }
  }
  DiversityEvaluator::Parts parts = diversity_.RefineParts(
      {parent.relevance_sum, parent.pair_sum}, parent.matches, matches);
  EvaluatedPtr out = FinishWithParts(inst, std::move(matches), parts);
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

EvaluatedPtr InstanceVerifier::VerifyRelaxed(const Instantiation& inst,
                                             const EvaluatedInstance& parent,
                                             CandidateSpace* out_candidates) {
  if (!config_->use_incremental_verify) return Verify(inst, out_candidates);
  FAIRSQG_TRACE_SPAN_FULL("verify_relaxed");
  Timer timer;
  NodeSet matches;
  std::string key;
  bool hit = ServeSwept(inst, &matches);
  if (!hit || out_candidates != nullptr) {
    QueryInstance q =
        QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
    if (!hit) hit = LookupCached(q, &matches, &key);
    if (!hit || out_candidates != nullptr) {
      CandidateSpace candidates = [&] {
        FAIRSQG_TRACE_SPAN_FULL("candidate_build");
        return CandidateSpace::Build(*config_->graph, q,
                                     /*degree_filter=*/false,
                                     config_->use_candidate_index,
                                     &matcher_.mutable_stats());
      }();
      if (!hit) {
        // Lemma 2 in reverse: every parent match remains a match after
        // relaxation; only output candidates outside it need testing.
        const NodeSet& base = candidates.of(q.output_node());
        NodeSet untested;
        // Fault site: allocation throttling — a kFail here skips the
        // reserve hints; the result must stay byte-identical, only
        // reallocation behaviour changes.
        if (!FAIRSQG_FAULT_POINT("verifier.reserve")) {
          untested.reserve(base.size());
        }
        std::set_difference(base.begin(), base.end(), parent.matches.begin(),
                            parent.matches.end(), std::back_inserter(untested));
        MatchResult res = matcher_.MatchOutputBounded(
            q, candidates, config_->run_context, &untested);
        if (res.outcome == MatchOutcome::kAborted) {
          verify_seconds_ += timer.ElapsedSeconds();
          return RecordAbort();  // Partial matches: never cached.
        }
        NodeSet fresh = std::move(res.matches);
        if (!FAIRSQG_FAULT_POINT("verifier.reserve")) {
          matches.reserve(fresh.size() + parent.matches.size());
        }
        std::set_union(fresh.begin(), fresh.end(), parent.matches.begin(),
                       parent.matches.end(), std::back_inserter(matches));
        if (!key.empty()) config_->match_cache->Insert(key, matches);
      }
      if (out_candidates != nullptr) *out_candidates = std::move(candidates);
    }
  }
  DiversityEvaluator::Parts parts = diversity_.RelaxParts(
      {parent.relevance_sum, parent.pair_sum}, parent.matches, matches);
  EvaluatedPtr out = FinishWithParts(inst, std::move(matches), parts);
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

}  // namespace fairsqg
