#include "core/verifier.h"

#include <algorithm>
#include <string>

#include "common/fault_injection.h"
#include "common/timer.h"

namespace fairsqg {

InstanceVerifier::InstanceVerifier(const QGenConfig& config)
    : config_(&config),
      matcher_(*config.graph, config.semantics),
      diversity_(*config.graph, config.tmpl->node_label(config.tmpl->output_node()),
                 config.diversity),
      coverage_(*config.groups) {}

EvaluatedPtr InstanceVerifier::FinishWithParts(const Instantiation& inst,
                                               NodeSet matches,
                                               DiversityEvaluator::Parts parts) {
  auto out = std::make_shared<EvaluatedInstance>();
  out->inst = inst;
  out->relevance_sum = parts.relevance_sum;
  out->pair_sum = parts.pair_sum;
  out->obj.diversity = diversity_.Combine(parts);
  CoverageResult cov = coverage_.Evaluate(matches);
  out->obj.coverage = cov.value;
  out->feasible = cov.feasible;
  out->group_coverage = std::move(cov.per_group);
  out->matches = std::move(matches);
  out->verify_seq = verify_seq_++;
  return out;
}

EvaluatedPtr InstanceVerifier::Finish(const Instantiation& inst, NodeSet matches) {
  DiversityEvaluator::Parts parts = diversity_.ComputeParts(matches);
  return FinishWithParts(inst, std::move(matches), parts);
}

EvaluatedPtr InstanceVerifier::RecordAbort() {
  ++aborted_matches_;
  ++timed_out_instances_;
  return nullptr;
}

bool InstanceVerifier::LookupCached(const QueryInstance& q, NodeSet* matches,
                                    std::string* key) {
  if (config_->match_cache == nullptr) return false;
  *key = MatchSetCache::KeyFor(q);
  if (config_->match_cache->Lookup(*key, matches)) {
    ++cache_hits_;
    key->clear();
    return true;
  }
  ++cache_misses_;
  return false;
}

EvaluatedPtr InstanceVerifier::Verify(const Instantiation& inst,
                                      CandidateSpace* out_candidates) {
  Timer timer;
  QueryInstance q =
      QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
  NodeSet matches;
  std::string key;
  const bool hit = LookupCached(q, &matches, &key);
  if (!hit || out_candidates != nullptr) {
    CandidateSpace candidates = CandidateSpace::Build(
        *config_->graph, q,
        /*degree_filter=*/config_->semantics == MatchSemantics::kIsomorphism,
        config_->use_candidate_index, &matcher_.mutable_stats());
    if (!hit) {
      MatchResult res =
          matcher_.MatchOutputBounded(q, candidates, config_->run_context);
      if (res.outcome == MatchOutcome::kAborted) {
        verify_seconds_ += timer.ElapsedSeconds();
        return RecordAbort();  // Partial matches: never cached.
      }
      matches = std::move(res.matches);
      if (!key.empty()) config_->match_cache->Insert(key, matches);
    }
    if (out_candidates != nullptr) *out_candidates = std::move(candidates);
  }
  EvaluatedPtr out = Finish(inst, std::move(matches));
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

EvaluatedPtr InstanceVerifier::VerifyRefined(const Instantiation& inst,
                                             const CandidateSpace& parent_candidates,
                                             const EvaluatedInstance& parent,
                                             uint32_t changed_var,
                                             CandidateSpace* out_candidates) {
  if (!config_->use_incremental_verify) return Verify(inst, out_candidates);
  Timer timer;
  QueryInstance q =
      QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
  NodeSet matches;
  std::string key;
  const bool hit = LookupCached(q, &matches, &key);
  if (!hit || out_candidates != nullptr) {
    CandidateSpace candidates = CandidateSpace::DeriveRefined(
        *config_->graph, q, parent_candidates, changed_var,
        config_->use_candidate_index, &matcher_.mutable_stats());
    if (!hit) {
      // Lemma 2: q(G) ⊆ parent's match set; test only the parent's matches.
      MatchResult res = matcher_.MatchOutputBounded(
          q, candidates, config_->run_context, &parent.matches);
      if (res.outcome == MatchOutcome::kAborted) {
        verify_seconds_ += timer.ElapsedSeconds();
        return RecordAbort();  // Partial matches: never cached.
      }
      matches = std::move(res.matches);
      if (!key.empty()) config_->match_cache->Insert(key, matches);
    }
    if (out_candidates != nullptr) *out_candidates = std::move(candidates);
  }
  DiversityEvaluator::Parts parts = diversity_.RefineParts(
      {parent.relevance_sum, parent.pair_sum}, parent.matches, matches);
  EvaluatedPtr out = FinishWithParts(inst, std::move(matches), parts);
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

EvaluatedPtr InstanceVerifier::VerifyRelaxed(const Instantiation& inst,
                                             const EvaluatedInstance& parent,
                                             CandidateSpace* out_candidates) {
  if (!config_->use_incremental_verify) return Verify(inst, out_candidates);
  Timer timer;
  QueryInstance q =
      QueryInstance::Materialize(*config_->tmpl, *config_->domains, inst);
  NodeSet matches;
  std::string key;
  const bool hit = LookupCached(q, &matches, &key);
  if (!hit || out_candidates != nullptr) {
    CandidateSpace candidates =
        CandidateSpace::Build(*config_->graph, q, /*degree_filter=*/false,
                              config_->use_candidate_index,
                              &matcher_.mutable_stats());
    if (!hit) {
      // Lemma 2 in reverse: every parent match remains a match after
      // relaxation; only output candidates outside it need testing.
      const NodeSet& base = candidates.of(q.output_node());
      NodeSet untested;
      // Fault site: allocation throttling — a kFail here skips the reserve
      // hints; the result must stay byte-identical, only reallocation
      // behaviour changes.
      if (!FAIRSQG_FAULT_POINT("verifier.reserve")) {
        untested.reserve(base.size());
      }
      std::set_difference(base.begin(), base.end(), parent.matches.begin(),
                          parent.matches.end(), std::back_inserter(untested));
      MatchResult res = matcher_.MatchOutputBounded(
          q, candidates, config_->run_context, &untested);
      if (res.outcome == MatchOutcome::kAborted) {
        verify_seconds_ += timer.ElapsedSeconds();
        return RecordAbort();  // Partial matches: never cached.
      }
      NodeSet fresh = std::move(res.matches);
      if (!FAIRSQG_FAULT_POINT("verifier.reserve")) {
        matches.reserve(fresh.size() + parent.matches.size());
      }
      std::set_union(fresh.begin(), fresh.end(), parent.matches.begin(),
                     parent.matches.end(), std::back_inserter(matches));
      if (!key.empty()) config_->match_cache->Insert(key, matches);
    }
    if (out_candidates != nullptr) *out_candidates = std::move(candidates);
  }
  DiversityEvaluator::Parts parts = diversity_.RelaxParts(
      {parent.relevance_sum, parent.pair_sum}, parent.matches, matches);
  EvaluatedPtr out = FinishWithParts(inst, std::move(matches), parts);
  verify_seconds_ += timer.ElapsedSeconds();
  return out;
}

}  // namespace fairsqg
