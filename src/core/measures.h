#ifndef FAIRSQG_CORE_MEASURES_H_
#define FAIRSQG_CORE_MEASURES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/groups.h"
#include "graph/graph.h"

namespace fairsqg {

/// Pluggable relevance score r(u_o, v) in [0, 1] (paper Section III-A; in
/// practice an entity-linkage or impact score — our default is degree
/// centrality normalized over the output label's nodes).
using RelevanceFn = std::function<double(const Graph&, NodeId)>;

/// Parameters of the Max-sum diversity measure.
struct DiversityConfig {
  /// Relevance/dissimilarity balance λ in [0, 1].
  double lambda = 0.5;
  /// Custom relevance; null selects normalized degree centrality.
  RelevanceFn relevance;
};

/// \brief Evaluates the paper's Max-sum diversity
///   δ(q, G) = (1-λ) Σ_{v∈q(G)} r(u_o, v)
///           + (2λ / (|V_uo|-1)) Σ_{v<v'∈q(G)} d(v, v')
/// for match sets over one output label.
///
/// The pairwise distance d(v, v') in [0, 1] follows Section V: the
/// normalized distance of the nodes' matching attributes — per attribute of
/// the label, numeric values differ by |a-b|/range and categorical values by
/// the normalized edit distance of their strings (memoized per value pair);
/// attributes missing on one side count as fully different. Node
/// fingerprints are precomputed once per shared Index (see BuildIndex) and
/// reused read-only by every evaluator holding it, so a distance
/// evaluation is O(#attrs) and parallel workers skip the precompute.
class DiversityEvaluator {
 public:
  /// \brief Immutable per-(graph, output label, relevance fn) precompute:
  /// node fingerprints, interned categorical values with dense
  /// normalized-edit-distance matrices, numeric ranges, and per-slot
  /// relevance. Built once by BuildIndex and shared read-only across
  /// evaluators — parallel workers reuse one index instead of redoing the
  /// O(|V_label|·#attrs + Σk²) precompute per verifier.
  struct Index {
    /// Per-node, per-attribute compact value: numeric value, interned
    /// string id, or missing.
    struct Fingerprint {
      std::vector<double> numeric;       // NaN when not numeric/missing.
      std::vector<int32_t> categorical;  // -1 when not string/missing.
      std::vector<bool> present;
    };

    LabelId label = 0;
    size_t label_size = 0;
    double max_label_degree = 0;

    std::vector<AttrId> attrs;       // Attributes of the label, sorted.
    std::vector<double> attr_range;  // Numeric value range per attr.
    std::vector<std::vector<std::string>> attr_values;  // Interned strings.
    // Dense normalized-edit-distance matrix per categorical attribute,
    // indexed [value_a * k + value_b]; precomputed so the pairwise hot
    // loop never touches strings.
    std::vector<std::vector<double>> string_dist;

    std::vector<int32_t> node_slot;  // NodeId -> fingerprint slot or -1.
    std::vector<Fingerprint> fingerprints;
    std::vector<double> relevance;   // Per fingerprint slot.
  };

  /// Builds the shared precompute for `output_label`. A null `relevance`
  /// selects normalized degree centrality (the default measure).
  static std::shared_ptr<const Index> BuildIndex(const Graph& g,
                                                 LabelId output_label,
                                                 const RelevanceFn& relevance);

  DiversityEvaluator(const Graph& g, LabelId output_label,
                     DiversityConfig config);

  /// Shares a prebuilt index. `config.relevance` is ignored — the index's
  /// relevance function was baked in at BuildIndex time.
  DiversityEvaluator(std::shared_ptr<const Index> index,
                     DiversityConfig config);

  /// The additive decomposition of δ: δ = (1-λ)·relevance_sum +
  /// (2λ/(|V_uo|-1))·pair_sum.
  struct Parts {
    double relevance_sum = 0;
    double pair_sum = 0;
  };

  /// δ(q, G) for the match set `matches` (exact, O(|matches|^2) pairs).
  double Diversity(const NodeSet& matches) const;

  /// Full decomposition, O(|matches|^2).
  Parts ComputeParts(const NodeSet& matches) const;

  /// Incremental decomposition for a refined child (child ⊆ parent):
  /// subtracts the removed nodes' cross terms from the parent's pair sum —
  /// O(|removed| * |parent| + |removed|^2), falling back to a full
  /// recomputation when that would be slower. This is incVerify's
  /// "incrementally update ... the coordinates (δ(q), f(q))".
  Parts RefineParts(const Parts& parent, const NodeSet& parent_matches,
                    const NodeSet& child_matches) const;

  /// Incremental decomposition for a relaxed child (child ⊇ parent).
  Parts RelaxParts(const Parts& parent, const NodeSet& parent_matches,
                   const NodeSet& child_matches) const;

  /// δ from a decomposition.
  double Combine(const Parts& parts) const;

  /// Relevance r(u_o, v).
  double Relevance(NodeId v) const;

  /// Pairwise distance d(a, b) in [0, 1].
  double Distance(NodeId a, NodeId b) const;

  /// Upper bound of δ over any match set: |V_uo| (paper Section III-A).
  double MaxDiversity() const {
    return static_cast<double>(index_->label_size);
  }

  LabelId output_label() const { return index_->label; }
  double lambda() const { return config_.lambda; }

  /// The shared precompute (pass into other evaluators / QGenConfig).
  const std::shared_ptr<const Index>& index() const { return index_; }

 private:
  std::shared_ptr<const Index> index_;
  DiversityConfig config_;

  double AttrDistance(size_t attr_idx, const Index::Fingerprint& a,
                      const Index::Fingerprint& b) const;
};

/// Result of evaluating the coverage measure for one instance.
struct CoverageResult {
  /// f(q, P) = clamp(C - Σ_i | |q(G) ∩ P_i| - c_i |, 0, C).
  double value = 0;
  /// Feasible iff |q(G) ∩ P_i| >= c_i for every group.
  bool feasible = false;
  std::vector<size_t> per_group;
};

/// \brief Evaluates the paper's group-coverage measure f(q, P) (Section
/// III-A) and the feasibility predicate.
class CoverageEvaluator {
 public:
  explicit CoverageEvaluator(const GroupSet& groups) : groups_(&groups) {}

  CoverageResult Evaluate(const NodeSet& matches) const;

  /// Upper bound of f: C = Σ c_i.
  double MaxCoverage() const {
    return static_cast<double>(groups_->total_constraint());
  }

 private:
  const GroupSet* groups_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_MEASURES_H_
