#ifndef FAIRSQG_CORE_MEASURES_H_
#define FAIRSQG_CORE_MEASURES_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/groups.h"
#include "graph/graph.h"

namespace fairsqg {

/// Pluggable relevance score r(u_o, v) in [0, 1] (paper Section III-A; in
/// practice an entity-linkage or impact score — our default is degree
/// centrality normalized over the output label's nodes).
using RelevanceFn = std::function<double(const Graph&, NodeId)>;

/// Parameters of the Max-sum diversity measure.
struct DiversityConfig {
  /// Relevance/dissimilarity balance λ in [0, 1].
  double lambda = 0.5;
  /// Custom relevance; null selects normalized degree centrality.
  RelevanceFn relevance;
};

/// \brief Evaluates the paper's Max-sum diversity
///   δ(q, G) = (1-λ) Σ_{v∈q(G)} r(u_o, v)
///           + (2λ / (|V_uo|-1)) Σ_{v<v'∈q(G)} d(v, v')
/// for match sets over one output label.
///
/// The pairwise distance d(v, v') in [0, 1] follows Section V: the
/// normalized distance of the nodes' matching attributes — per attribute of
/// the label, numeric values differ by |a-b|/range and categorical values by
/// the normalized edit distance of their strings (memoized per value pair);
/// attributes missing on one side count as fully different. Node
/// fingerprints are precomputed once per evaluator, so a distance
/// evaluation is O(#attrs).
class DiversityEvaluator {
 public:
  DiversityEvaluator(const Graph& g, LabelId output_label,
                     DiversityConfig config);

  /// The additive decomposition of δ: δ = (1-λ)·relevance_sum +
  /// (2λ/(|V_uo|-1))·pair_sum.
  struct Parts {
    double relevance_sum = 0;
    double pair_sum = 0;
  };

  /// δ(q, G) for the match set `matches` (exact, O(|matches|^2) pairs).
  double Diversity(const NodeSet& matches) const;

  /// Full decomposition, O(|matches|^2).
  Parts ComputeParts(const NodeSet& matches) const;

  /// Incremental decomposition for a refined child (child ⊆ parent):
  /// subtracts the removed nodes' cross terms from the parent's pair sum —
  /// O(|removed| * |parent| + |removed|^2), falling back to a full
  /// recomputation when that would be slower. This is incVerify's
  /// "incrementally update ... the coordinates (δ(q), f(q))".
  Parts RefineParts(const Parts& parent, const NodeSet& parent_matches,
                    const NodeSet& child_matches) const;

  /// Incremental decomposition for a relaxed child (child ⊇ parent).
  Parts RelaxParts(const Parts& parent, const NodeSet& parent_matches,
                   const NodeSet& child_matches) const;

  /// δ from a decomposition.
  double Combine(const Parts& parts) const;

  /// Relevance r(u_o, v).
  double Relevance(NodeId v) const;

  /// Pairwise distance d(a, b) in [0, 1].
  double Distance(NodeId a, NodeId b) const;

  /// Upper bound of δ over any match set: |V_uo| (paper Section III-A).
  double MaxDiversity() const { return static_cast<double>(label_size_); }

  LabelId output_label() const { return label_; }
  double lambda() const { return config_.lambda; }

 private:
  /// Per-node, per-attribute compact value: numeric value, interned string
  /// id, or missing.
  struct Fingerprint {
    std::vector<double> numeric;   // NaN when not numeric/missing.
    std::vector<int32_t> categorical;  // -1 when not string/missing.
    std::vector<bool> present;
  };

  const Graph* g_;
  LabelId label_;
  DiversityConfig config_;
  size_t label_size_ = 0;
  double max_label_degree_ = 0;

  std::vector<AttrId> attrs_;            // Attributes of the label, sorted.
  std::vector<double> attr_range_;       // Numeric value range per attr.
  std::vector<std::vector<std::string>> attr_values_;  // Interned strings.
  // Dense normalized-edit-distance matrix per categorical attribute,
  // indexed [value_a * k + value_b]; precomputed so the pairwise hot loop
  // never touches strings.
  std::vector<std::vector<double>> string_dist_;

  std::vector<int32_t> node_slot_;       // NodeId -> fingerprint slot or -1.
  std::vector<Fingerprint> fingerprints_;
  std::vector<double> relevance_;        // Per fingerprint slot.

  double AttrDistance(size_t attr_idx, const Fingerprint& a,
                      const Fingerprint& b) const;
};

/// Result of evaluating the coverage measure for one instance.
struct CoverageResult {
  /// f(q, P) = clamp(C - Σ_i | |q(G) ∩ P_i| - c_i |, 0, C).
  double value = 0;
  /// Feasible iff |q(G) ∩ P_i| >= c_i for every group.
  bool feasible = false;
  std::vector<size_t> per_group;
};

/// \brief Evaluates the paper's group-coverage measure f(q, P) (Section
/// III-A) and the feasibility predicate.
class CoverageEvaluator {
 public:
  explicit CoverageEvaluator(const GroupSet& groups) : groups_(&groups) {}

  CoverageResult Evaluate(const NodeSet& matches) const;

  /// Upper bound of f: C = Σ c_i.
  double MaxCoverage() const {
    return static_cast<double>(groups_->total_constraint());
  }

 private:
  const GroupSet* groups_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_MEASURES_H_
