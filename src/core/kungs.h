#ifndef FAIRSQG_CORE_KUNGS_H_
#define FAIRSQG_CORE_KUNGS_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief Kungs (Section V baseline): enumerate and verify all of I(Q),
/// then compute the *exact* Pareto-optimal non-dominated set with Kung's
/// maximal-vector algorithm (sort by one objective, sweep the other).
///
/// Returns the unique maximum Pareto set of Lemma 1 — the ground truth the
/// ε-indicator compares the approximate algorithms against.
class Kungs {
 public:
  static Result<QGenResult> Run(const QGenConfig& config);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_KUNGS_H_
