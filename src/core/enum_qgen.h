#ifndef FAIRSQG_CORE_ENUM_QGEN_H_
#define FAIRSQG_CORE_ENUM_QGEN_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief EnumQGen (Theorem 1's naive algorithm): enumerate all of I(Q),
/// verify every instance, and feed the feasible ones through procedure
/// Update to obtain an ε-Pareto instance set.
///
/// Exact on the enumerated space but pays for every verification; the
/// baseline that RfQGen and BiQGen are measured against.
class EnumQGen {
 public:
  static Result<QGenResult> Run(const QGenConfig& config);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_ENUM_QGEN_H_
