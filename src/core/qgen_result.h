#ifndef FAIRSQG_CORE_QGEN_RESULT_H_
#define FAIRSQG_CORE_QGEN_RESULT_H_

#include <vector>

#include "core/evaluated.h"
#include "core/stats.h"

namespace fairsqg {

/// One point of an anytime-quality trace: the state of the maintained
/// ε-Pareto set after `verified` instances had been verified.
struct AnytimePoint {
  size_t verified = 0;
  Objectives best;        // Max diversity / coverage in the archive.
  size_t archive_size = 0;
};

/// Outcome of a query-generation run.
struct QGenResult {
  /// The ε-Pareto instance set (exact Pareto set for Kungs).
  std::vector<EvaluatedPtr> pareto;
  GenStats stats;
  /// Present when QGenConfig::record_trace was set.
  std::vector<AnytimePoint> trace;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_QGEN_RESULT_H_
