#include "core/match_cache.h"

#include <cstring>
#include <functional>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

/// Fixed accounting overhead per entry (list/map node bookkeeping).
constexpr size_t kEntryOverhead = 64;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(v));
}

void AppendValue(std::string* out, const AttrValue& v) {
  if (v.is_int()) {
    out->push_back('i');
    AppendPod(out, v.as_int());
  } else if (v.is_double()) {
    out->push_back('d');
    AppendPod(out, v.as_double());
  } else {
    out->push_back('s');
    const std::string& s = v.as_string();
    AppendPod(out, static_cast<uint32_t>(s.size()));
    AppendRaw(out, s.data(), s.size());
  }
}

size_t EntryBytes(const std::string& key, const NodeSet& matches) {
  return key.size() + matches.size() * sizeof(NodeId) + kEntryOverhead;
}

}  // namespace

Status MatchSetCache::ValidateOptions(const Options& options) {
  if (options.capacity_bytes == 0) {
    return Status::InvalidArgument(
        "MatchSetCache capacity_bytes must be non-zero (a zero budget "
        "admits no entries; disable the cache instead)");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("MatchSetCache num_shards must be non-zero");
  }
  return Status::OK();
}

Result<std::unique_ptr<MatchSetCache>> MatchSetCache::Create(Options options) {
  FAIRSQG_RETURN_NOT_OK(ValidateOptions(options));
  return std::make_unique<MatchSetCache>(options);
}

MatchSetCache::MatchSetCache(Options options) {
  Status valid = ValidateOptions(options);
  FAIRSQG_CHECK(valid.ok()) << valid.ToString();
  num_shards_ = RoundUpPow2(options.num_shards);
  shard_capacity_ = options.capacity_bytes / num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

std::string MatchSetCache::KeyFor(const QueryInstance& q) {
  const Instantiation& inst = q.instantiation();
  std::string key;
  // Fault site: allocation throttling — a kFail skips the size hint; the
  // key bytes (and hence every lookup) are unchanged.
  if (!FAIRSQG_FAULT_POINT("cache.reserve")) {
    key.reserve(16 + inst.num_edge_vars() +
                q.tmpl().literals().size() * (sizeof(AttrId) + 10));
  }
  // Edge-variable assignment (determines the active component and edges).
  for (EdgeVarId x = 0; x < inst.num_edge_vars(); ++x) {
    key.push_back(static_cast<char>(inst.edge_binding(x)));
  }
  key.push_back('|');
  // Bound literals per node, in template order, with full value payloads.
  for (QNodeId u = 0; u < q.tmpl().num_nodes(); ++u) {
    const std::vector<BoundLiteral>& lits = q.literals_of(u);
    if (lits.empty()) continue;
    key.push_back('N');
    AppendPod(&key, u);
    for (const BoundLiteral& l : lits) {
      AppendPod(&key, l.attr);
      key.push_back(static_cast<char>(l.op));
      AppendValue(&key, l.value);
    }
  }
  return key;
}

MatchSetCache::Shard& MatchSetCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string_view>{}(std::string_view(key));
  return shards_[h & (num_shards_ - 1)];
}

bool MatchSetCache::Lookup(const std::string& key, NodeSet* out) {
  // Fault site: a kFail turns this lookup into a miss — the verifier must
  // recompute and produce byte-identical results (cache transparency).
  if (FAIRSQG_FAULT_POINT("cache.lookup")) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it == shard.index.end()) {
    ++shard.misses;
    FAIRSQG_COUNT("fairsqg.cache.misses");
    return false;
  }
  ++shard.hits;
  FAIRSQG_COUNT("fairsqg.cache.hits");
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->matches;
  return true;
}

void MatchSetCache::Insert(const std::string& key, const NodeSet& matches) {
  // Fault site: a kFail simulates an admission failure (entry dropped).
  // Callers never depend on insertion succeeding.
  if (FAIRSQG_FAULT_POINT("cache.insert")) return;
  const size_t bytes = EntryBytes(key, matches);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it != shard.index.end()) {
    // Raced re-computation of the same instance: refresh recency only (the
    // stored set is identical by construction).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (bytes > shard_capacity_) return;  // Never admissible; skip.
  shard.lru.push_front(Entry{key, matches, bytes});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  FAIRSQG_COUNT("fairsqg.cache.insertions");
  while (shard.bytes > shard_capacity_) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(std::string_view(victim.key));
    shard.lru.pop_back();
    ++shard.evictions;
    FAIRSQG_COUNT("fairsqg.cache.evictions");
  }
}

MatchSetCache::CacheStats MatchSetCache::GetStats() const {
  CacheStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace fairsqg
