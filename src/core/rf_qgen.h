#ifndef FAIRSQG_CORE_RF_QGEN_H_
#define FAIRSQG_CORE_RF_QGEN_H_

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief RfQGen (Section IV-A, Fig. 3): "refine as always" depth-first
/// exploration of the instance lattice.
///
/// Starting from the most relaxed instantiation q_r, procedure BFExplore
/// verifies each instance incrementally (incVerify, Lemma 2), feeds the
/// feasible ones through procedure Update, and spawns one-step refinements
/// restricted by template refinement over G_q^d. Infeasible instances cut
/// their whole subtree (a refinement can only shrink the match set, so
/// feasibility is monotonically lost — Lemma 2 (2)). Early convergence
/// favours high-diversity instances (Section V, Fig. 9(e)).
class RfQGen {
 public:
  static Result<QGenResult> Run(const QGenConfig& config);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_RF_QGEN_H_
