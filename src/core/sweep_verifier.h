#ifndef FAIRSQG_CORE_SWEEP_VERIFIER_H_
#define FAIRSQG_CORE_SWEEP_VERIFIER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "matching/subgraph_matcher.h"
#include "query/instance.h"

namespace fairsqg {

/// \brief Batch verification of a range-variable chain (DESIGN.md §12).
///
/// A chain is the set of instances differing from a head instance only in
/// one range variable's binding, ordered relaxed → refined. Lemma 2 makes
/// the members' match sets nested, so one witness-annotated matcher pass
/// over the head (SubgraphMatcher::MatchOutputWithWitness +
/// ResolveSweepThresholds) determines every member's match set as a
/// critical-threshold prefix: member k's set is {v : t(v) >= k}.
///
/// Swept member sets are parked here keyed by their full instantiation and
/// served to the owning InstanceVerifier exactly as a match-cache hit would
/// be — Parts/coverage evaluation happens at serve time through the
/// unchanged per-instance code paths, which is what keeps archives
/// byte-identical with sweeping on or off (the issue's eager per-chain
/// decomposition would reorder floating-point sums; see DESIGN.md §12.4).
///
/// Not thread-safe: one SweepVerifier per InstanceVerifier. Parallel
/// workers each own one; cross-worker reuse flows through the shared
/// MatchSetCache, which every swept member also populates.
class SweepVerifier {
 public:
  explicit SweepVerifier(const QGenConfig& config);

  enum class Outcome {
    /// Whole chain verified: the head's exact match set was produced and
    /// every deeper member's set was parked for Serve().
    kSwept,
    /// The feasibility gate rejected the head: its exact match set was
    /// produced (identical to the per-instance path), but no thresholds
    /// were probed and nothing was parked or counted.
    kHeadOnly,
    /// Hard expiry mid-chain: everything is discarded — the caller must
    /// fall back to the per-instance path (which observes the same expiry).
    kAborted,
  };

  /// Optional head gate: sweeping probes thresholds only when it returns
  /// true for the head's match set (explorers abandon infeasible heads, so
  /// probing their chains would be wasted work).
  using FeasibilityGate = std::function<bool(const NodeSet&)>;

  /// Verifies the chain of `q` along range variable `var` in one pass.
  /// `q`/`candidates`/`output_restrict` describe the head exactly as the
  /// per-instance matcher call would receive them; the head must have at
  /// least one member below it (binding < domain size - 1).
  Outcome SweepChain(const QueryInstance& q, RangeVarId var,
                     const CandidateSpace& candidates,
                     const NodeSet* output_restrict, SubgraphMatcher* matcher,
                     const FeasibilityGate& gate, NodeSet* head_matches);

  /// True when `inst`'s match set was parked by an earlier sweep; moves it
  /// into `*matches` and erases the entry (each member is served once).
  bool Serve(const Instantiation& inst, NodeSet* matches);

  /// Chains fully swept.
  uint64_t chains() const { return chains_; }
  /// Member instances whose match set a sweep derived (excludes heads).
  uint64_t instances() const { return instances_; }
  /// Sweeps aborted by hard expiry (caller fell back per-instance).
  uint64_t fallbacks() const { return fallbacks_; }

 private:
  /// Deepest domain index of `lit` that node `w` satisfies (-1: wildcard
  /// only). Satisfaction is an index prefix — domains are ordered relaxed
  /// → refined — so this is a binary search over AttrValue::Compare.
  int32_t CriticalLevel(NodeId w, const LiteralTemplate& lit,
                        const std::vector<AttrValue>& values) const;

  /// Parks one member set and mirrors it into the shared MatchSetCache.
  void PublishMember(const Instantiation& member, NodeSet set);

  const QGenConfig* config_;
  /// NodeId-indexed critical-level scratch; only entries freshly written
  /// for the current chain's candidates are ever read (the matcher probes
  /// the candidate bitset first), so it is never cleared.
  std::vector<int32_t> level_;
  /// Parked member sets, consumed by Serve. FIFO-capped: evicting an
  /// unserved member only costs re-verifying it, never correctness.
  std::unordered_map<Instantiation, NodeSet, Instantiation::Hasher> store_;
  std::deque<Instantiation> fifo_;
  uint64_t chains_ = 0;
  uint64_t instances_ = 0;
  uint64_t fallbacks_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_SWEEP_VERIFIER_H_
