#include "core/parallel_qgen.h"

#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/pareto_archive.h"
#include "core/verifier.h"

namespace fairsqg {

Result<QGenResult> ParallelQGen::Run(const QGenConfig& config,
                                     size_t num_threads) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  Timer timer;
  QGenResult result;

  // Materialize the instantiation list once; workers take a round-robin
  // slice each (the verification costs are heterogeneous, so interleaving
  // balances better than contiguous blocks).
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  if (it.SpaceSize() > 1000000) {
    return Status::FailedPrecondition(
        "instance space too large to enumerate in parallel");
  }
  std::vector<Instantiation> space;
  space.reserve(it.SpaceSize());
  Instantiation inst;
  while (it.Next(&inst)) space.push_back(inst);
  num_threads = std::min(num_threads, std::max<size_t>(1, space.size()));

  struct WorkerOutput {
    std::vector<EvaluatedPtr> archive;
    size_t verified = 0;
    size_t feasible = 0;
    double verify_seconds = 0;
  };
  std::vector<WorkerOutput> outputs(num_threads);

  auto work = [&](size_t worker) {
    InstanceVerifier verifier(config);  // Private: owns mutable memo caches.
    ParetoArchive archive(config.epsilon);
    WorkerOutput& out = outputs[worker];
    for (size_t i = worker; i < space.size(); i += num_threads) {
      EvaluatedPtr e = verifier.Verify(space[i]);
      ++out.verified;
      if (e->feasible) {
        ++out.feasible;
        archive.Update(std::move(e));
      }
    }
    out.archive = archive.Entries();
    out.verify_seconds = verifier.verify_seconds();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) threads.emplace_back(work, w);
  for (std::thread& t : threads) t.join();

  // Merge the worker archives; box dominance is transitive, so the merged
  // archive still ε-covers the full space.
  ParetoArchive merged(config.epsilon);
  for (WorkerOutput& out : outputs) {
    for (EvaluatedPtr& e : out.archive) merged.Update(std::move(e));
    result.stats.verified += out.verified;
    result.stats.feasible += out.feasible;
    result.stats.verify_seconds =
        std::max(result.stats.verify_seconds, out.verify_seconds);
  }
  result.stats.generated = space.size();
  result.pareto = merged.SortedEntries();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairsqg
