#include "core/parallel_qgen.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/concurrent_archive.h"
#include "core/enumerate.h"
#include "core/verifier.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

/// Instantiations handed to a worker per trip to the shared enumerator.
/// Large enough to amortize the enumerator lock, small enough that
/// self-scheduling load-balances heterogeneous verification costs.
constexpr size_t kChunkSize = 64;

}  // namespace

Result<QGenResult> ParallelQGen::Run(const QGenConfig& config,
                                     size_t num_threads) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  FAIRSQG_TRACE_SPAN("parallel_qgen.run");
  Timer timer;
  QGenResult result;

  // The instance space is streamed in chunks straight from the enumerator —
  // nothing is materialized up-front, so there is no cap on |I(Q)|; a
  // budget (config.max_verifications) bounds arbitrarily large spaces.
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  num_threads = std::min(num_threads, std::max<size_t>(1, it.SpaceSize()));

  ThreadPool pool(num_threads);
  ConcurrentParetoArchive archive(config.epsilon, pool.num_workers());

  // Build the diversity precompute once and share it read-only across the
  // per-worker verifiers instead of redoing it per verifier.
  QGenConfig cfg = config;
  if (cfg.diversity_index == nullptr) {
    cfg.diversity_index = DiversityEvaluator::BuildIndex(
        *cfg.graph, cfg.tmpl->node_label(cfg.tmpl->output_node()),
        cfg.diversity.relevance);
  }

  struct WorkerState {
    std::unique_ptr<InstanceVerifier> verifier;
    size_t verified = 0;
    size_t feasible = 0;
  };
  std::vector<WorkerState> states(pool.num_workers());
  for (WorkerState& s : states) {
    s.verifier = std::make_unique<InstanceVerifier>(cfg);
  }

  // Shared pull source: workers refill a private chunk under this mutex.
  // The RunContext is polled here, once per dispatched instance and under
  // the lock: poll-budget expiry therefore cuts the dispatched set at an
  // exact instance count (workers always finish what was handed out, so
  // cancellation drains the pool deterministically).
  std::mutex enum_mutex;
  size_t dispatched = 0;   // Guarded by enum_mutex.
  size_t num_chunks = 0;   // Guarded by enum_mutex.
  bool exhausted = false;
  bool expired = false;    // Guarded by enum_mutex.
  RunContext* ctx = config.run_context;
  auto fill_chunk = [&](std::vector<Instantiation>* chunk) {
    chunk->clear();
    std::lock_guard<std::mutex> lock(enum_mutex);
    if (exhausted || expired) return;
    Instantiation inst;
    while (chunk->size() < kChunkSize &&
           (config.max_verifications == 0 ||
            dispatched < config.max_verifications)) {
      if (ctx != nullptr && ctx->PollVerification()) {
        FAIRSQG_TRACE_INSTANT("run_context.stop");
        expired = true;
        break;
      }
      if (!it.Next(&inst)) {
        exhausted = true;
        break;
      }
      chunk->push_back(inst);
      ++dispatched;
    }
    if (!chunk->empty()) ++num_chunks;
  };

  // One self-scheduling streaming task per worker: pull a chunk, verify it
  // into the worker's private shard, repeat until the space (or budget)
  // runs dry. Chunk self-scheduling gives the same load balancing the old
  // round-robin slicing aimed for, without materializing the space.
  for (size_t w = 0; w < pool.num_workers(); ++w) {
    pool.SubmitOn(w, [&, w] {
      WorkerState& state = states[w];
      ParetoArchive& shard = archive.shard(w);
      std::vector<Instantiation> chunk;
      for (;;) {
        fill_chunk(&chunk);
        if (chunk.empty()) return;
        for (const Instantiation& inst : chunk) {
          EvaluatedPtr e = state.verifier->Verify(inst);
          if (e == nullptr) continue;  // Aborted mid-match (hard expiry).
          ++state.verified;
          if (e->feasible) {
            ++state.feasible;
            shard.Update(std::move(e));
          }
        }
      }
    });
  }
  pool.Wait();

  for (const WorkerState& s : states) {
    result.stats.verified += s.verified;
    result.stats.feasible += s.feasible;
    double seconds = s.verifier->verify_seconds();
    result.stats.per_worker_verify_seconds.push_back(seconds);
    result.stats.verify_cpu_seconds += seconds;
    result.stats.verify_wall_seconds =
        std::max(result.stats.verify_wall_seconds, seconds);
    result.stats.cache_hits += s.verifier->cache_hits();
    result.stats.cache_misses += s.verifier->cache_misses();
    FoldVerifierStats(*s.verifier, &result.stats);
  }
  if (expired || (ctx != nullptr && ctx->Expired())) {
    result.stats.deadline_exceeded = true;
  }
  result.stats.generated = dispatched;
  result.stats.enqueued = num_chunks;
  result.stats.stolen = pool.stats().stolen;
  FAIRSQG_COUNT_N("fairsqg.pool.stolen", result.stats.stolen);
  FAIRSQG_COUNT_N("fairsqg.pool.enqueued", result.stats.enqueued);
  {
    FAIRSQG_TRACE_SPAN("archive_collect");
    result.pareto = archive.MergedSortedEntries();
  }
  result.stats.total_seconds = timer.ElapsedSeconds();
  FAIRSQG_RETURN_NOT_OK(ApplyExpiryPolicy(config, result.stats));
  return result;
}

}  // namespace fairsqg
