#ifndef FAIRSQG_CORE_VERIFIER_H_
#define FAIRSQG_CORE_VERIFIER_H_

#include <cstdint>
#include <memory>

#include "core/config.h"
#include "core/evaluated.h"
#include "core/match_cache.h"
#include "matching/subgraph_matcher.h"

namespace fairsqg {

class SweepVerifier;

/// \brief The verification pipeline shared by all algorithms: materialize
/// an instantiation, compute q(G), evaluate (δ, f), and decide feasibility.
///
/// Implements the paper's incVerify (Section IV-A): a lattice child's match
/// set is derived from its parent's by exploiting Lemma 2 — a refinement's
/// matches are a subset of the parent's (only exclusions need testing), and
/// a relaxation's matches are a superset (only additions need testing).
///
/// When the configuration carries a RunContext, a match search that trips
/// the context (hard expiry) or the per-match step budget returns nullptr:
/// the partial match set is discarded and never cached, and the abort is
/// recorded in aborted_matches()/timed_out_instances() for GenStats folding.
///
/// With config.use_sweep_verify, chain heads (an instance wildcarded or
/// freshly refined at a range variable) trigger a literal sweep: the whole
/// chain's match sets are derived in one matcher pass and parked in a
/// SweepVerifier, then served here exactly like cache hits — archives stay
/// byte-identical with sweeping on or off (DESIGN.md §12).
class InstanceVerifier {
 public:
  explicit InstanceVerifier(const QGenConfig& config);
  ~InstanceVerifier();

  /// Full verification from scratch. If `out_candidates` is non-null, the
  /// instance's candidate space is returned for incremental children.
  /// Returns nullptr iff the bounded match aborted (see class comment).
  EvaluatedPtr Verify(const Instantiation& inst,
                      CandidateSpace* out_candidates = nullptr);

  /// Verification of a child that refines its parent at `changed_var`
  /// (lattice encoding: range variables first). The parent's match set
  /// bounds the search and its diversity decomposition seeds the child's
  /// incremental coordinate update. Falls back to Verify when
  /// config.use_incremental_verify is off.
  EvaluatedPtr VerifyRefined(const Instantiation& inst,
                             const CandidateSpace& parent_candidates,
                             const EvaluatedInstance& parent, uint32_t changed_var,
                             CandidateSpace* out_candidates = nullptr);

  /// Verification of a child that relaxes its parent: the parent's matches
  /// are known matches; only the remaining output candidates are tested.
  EvaluatedPtr VerifyRelaxed(const Instantiation& inst,
                             const EvaluatedInstance& parent,
                             CandidateSpace* out_candidates = nullptr);

  uint64_t num_verified() const { return verify_seq_; }
  double verify_seconds() const { return verify_seconds_; }

  /// Match-set cache traffic of THIS verifier (deterministic per worker,
  /// unlike the cache's global counters under parallel interleavings).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  /// Degraded-run accounting of THIS verifier: matcher searches aborted by
  /// the RunContext / step budget, and instances returned as nullptr
  /// because of such an abort (one instance may abort several searches on
  /// retries, so the two counters are tracked separately).
  uint64_t aborted_matches() const { return aborted_matches_; }
  uint64_t timed_out_instances() const { return timed_out_instances_; }

  /// Literal-sweep accounting of THIS verifier (all zero when
  /// config.use_sweep_verify is off; DESIGN.md §12).
  uint64_t sweep_chains() const;
  uint64_t sweep_instances() const;
  uint64_t sweep_fallbacks() const;

  const DiversityEvaluator& diversity() const { return diversity_; }
  const CoverageEvaluator& coverage() const { return coverage_; }
  const MatchStats& match_stats() const { return matcher_.stats(); }

 private:
  EvaluatedPtr Finish(const Instantiation& inst, NodeSet matches);
  EvaluatedPtr FinishWithParts(const Instantiation& inst, NodeSet matches,
                               DiversityEvaluator::Parts parts);

  /// Consults the configured cache for the materialized instance `q`.
  /// On a hit, fills `*matches` and leaves `*key` empty; on a miss (or with
  /// no cache), returns false with `*key` set iff a cache is configured.
  bool LookupCached(const QueryInstance& q, NodeSet* matches, std::string* key);

  /// Records an aborted bounded match and produces the nullptr result.
  EvaluatedPtr RecordAbort();

  /// True when chains may be swept: use_sweep_verify is on and no per-match
  /// step budget is configured (a pooled chain search would consume the
  /// budget differently from per-instance searches, changing which
  /// instances abort — so sweeping is disabled under one).
  bool SweepAllowed() const;

  /// Serves `inst`'s match set from the sweep store, if parked there.
  bool ServeSwept(const Instantiation& inst, NodeSet* matches);

  const QGenConfig* config_;
  SubgraphMatcher matcher_;
  DiversityEvaluator diversity_;
  CoverageEvaluator coverage_;
  std::unique_ptr<SweepVerifier> sweep_;  // Null unless use_sweep_verify.
  uint64_t verify_seq_ = 0;
  double verify_seconds_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t aborted_matches_ = 0;
  uint64_t timed_out_instances_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_VERIFIER_H_
