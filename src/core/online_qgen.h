#ifndef FAIRSQG_CORE_ONLINE_QGEN_H_
#define FAIRSQG_CORE_ONLINE_QGEN_H_

#include <deque>

#include "common/result.h"
#include "core/config.h"
#include "core/pareto_archive.h"
#include "core/qgen_result.h"
#include "core/verifier.h"

namespace fairsqg {

/// Parameters of the online maintenance problem (Section IV-C).
struct OnlineConfig {
  /// Target result size k: |Q_(ε,k)| <= k at all times.
  size_t k = 10;
  /// Sliding-window cache size w (timestamps before a rejected instance
  /// expires from W_Q).
  size_t window = 40;
  /// Initial tolerance ε_m; ε only grows from here (Lemma 4).
  double initial_epsilon = 0.01;
};

/// \brief OnlineQGen (Section IV-C, Fig. 8): maintains a size-k ε-Pareto
/// instance set over a stream of instantiations, with ε as small as
/// possible.
///
/// Rejected instances are cached in a sliding window W_Q for `window`
/// timestamps — they may become acceptable after ε grows or members get
/// evicted. When a new instance would grow the set beyond k (Update Case
/// 3), ε is enlarged to the boxing-space distance to the instance's
/// nearest archive neighbour, which merges their boxes (Lemma 4 keeps all
/// previous ε-dominances valid), and the displaced cache is re-offered.
class OnlineQGen {
 public:
  OnlineQGen(const QGenConfig& config, OnlineConfig online);

  /// Feeds one streamed instantiation; returns the delay time in seconds
  /// spent processing it (verification + maintenance).
  double Process(const Instantiation& inst);

  /// Current ε (monotonically non-decreasing).
  double epsilon() const { return archive_.epsilon(); }

  /// Current members, size <= k.
  std::vector<EvaluatedPtr> Current() const { return archive_.SortedEntries(); }
  size_t size() const { return archive_.size(); }

  const GenStats& stats() const { return stats_; }

  /// Snapshot as a QGenResult (for the indicator harness).
  QGenResult Snapshot() const;

 private:
  struct CachedInstance {
    EvaluatedPtr eval;
    uint64_t timestamp;
  };

  void ExpireWindow();
  void TryPromoteCached();

  const QGenConfig* config_;
  OnlineConfig online_;
  InstanceVerifier verifier_;
  ParetoArchive archive_;
  std::deque<CachedInstance> window_;
  GenStats stats_;
  uint64_t now_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_ONLINE_QGEN_H_
