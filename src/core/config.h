#ifndef FAIRSQG_CORE_CONFIG_H_
#define FAIRSQG_CORE_CONFIG_H_

#include <cstddef>
#include <memory>

#include "common/run_context.h"
#include "common/status.h"
#include "core/groups.h"
#include "core/measures.h"
#include "graph/graph.h"
#include "matching/subgraph_matcher.h"
#include "query/domains.h"
#include "query/query_template.h"

namespace fairsqg {

class MatchSetCache;

/// \brief A query-generation configuration C = (G, Q(u_o), P, ε) (Section
/// III-B), plus the measure parameters and the optimization toggles that
/// the ablation benchmarks flip.
///
/// All pointers are non-owning and must outlive the algorithms.
struct QGenConfig {
  const Graph* graph = nullptr;
  const QueryTemplate* tmpl = nullptr;
  const VariableDomains* domains = nullptr;
  const GroupSet* groups = nullptr;

  /// Approximation tolerance ε > 0.
  double epsilon = 0.01;

  DiversityConfig diversity;

  /// Matching semantics for q(G); the paper evaluates under subgraph
  /// isomorphism, homomorphism is provided as an extension.
  MatchSemantics semantics = MatchSemantics::kIsomorphism;

  /// Spawn's template refinement: restrict variable domains to values in
  /// G_q^d and pin edge variables with no matching edge (Section IV-A).
  bool use_template_refinement = true;
  /// BiQGen's "sandwich" pruning (Lemma 3).
  bool use_sandwich_pruning = true;
  /// incVerify: candidate reuse + parent-match-set restriction (Lemma 2).
  bool use_incremental_verify = true;
  /// Skip spawning a subtree all of whose instances are already ε-dominated
  /// by the archive (δ bounded by the parent's, f bounded by C).
  bool use_subtree_pruning = true;
  /// Resolve candidate sets through the graph's attribute range indexes and
  /// label bitsets (index slicing / bitmap filtering) instead of per-node
  /// literal scans. Off reproduces the reference scan path bit for bit.
  bool use_candidate_index = true;

  /// Literal-sweep batch verification (DESIGN.md §12): verify a whole chain
  /// of instances differing only in one range variable's bound in one
  /// witness-annotated matcher pass, amortizing q(G) across the chain.
  /// Archives are byte-identical on or off. Automatically disabled while a
  /// per-match step budget (RunContext::match_step_limit) is active.
  bool use_sweep_verify = false;

  /// Optional shared diversity precompute (node fingerprints, categorical
  /// edit-distance matrices, per-node relevance) reused read-only across
  /// verifiers. Must have been built by DiversityEvaluator::BuildIndex for
  /// this graph, the template's output label, and diversity.relevance.
  /// Null makes each verifier build its own; parallel generators fill this
  /// in once per run when unset.
  std::shared_ptr<const DiversityEvaluator::Index> diversity_index;

  /// Optional shared match-set cache consulted before every matcher
  /// invocation (non-owning; may be shared by parallel workers). The cache
  /// must have been created for this same configuration. Null disables
  /// caching. Results are byte-identical with the cache on or off.
  MatchSetCache* match_cache = nullptr;

  /// Safety cap on verifications; 0 means unlimited.
  size_t max_verifications = 0;

  /// Optional cancellation / deadline / step-budget context (non-owning;
  /// null = unbounded run). Generators poll it between verifications and
  /// stop cleanly on expiry, returning the best-so-far archive with
  /// GenStats::deadline_exceeded set; the matcher additionally polls its
  /// hard-expiry axis inside the backtracking loop (DESIGN.md §11). With
  /// ExpiryPolicy::kFail the generator returns Status::DeadlineExceeded
  /// instead of a degraded result.
  RunContext* run_context = nullptr;

  /// Record an anytime-quality trace point after every archive update
  /// (drives the Fig. 9(e) / Fig. 11(b) anytime plots).
  bool record_trace = false;

  Status Validate() const {
    if (graph == nullptr || tmpl == nullptr || domains == nullptr ||
        groups == nullptr) {
      return Status::InvalidArgument("QGenConfig pointers must all be set");
    }
    if (epsilon <= 0) return Status::InvalidArgument("epsilon must be > 0");
    if (domains->num_vars() != tmpl->num_range_vars()) {
      return Status::InvalidArgument("domains built for a different template");
    }
    return tmpl->Validate();
  }
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_CONFIG_H_
