#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"

namespace fairsqg {

DiversityEvaluator::DiversityEvaluator(const Graph& g, LabelId output_label,
                                       DiversityConfig config)
    : g_(&g), label_(output_label), config_(std::move(config)) {
  const NodeSet& nodes = g.NodesWithLabel(label_);
  label_size_ = nodes.size();
  for (NodeId v : nodes) {
    max_label_degree_ = std::max(max_label_degree_, static_cast<double>(g.degree(v)));
  }

  // Attribute universe of the label.
  std::set<AttrId> attr_set;
  for (NodeId v : nodes) {
    for (const AttrEntry& e : g.attrs(v)) attr_set.insert(e.attr);
  }
  attrs_.assign(attr_set.begin(), attr_set.end());
  attr_range_.assign(attrs_.size(), 0.0);
  attr_values_.resize(attrs_.size());

  // Interned categorical values and numeric ranges per attribute.
  std::vector<std::map<std::string, int32_t>> value_ids(attrs_.size());
  std::vector<double> min_v(attrs_.size(), std::numeric_limits<double>::infinity());
  std::vector<double> max_v(attrs_.size(), -std::numeric_limits<double>::infinity());

  node_slot_.assign(g.num_nodes(), -1);
  fingerprints_.reserve(nodes.size());
  for (NodeId v : nodes) {
    Fingerprint fp;
    fp.numeric.assign(attrs_.size(), std::numeric_limits<double>::quiet_NaN());
    fp.categorical.assign(attrs_.size(), -1);
    fp.present.assign(attrs_.size(), false);
    for (size_t i = 0; i < attrs_.size(); ++i) {
      const AttrValue* value = g.GetAttr(v, attrs_[i]);
      if (value == nullptr) continue;
      fp.present[i] = true;
      if (value->is_numeric()) {
        double d = value->ToNumeric();
        fp.numeric[i] = d;
        min_v[i] = std::min(min_v[i], d);
        max_v[i] = std::max(max_v[i], d);
      } else {
        auto [it, inserted] = value_ids[i].emplace(
            value->as_string(), static_cast<int32_t>(attr_values_[i].size()));
        if (inserted) attr_values_[i].push_back(value->as_string());
        fp.categorical[i] = it->second;
      }
    }
    node_slot_[v] = static_cast<int32_t>(fingerprints_.size());
    fingerprints_.push_back(std::move(fp));
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (max_v[i] > min_v[i]) attr_range_[i] = max_v[i] - min_v[i];
  }

  // Dense normalized-edit-distance matrices per categorical attribute:
  // active domains of categorical attributes are small, so the O(k^2)
  // precomputation removes all string work from the pairwise hot loop.
  string_dist_.resize(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    size_t k = attr_values_[i].size();
    if (k == 0) continue;
    string_dist_[i].assign(k * k, 0.0);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        double d = NormalizedEditDistance(attr_values_[i][a], attr_values_[i][b]);
        string_dist_[i][a * k + b] = d;
        string_dist_[i][b * k + a] = d;
      }
    }
  }

  // Precompute relevance per slot (degree centrality or the custom fn).
  relevance_.resize(fingerprints_.size());
  for (NodeId v : nodes) {
    double r;
    if (config_.relevance) {
      r = config_.relevance(g, v);
    } else {
      r = max_label_degree_ > 0
              ? static_cast<double>(g.degree(v)) / max_label_degree_
              : 0.0;
    }
    relevance_[node_slot_[v]] = r;
  }
}

double DiversityEvaluator::Relevance(NodeId v) const {
  int32_t slot = node_slot_[v];
  FAIRSQG_CHECK(slot >= 0) << "Relevance on non-output-label node";
  return relevance_[slot];
}

double DiversityEvaluator::AttrDistance(size_t attr_idx, const Fingerprint& a,
                                        const Fingerprint& b) const {
  bool pa = a.present[attr_idx];
  bool pb = b.present[attr_idx];
  if (!pa && !pb) return 0.0;
  if (pa != pb) return 1.0;  // Missing on one side: fully different.
  bool num_a = !std::isnan(a.numeric[attr_idx]);
  bool num_b = !std::isnan(b.numeric[attr_idx]);
  if (num_a != num_b) return 1.0;  // Type mismatch.
  if (num_a) {
    if (attr_range_[attr_idx] <= 0) return 0.0;
    return std::abs(a.numeric[attr_idx] - b.numeric[attr_idx]) /
           attr_range_[attr_idx];
  }
  int32_t ia = a.categorical[attr_idx];
  int32_t ib = b.categorical[attr_idx];
  if (ia == ib) return 0.0;
  size_t k = attr_values_[attr_idx].size();
  return string_dist_[attr_idx][static_cast<size_t>(ia) * k +
                                static_cast<size_t>(ib)];
}

double DiversityEvaluator::Distance(NodeId a, NodeId b) const {
  if (attrs_.empty()) return 0.0;
  int32_t sa = node_slot_[a];
  int32_t sb = node_slot_[b];
  FAIRSQG_CHECK(sa >= 0 && sb >= 0) << "Distance on non-output-label node";
  const Fingerprint& fa = fingerprints_[sa];
  const Fingerprint& fb = fingerprints_[sb];
  double total = 0;
  for (size_t i = 0; i < attrs_.size(); ++i) total += AttrDistance(i, fa, fb);
  return total / static_cast<double>(attrs_.size());
}

DiversityEvaluator::Parts DiversityEvaluator::ComputeParts(
    const NodeSet& matches) const {
  Parts parts;
  // Resolve fingerprint slots once.
  std::vector<const Fingerprint*> fps;
  fps.reserve(matches.size());
  for (NodeId v : matches) {
    int32_t slot = node_slot_[v];
    FAIRSQG_CHECK(slot >= 0) << "match is not an output-label node";
    parts.relevance_sum += relevance_[slot];
    fps.push_back(&fingerprints_[slot]);
  }
  if (config_.lambda > 0 && !attrs_.empty()) {
    const size_t na = attrs_.size();
    for (size_t i = 0; i < fps.size(); ++i) {
      const Fingerprint& fa = *fps[i];
      for (size_t j = i + 1; j < fps.size(); ++j) {
        const Fingerprint& fb = *fps[j];
        double total = 0;
        for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fa, fb);
        parts.pair_sum += total / static_cast<double>(na);
      }
    }
  }
  return parts;
}

double DiversityEvaluator::Combine(const Parts& parts) const {
  double pair_scale =
      label_size_ > 1 ? 2.0 * config_.lambda / static_cast<double>(label_size_ - 1)
                      : 0.0;
  return (1.0 - config_.lambda) * parts.relevance_sum +
         pair_scale * parts.pair_sum;
}

double DiversityEvaluator::Diversity(const NodeSet& matches) const {
  return Combine(ComputeParts(matches));
}

DiversityEvaluator::Parts DiversityEvaluator::RefineParts(
    const Parts& parent, const NodeSet& parent_matches,
    const NodeSet& child_matches) const {
  NodeSet removed;
  removed.reserve(parent_matches.size() - child_matches.size());
  std::set_difference(parent_matches.begin(), parent_matches.end(),
                      child_matches.begin(), child_matches.end(),
                      std::back_inserter(removed));
  // Cheaper to recompute when most of the set went away.
  if (removed.size() * parent_matches.size() >
      child_matches.size() * child_matches.size()) {
    return ComputeParts(child_matches);
  }
  Parts parts = parent;
  const size_t na = attrs_.size();
  // pair_sum(child) = pair_sum(parent) - sum_{r in removed}
  //   rowsum_parent(r) + pair_sum(removed): the rowsum subtraction counts
  //   removed-removed pairs twice, which pair_sum(removed) adds back.
  for (NodeId r : removed) {
    parts.relevance_sum -= relevance_[node_slot_[r]];
    if (config_.lambda <= 0 || na == 0) continue;
    const Fingerprint& fr = fingerprints_[node_slot_[r]];
    double rowsum = 0;
    for (NodeId v : parent_matches) {
      if (v == r) continue;
      const Fingerprint& fv = fingerprints_[node_slot_[v]];
      double total = 0;
      for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fr, fv);
      rowsum += total / static_cast<double>(na);
    }
    parts.pair_sum -= rowsum;
  }
  if (config_.lambda > 0 && na > 0) {
    parts.pair_sum += ComputeParts(removed).pair_sum;
  }
  if (parts.pair_sum < 0) parts.pair_sum = 0;  // Guard numeric drift.
  if (parts.relevance_sum < 0) parts.relevance_sum = 0;
  return parts;
}

DiversityEvaluator::Parts DiversityEvaluator::RelaxParts(
    const Parts& parent, const NodeSet& parent_matches,
    const NodeSet& child_matches) const {
  NodeSet added;
  added.reserve(child_matches.size() - parent_matches.size());
  std::set_difference(child_matches.begin(), child_matches.end(),
                      parent_matches.begin(), parent_matches.end(),
                      std::back_inserter(added));
  if (added.size() * child_matches.size() >
      child_matches.size() * child_matches.size() / 2) {
    return ComputeParts(child_matches);
  }
  Parts parts = parent;
  const size_t na = attrs_.size();
  // pair_sum(child) = pair_sum(parent) + sum_{a in added}
  //   rowsum_child(a) - pair_sum(added) (added-added pairs counted twice).
  for (NodeId x : added) {
    parts.relevance_sum += relevance_[node_slot_[x]];
    if (config_.lambda <= 0 || na == 0) continue;
    const Fingerprint& fx = fingerprints_[node_slot_[x]];
    double rowsum = 0;
    for (NodeId v : child_matches) {
      if (v == x) continue;
      const Fingerprint& fv = fingerprints_[node_slot_[v]];
      double total = 0;
      for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fx, fv);
      rowsum += total / static_cast<double>(na);
    }
    parts.pair_sum += rowsum;
  }
  if (config_.lambda > 0 && na > 0) {
    parts.pair_sum -= ComputeParts(added).pair_sum;
  }
  if (parts.pair_sum < 0) parts.pair_sum = 0;
  return parts;
}

CoverageResult CoverageEvaluator::Evaluate(const NodeSet& matches) const {
  CoverageResult r;
  r.per_group = groups_->CoverageCounts(matches);
  r.feasible = true;
  double error = 0;
  for (size_t i = 0; i < r.per_group.size(); ++i) {
    double c = static_cast<double>(groups_->constraint(i));
    double cov = static_cast<double>(r.per_group[i]);
    if (cov < c) r.feasible = false;
    error += std::abs(cov - c);
  }
  double c_total = static_cast<double>(groups_->total_constraint());
  r.value = std::clamp(c_total - error, 0.0, c_total);
  return r;
}

}  // namespace fairsqg
