#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"

namespace fairsqg {

std::shared_ptr<const DiversityEvaluator::Index> DiversityEvaluator::BuildIndex(
    const Graph& g, LabelId output_label, const RelevanceFn& relevance) {
  auto index = std::make_shared<Index>();
  Index& idx = *index;
  idx.label = output_label;
  const NodeSet& nodes = g.NodesWithLabel(output_label);
  idx.label_size = nodes.size();
  for (NodeId v : nodes) {
    idx.max_label_degree =
        std::max(idx.max_label_degree, static_cast<double>(g.degree(v)));
  }

  // Attribute universe of the label.
  std::set<AttrId> attr_set;
  for (NodeId v : nodes) {
    for (const AttrEntry& e : g.attrs(v)) attr_set.insert(e.attr);
  }
  idx.attrs.assign(attr_set.begin(), attr_set.end());
  idx.attr_range.assign(idx.attrs.size(), 0.0);
  idx.attr_values.resize(idx.attrs.size());

  // Interned categorical values and numeric ranges per attribute.
  std::vector<std::map<std::string, int32_t>> value_ids(idx.attrs.size());
  std::vector<double> min_v(idx.attrs.size(),
                            std::numeric_limits<double>::infinity());
  std::vector<double> max_v(idx.attrs.size(),
                            -std::numeric_limits<double>::infinity());

  idx.node_slot.assign(g.num_nodes(), -1);
  idx.fingerprints.reserve(nodes.size());
  for (NodeId v : nodes) {
    Index::Fingerprint fp;
    fp.numeric.assign(idx.attrs.size(),
                      std::numeric_limits<double>::quiet_NaN());
    fp.categorical.assign(idx.attrs.size(), -1);
    fp.present.assign(idx.attrs.size(), false);
    for (size_t i = 0; i < idx.attrs.size(); ++i) {
      const AttrValue* value = g.GetAttr(v, idx.attrs[i]);
      if (value == nullptr) continue;
      fp.present[i] = true;
      if (value->is_numeric()) {
        double d = value->ToNumeric();
        fp.numeric[i] = d;
        min_v[i] = std::min(min_v[i], d);
        max_v[i] = std::max(max_v[i], d);
      } else {
        auto [it, inserted] = value_ids[i].emplace(
            value->as_string(),
            static_cast<int32_t>(idx.attr_values[i].size()));
        if (inserted) idx.attr_values[i].push_back(value->as_string());
        fp.categorical[i] = it->second;
      }
    }
    idx.node_slot[v] = static_cast<int32_t>(idx.fingerprints.size());
    idx.fingerprints.push_back(std::move(fp));
  }
  for (size_t i = 0; i < idx.attrs.size(); ++i) {
    if (max_v[i] > min_v[i]) idx.attr_range[i] = max_v[i] - min_v[i];
  }

  // Dense normalized-edit-distance matrices per categorical attribute:
  // active domains of categorical attributes are small, so the O(k^2)
  // precomputation removes all string work from the pairwise hot loop.
  idx.string_dist.resize(idx.attrs.size());
  for (size_t i = 0; i < idx.attrs.size(); ++i) {
    size_t k = idx.attr_values[i].size();
    if (k == 0) continue;
    idx.string_dist[i].assign(k * k, 0.0);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        double d =
            NormalizedEditDistance(idx.attr_values[i][a], idx.attr_values[i][b]);
        idx.string_dist[i][a * k + b] = d;
        idx.string_dist[i][b * k + a] = d;
      }
    }
  }

  // Precompute relevance per slot (degree centrality or the custom fn).
  idx.relevance.resize(idx.fingerprints.size());
  for (NodeId v : nodes) {
    double r;
    if (relevance) {
      r = relevance(g, v);
    } else {
      r = idx.max_label_degree > 0
              ? static_cast<double>(g.degree(v)) / idx.max_label_degree
              : 0.0;
    }
    idx.relevance[idx.node_slot[v]] = r;
  }
  return index;
}

DiversityEvaluator::DiversityEvaluator(const Graph& g, LabelId output_label,
                                       DiversityConfig config)
    : index_(BuildIndex(g, output_label, config.relevance)),
      config_(std::move(config)) {}

DiversityEvaluator::DiversityEvaluator(std::shared_ptr<const Index> index,
                                       DiversityConfig config)
    : index_(std::move(index)), config_(std::move(config)) {
  FAIRSQG_CHECK(index_ != nullptr) << "shared diversity index must be built";
}

double DiversityEvaluator::Relevance(NodeId v) const {
  int32_t slot = index_->node_slot[v];
  FAIRSQG_CHECK(slot >= 0) << "Relevance on non-output-label node";
  return index_->relevance[slot];
}

double DiversityEvaluator::AttrDistance(size_t attr_idx,
                                        const Index::Fingerprint& a,
                                        const Index::Fingerprint& b) const {
  bool pa = a.present[attr_idx];
  bool pb = b.present[attr_idx];
  if (!pa && !pb) return 0.0;
  if (pa != pb) return 1.0;  // Missing on one side: fully different.
  bool num_a = !std::isnan(a.numeric[attr_idx]);
  bool num_b = !std::isnan(b.numeric[attr_idx]);
  if (num_a != num_b) return 1.0;  // Type mismatch.
  if (num_a) {
    if (index_->attr_range[attr_idx] <= 0) return 0.0;
    return std::abs(a.numeric[attr_idx] - b.numeric[attr_idx]) /
           index_->attr_range[attr_idx];
  }
  int32_t ia = a.categorical[attr_idx];
  int32_t ib = b.categorical[attr_idx];
  if (ia == ib) return 0.0;
  size_t k = index_->attr_values[attr_idx].size();
  return index_->string_dist[attr_idx][static_cast<size_t>(ia) * k +
                                       static_cast<size_t>(ib)];
}

double DiversityEvaluator::Distance(NodeId a, NodeId b) const {
  if (index_->attrs.empty()) return 0.0;
  int32_t sa = index_->node_slot[a];
  int32_t sb = index_->node_slot[b];
  FAIRSQG_CHECK(sa >= 0 && sb >= 0) << "Distance on non-output-label node";
  const Index::Fingerprint& fa = index_->fingerprints[sa];
  const Index::Fingerprint& fb = index_->fingerprints[sb];
  double total = 0;
  for (size_t i = 0; i < index_->attrs.size(); ++i) total += AttrDistance(i, fa, fb);
  return total / static_cast<double>(index_->attrs.size());
}

DiversityEvaluator::Parts DiversityEvaluator::ComputeParts(
    const NodeSet& matches) const {
  Parts parts;
  // Resolve fingerprint slots once.
  std::vector<const Index::Fingerprint*> fps;
  fps.reserve(matches.size());
  for (NodeId v : matches) {
    int32_t slot = index_->node_slot[v];
    FAIRSQG_CHECK(slot >= 0) << "match is not an output-label node";
    parts.relevance_sum += index_->relevance[slot];
    fps.push_back(&index_->fingerprints[slot]);
  }
  if (config_.lambda > 0 && !index_->attrs.empty()) {
    const size_t na = index_->attrs.size();
    for (size_t i = 0; i < fps.size(); ++i) {
      const Index::Fingerprint& fa = *fps[i];
      for (size_t j = i + 1; j < fps.size(); ++j) {
        const Index::Fingerprint& fb = *fps[j];
        double total = 0;
        for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fa, fb);
        parts.pair_sum += total / static_cast<double>(na);
      }
    }
  }
  return parts;
}

double DiversityEvaluator::Combine(const Parts& parts) const {
  double pair_scale =
      index_->label_size > 1
          ? 2.0 * config_.lambda / static_cast<double>(index_->label_size - 1)
          : 0.0;
  return (1.0 - config_.lambda) * parts.relevance_sum +
         pair_scale * parts.pair_sum;
}

double DiversityEvaluator::Diversity(const NodeSet& matches) const {
  return Combine(ComputeParts(matches));
}

DiversityEvaluator::Parts DiversityEvaluator::RefineParts(
    const Parts& parent, const NodeSet& parent_matches,
    const NodeSet& child_matches) const {
  NodeSet removed;
  removed.reserve(parent_matches.size() - child_matches.size());
  std::set_difference(parent_matches.begin(), parent_matches.end(),
                      child_matches.begin(), child_matches.end(),
                      std::back_inserter(removed));
  // Cheaper to recompute when most of the set went away.
  if (removed.size() * parent_matches.size() >
      child_matches.size() * child_matches.size()) {
    return ComputeParts(child_matches);
  }
  Parts parts = parent;
  const size_t na = index_->attrs.size();
  // pair_sum(child) = pair_sum(parent) - sum_{r in removed}
  //   rowsum_parent(r) + pair_sum(removed): the rowsum subtraction counts
  //   removed-removed pairs twice, which pair_sum(removed) adds back.
  for (NodeId r : removed) {
    parts.relevance_sum -= index_->relevance[index_->node_slot[r]];
    if (config_.lambda <= 0 || na == 0) continue;
    const Index::Fingerprint& fr = index_->fingerprints[index_->node_slot[r]];
    double rowsum = 0;
    for (NodeId v : parent_matches) {
      if (v == r) continue;
      const Index::Fingerprint& fv = index_->fingerprints[index_->node_slot[v]];
      double total = 0;
      for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fr, fv);
      rowsum += total / static_cast<double>(na);
    }
    parts.pair_sum -= rowsum;
  }
  if (config_.lambda > 0 && na > 0) {
    parts.pair_sum += ComputeParts(removed).pair_sum;
  }
  if (parts.pair_sum < 0) parts.pair_sum = 0;  // Guard numeric drift.
  if (parts.relevance_sum < 0) parts.relevance_sum = 0;
  return parts;
}

DiversityEvaluator::Parts DiversityEvaluator::RelaxParts(
    const Parts& parent, const NodeSet& parent_matches,
    const NodeSet& child_matches) const {
  NodeSet added;
  added.reserve(child_matches.size() - parent_matches.size());
  std::set_difference(child_matches.begin(), child_matches.end(),
                      parent_matches.begin(), parent_matches.end(),
                      std::back_inserter(added));
  if (added.size() * child_matches.size() >
      child_matches.size() * child_matches.size() / 2) {
    return ComputeParts(child_matches);
  }
  Parts parts = parent;
  const size_t na = index_->attrs.size();
  // pair_sum(child) = pair_sum(parent) + sum_{a in added}
  //   rowsum_child(a) - pair_sum(added) (added-added pairs counted twice).
  for (NodeId x : added) {
    parts.relevance_sum += index_->relevance[index_->node_slot[x]];
    if (config_.lambda <= 0 || na == 0) continue;
    const Index::Fingerprint& fx = index_->fingerprints[index_->node_slot[x]];
    double rowsum = 0;
    for (NodeId v : child_matches) {
      if (v == x) continue;
      const Index::Fingerprint& fv = index_->fingerprints[index_->node_slot[v]];
      double total = 0;
      for (size_t a = 0; a < na; ++a) total += AttrDistance(a, fx, fv);
      rowsum += total / static_cast<double>(na);
    }
    parts.pair_sum += rowsum;
  }
  if (config_.lambda > 0 && na > 0) {
    parts.pair_sum -= ComputeParts(added).pair_sum;
  }
  if (parts.pair_sum < 0) parts.pair_sum = 0;
  return parts;
}

CoverageResult CoverageEvaluator::Evaluate(const NodeSet& matches) const {
  CoverageResult r;
  r.per_group = groups_->CoverageCounts(matches);
  r.feasible = true;
  double error = 0;
  for (size_t i = 0; i < r.per_group.size(); ++i) {
    double c = static_cast<double>(groups_->constraint(i));
    double cov = static_cast<double>(r.per_group[i]);
    if (cov < c) r.feasible = false;
    error += std::abs(cov - c);
  }
  double c_total = static_cast<double>(groups_->total_constraint());
  r.value = std::clamp(c_total - error, 0.0, c_total);
  return r;
}

}  // namespace fairsqg
