#include "core/cbm.h"

#include <algorithm>

#include "common/timer.h"
#include "core/enumerate.h"
#include "obs/trace.h"

namespace fairsqg {

Result<QGenResult> Cbm::Run(const QGenConfig& config, size_t num_sections) {
  FAIRSQG_RETURN_NOT_OK(config.Validate());
  FAIRSQG_TRACE_SPAN("cbm.run");
  Timer timer;
  QGenResult result;
  InstanceVerifier verifier(config);
  FAIRSQG_ASSIGN_OR_RETURN(
      std::vector<EvaluatedPtr> all,
      VerifyAllInstances(config, &verifier, &result.stats));
  std::vector<EvaluatedPtr> feasible = FeasibleOnly(all);
  if (feasible.empty()) {
    result.stats.total_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Anchor points: the single-objective optima.
  auto by_diversity = [](const EvaluatedPtr& a, const EvaluatedPtr& b) {
    return a->obj.diversity < b->obj.diversity;
  };
  auto by_coverage = [](const EvaluatedPtr& a, const EvaluatedPtr& b) {
    return a->obj.coverage < b->obj.coverage;
  };
  EvaluatedPtr max_div =
      *std::max_element(feasible.begin(), feasible.end(), by_diversity);
  EvaluatedPtr max_cov =
      *std::max_element(feasible.begin(), feasible.end(), by_coverage);

  std::vector<EvaluatedPtr> anchors{max_div, max_cov};

  // Bisect the coverage range between the anchors into ε-constraint
  // levels; each level is an independent constrained optimization pass.
  double lo = max_div->obj.coverage;
  double hi = max_cov->obj.coverage;
  if (num_sections > 0 && hi > lo) {
    for (size_t s = 1; s < num_sections; ++s) {
      double theta =
          lo + (hi - lo) * static_cast<double>(s) / static_cast<double>(num_sections);
      const EvaluatedPtr* best = nullptr;
      for (const EvaluatedPtr& e : feasible) {  // One full scan per level.
        if (e->obj.coverage >= theta &&
            (best == nullptr || e->obj.diversity > (*best)->obj.diversity)) {
          best = &e;
        }
      }
      if (best != nullptr) anchors.push_back(*best);
    }
  }

  // Drop duplicates and dominated anchors.
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  result.pareto = ExactParetoSet(std::move(anchors));
  result.stats.SetSequentialVerifySeconds(verifier.verify_seconds());
  result.stats.cache_hits = verifier.cache_hits();
  result.stats.cache_misses = verifier.cache_misses();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairsqg
