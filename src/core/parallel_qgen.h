#ifndef FAIRSQG_CORE_PARALLEL_QGEN_H_
#define FAIRSQG_CORE_PARALLEL_QGEN_H_

#include <cstddef>

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief ParallelQGen — the paper's future-work topic ("parallel query
/// generation over large graphs with diversity and group fairness",
/// Section VI), realized as a data-parallel EnumQGen.
///
/// The instance space I(Q) is *streamed* in chunks from the shared
/// InstantiationEnumerator — never materialized, so there is no cap on
/// |I(Q)| (config.max_verifications bounds unbounded spaces). Workers on a
/// work-stealing ThreadPool pull chunks and verify them with a private
/// InstanceVerifier (the graph is shared read-only) into their private
/// shard of a ConcurrentParetoArchive; chunk self-scheduling balances the
/// heterogeneous verification costs. The shards are then merged through
/// procedure Update. Merging is sound: each shard box-dominates everything
/// its worker saw, and Update preserves box dominance transitively, so the
/// merged archive is an ε-Pareto set of the full space — the same
/// guarantee as EnumQGen.
class ParallelQGen {
 public:
  /// `num_threads` 0 selects the hardware concurrency.
  static Result<QGenResult> Run(const QGenConfig& config, size_t num_threads = 0);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_PARALLEL_QGEN_H_
