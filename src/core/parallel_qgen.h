#ifndef FAIRSQG_CORE_PARALLEL_QGEN_H_
#define FAIRSQG_CORE_PARALLEL_QGEN_H_

#include <cstddef>

#include "common/result.h"
#include "core/config.h"
#include "core/qgen_result.h"

namespace fairsqg {

/// \brief ParallelQGen — the paper's future-work topic ("parallel query
/// generation over large graphs with diversity and group fairness",
/// Section VI), realized as a data-parallel EnumQGen.
///
/// The instance space I(Q) is partitioned round-robin across worker
/// threads; each worker verifies its share with a private InstanceVerifier
/// (the graph is shared read-only) into a private ε-Pareto archive. The
/// per-worker archives are then merged through procedure Update. Merging is
/// sound: each worker's archive box-dominates everything the worker saw,
/// and Update preserves box dominance transitively, so the merged archive
/// is an ε-Pareto set of the full space — the same guarantee as EnumQGen.
class ParallelQGen {
 public:
  /// `num_threads` 0 selects the hardware concurrency.
  static Result<QGenResult> Run(const QGenConfig& config, size_t num_threads = 0);
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_PARALLEL_QGEN_H_
