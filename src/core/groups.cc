#include "core/groups.h"

#include <algorithm>
#include <map>

namespace fairsqg {

Result<GroupSet> GroupSet::Create(size_t num_graph_nodes,
                                  std::vector<NodeSet> groups,
                                  std::vector<size_t> constraints) {
  if (groups.size() != constraints.size()) {
    return Status::InvalidArgument("groups/constraints size mismatch");
  }
  GroupSet out;
  out.node_group_.assign(num_graph_nodes, kNoGroup);
  for (size_t i = 0; i < groups.size(); ++i) {
    NodeSet& g = groups[i];
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    if (constraints[i] > g.size()) {
      return Status::InvalidArgument("constraint exceeds group size for group " +
                                     std::to_string(i));
    }
    for (NodeId v : g) {
      if (v >= num_graph_nodes) {
        return Status::InvalidArgument("group node out of range");
      }
      if (out.node_group_[v] != kNoGroup) {
        return Status::InvalidArgument("groups must be disjoint; node " +
                                       std::to_string(v) + " repeated");
      }
      out.node_group_[v] = static_cast<uint32_t>(i);
    }
    out.total_constraint_ += constraints[i];
    out.names_.push_back("P" + std::to_string(i));
  }
  out.groups_ = std::move(groups);
  out.constraints_ = std::move(constraints);
  return out;
}

Result<GroupSet> GroupSet::FromCategoricalAttr(const Graph& g, LabelId label,
                                               AttrId attr, size_t num_groups,
                                               size_t coverage_per_group) {
  std::map<std::string, NodeSet> buckets;
  for (NodeId v : g.NodesWithLabel(label)) {
    const AttrValue* value = g.GetAttr(v, attr);
    if (value != nullptr && value->is_string()) {
      buckets[value->as_string()].push_back(v);
    }
  }
  if (buckets.size() < num_groups) {
    return Status::FailedPrecondition(
        "attribute has only " + std::to_string(buckets.size()) +
        " distinct values, need " + std::to_string(num_groups));
  }
  // Keep the num_groups most populous values (ties broken by name).
  std::vector<std::pair<std::string, NodeSet>> sorted(buckets.begin(),
                                                      buckets.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.size() != b.second.size()) {
      return a.second.size() > b.second.size();
    }
    return a.first < b.first;
  });
  sorted.resize(num_groups);

  std::vector<NodeSet> groups;
  std::vector<size_t> constraints;
  std::vector<std::string> names;
  for (auto& [name, nodes] : sorted) {
    if (coverage_per_group > nodes.size()) {
      return Status::FailedPrecondition("group '" + name + "' has " +
                                        std::to_string(nodes.size()) +
                                        " nodes, below coverage target " +
                                        std::to_string(coverage_per_group));
    }
    groups.push_back(std::move(nodes));
    constraints.push_back(coverage_per_group);
    names.push_back(name);
  }
  FAIRSQG_ASSIGN_OR_RETURN(
      GroupSet out, Create(g.num_nodes(), std::move(groups), std::move(constraints)));
  for (size_t i = 0; i < names.size(); ++i) out.set_name(i, names[i]);
  return out;
}

std::vector<size_t> GroupSet::CoverageCounts(const NodeSet& matches) const {
  std::vector<size_t> counts(groups_.size(), 0);
  for (NodeId v : matches) {
    uint32_t gid = group_of(v);
    if (gid != kNoGroup) ++counts[gid];
  }
  return counts;
}

}  // namespace fairsqg
