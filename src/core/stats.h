#ifndef FAIRSQG_CORE_STATS_H_
#define FAIRSQG_CORE_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fairsqg {

/// Counters reported by every query-generation algorithm; the pruning
/// percentages of Section V (RfQGen ~40%, BiQGen ~60% fewer instances than
/// EnumQGen) are computed from `verified` across algorithms.
///
/// Timing is reported on two axes so that parallel and sequential runs
/// stay comparable: `verify_cpu_seconds` sums verifier time across all
/// workers (total compute spent), `verify_wall_seconds` takes the maximum
/// over workers (the verification critical path). Sequential runs report
/// the same value on both. Per-worker time is measured as wall time inside
/// the verifier, so on a host oversubscribed with more workers than cores
/// the CPU axis over-counts by the timeslicing factor.
struct GenStats {
  size_t generated = 0;  ///< Instances spawned or enumerated.
  size_t verified = 0;   ///< Instances actually matched and measured.
  size_t pruned = 0;     ///< Spawned instances skipped by pruning (all kinds).
  size_t feasible = 0;   ///< Verified instances meeting all constraints.

  // Pruning attribution (subsets of `pruned` / separate events).
  size_t pruned_sandwich = 0;  ///< Instances skipped by SPrune (Lemma 3).
  size_t pruned_subtree = 0;   ///< Subtree cuts by the archive-cover check.

  // Parallel-execution counters (zero for sequential runs).
  size_t enqueued = 0;  ///< Work items dispatched to the thread pool.
  size_t stolen = 0;    ///< Pool tasks executed by a stealing worker.

  // Match-set cache counters (zero when no cache is configured). Folded
  // from per-verifier counts so parallel runs report deterministically.
  size_t cache_hits = 0;    ///< Verifications answered from the cache.
  size_t cache_misses = 0;  ///< Lookups that fell through to the matcher.

  // Degraded-run counters (RunContext cancellation / deadlines, DESIGN.md
  // §11). A truncated run returns the best-so-far archive with
  // `deadline_exceeded` set instead of crashing or hanging.
  bool deadline_exceeded = false;  ///< Run stopped early (deadline/cancel).
  size_t aborted_matches = 0;      ///< Matcher searches cut off mid-flight.
  size_t timed_out_instances = 0;  ///< Instances whose verification aborted.

  // Literal-sweep batch verification (QGenConfig::use_sweep_verify,
  // DESIGN.md §12). Folded from per-verifier counts.
  size_t sweep_chains = 0;     ///< Range-variable chains verified in one pass.
  size_t sweep_instances = 0;  ///< Member instances derived from a sweep.
  size_t sweep_fallbacks = 0;  ///< Sweeps aborted mid-chain (fell back).

  double total_seconds = 0;
  double verify_cpu_seconds = 0;   ///< Verifier time summed across workers.
  double verify_wall_seconds = 0;  ///< Max per-worker verifier time.
  /// Per-worker verifier seconds (parallel runs only; empty otherwise).
  std::vector<double> per_worker_verify_seconds;

  /// Records a sequential verifier's time on both timing axes.
  void SetSequentialVerifySeconds(double seconds) {
    verify_cpu_seconds = seconds;
    verify_wall_seconds = seconds;
  }

  std::string ToString() const {
    std::string s = "generated=" + std::to_string(generated) +
                    " verified=" + std::to_string(verified) +
                    " pruned=" + std::to_string(pruned) +
                    " feasible=" + std::to_string(feasible) +
                    " total_s=" + std::to_string(total_seconds) +
                    " verify_cpu_s=" + std::to_string(verify_cpu_seconds) +
                    " verify_wall_s=" + std::to_string(verify_wall_seconds);
    if (pruned_sandwich > 0 || pruned_subtree > 0) {
      s += " pruned_sandwich=" + std::to_string(pruned_sandwich) +
           " pruned_subtree=" + std::to_string(pruned_subtree);
    }
    if (enqueued > 0) {
      s += " enqueued=" + std::to_string(enqueued) +
           " stolen=" + std::to_string(stolen) +
           " workers=" + std::to_string(per_worker_verify_seconds.size());
    }
    if (cache_hits > 0 || cache_misses > 0) {
      s += " cache_hits=" + std::to_string(cache_hits) +
           " cache_misses=" + std::to_string(cache_misses);
    }
    if (sweep_chains > 0 || sweep_instances > 0 || sweep_fallbacks > 0) {
      s += " sweep_chains=" + std::to_string(sweep_chains) +
           " sweep_instances=" + std::to_string(sweep_instances) +
           " sweep_fallbacks=" + std::to_string(sweep_fallbacks);
    }
    if (deadline_exceeded || aborted_matches > 0 || timed_out_instances > 0) {
      s += std::string(" deadline_exceeded=") +
           (deadline_exceeded ? "true" : "false") +
           " aborted_matches=" + std::to_string(aborted_matches) +
           " timed_out_instances=" + std::to_string(timed_out_instances);
    }
    return s;
  }
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_STATS_H_
