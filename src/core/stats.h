#ifndef FAIRSQG_CORE_STATS_H_
#define FAIRSQG_CORE_STATS_H_

#include <cstddef>
#include <string>

namespace fairsqg {

/// Counters reported by every query-generation algorithm; the pruning
/// percentages of Section V (RfQGen ~40%, BiQGen ~60% fewer instances than
/// EnumQGen) are computed from `verified` across algorithms.
struct GenStats {
  size_t generated = 0;  ///< Instances spawned or enumerated.
  size_t verified = 0;   ///< Instances actually matched and measured.
  size_t pruned = 0;     ///< Spawned instances skipped by pruning.
  size_t feasible = 0;   ///< Verified instances meeting all constraints.
  double total_seconds = 0;
  double verify_seconds = 0;

  std::string ToString() const {
    return "generated=" + std::to_string(generated) +
           " verified=" + std::to_string(verified) +
           " pruned=" + std::to_string(pruned) +
           " feasible=" + std::to_string(feasible) +
           " total_s=" + std::to_string(total_seconds) +
           " verify_s=" + std::to_string(verify_seconds);
  }
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_STATS_H_
