#ifndef FAIRSQG_CORE_EVALUATED_H_
#define FAIRSQG_CORE_EVALUATED_H_

#include <memory>
#include <vector>

#include "core/dominance.h"
#include "graph/types.h"
#include "query/instantiation.h"

namespace fairsqg {

/// \brief A verified query instance: its instantiation, match set, measure
/// coordinates, and feasibility — the lattice node payload of Section IV.
struct EvaluatedInstance {
  Instantiation inst;
  NodeSet matches;               // q(G), sorted.
  Objectives obj;                // (δ(q), f(q)).
  // Diversity decomposition, kept so children can update δ incrementally
  // (incVerify maintains the coordinates, Section IV-A): δ =
  // (1-λ)·relevance_sum + (2λ/(|V_uo|-1))·pair_sum.
  double relevance_sum = 0;
  double pair_sum = 0;
  bool feasible = false;         // |q(G) ∩ P_i| >= c_i for all i.
  std::vector<size_t> group_coverage;
  uint64_t verify_seq = 0;       // Verification order, for anytime traces.
};

using EvaluatedPtr = std::shared_ptr<const EvaluatedInstance>;

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_EVALUATED_H_
