#include "core/concurrent_archive.h"

#include "common/logging.h"

namespace fairsqg {

ConcurrentParetoArchive::ConcurrentParetoArchive(double epsilon,
                                                 size_t num_shards)
    : epsilon_(epsilon) {
  FAIRSQG_CHECK(num_shards > 0) << "need at least one shard";
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) shards_.emplace_back(epsilon);
}

ParetoArchive ConcurrentParetoArchive::Merged() const {
  ParetoArchive merged(epsilon_);
  for (const ParetoArchive& shard : shards_) {
    for (const ParetoArchive::Entry& e : shard.entries()) {
      merged.Update(e.instance);
    }
  }
  return merged;
}

std::vector<EvaluatedPtr> ConcurrentParetoArchive::MergedSortedEntries() const {
  return Merged().SortedEntries();
}

}  // namespace fairsqg
