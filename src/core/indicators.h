#ifndef FAIRSQG_CORE_INDICATORS_H_
#define FAIRSQG_CORE_INDICATORS_H_

#include <vector>

#include "core/evaluated.h"

namespace fairsqg {

/// Result of the normalized ε-indicator I_ε (Section V, Exp-1).
struct EpsilonIndicatorResult {
  /// I_ε = clamp(1 - ε_m/ε, 0, 1); 1 for an exact Pareto set.
  double indicator = 0;
  /// The minimum ε_m such that `solution` is an ε_m-Pareto set of the
  /// reference instances (Zitzler et al.'s additive-free multiplicative
  /// ε-indicator on the 1-shifted coordinates, matching the library's
  /// ε-dominance).
  double eps_m = 0;
};

/// \brief Computes I_ε of `solution` against the full feasible reference
/// set (ground truth from enumeration). An empty solution with a non-empty
/// reference scores 0; an empty reference scores 1.
EpsilonIndicatorResult EpsilonIndicator(const std::vector<EvaluatedPtr>& solution,
                                        const std::vector<EvaluatedPtr>& reference,
                                        double configured_epsilon);

/// \brief R-indicator I_R (Section V): preference-weighted best objectives,
///   I_R = (1 - λ_R) * δ*/δ_max + λ_R * f*/f_max,
/// where δ* (f*) is the best diversity (coverage) in `solution` and
/// δ_max (f_max) normalize against the best over all feasible instances.
/// λ_R near 1 rewards coverage, near 0 rewards diversity.
///
/// (The paper's formula divides the weighted sum by 2, which caps I_R at
/// 0.5 yet the paper reports values >= 0.63; we drop the division —
/// DESIGN.md §4.)
double RIndicator(const std::vector<EvaluatedPtr>& solution, double lambda_r,
                  double max_diversity, double max_coverage);

/// Max diversity / coverage over a set (normalizers for RIndicator).
Objectives MaxObjectives(const std::vector<EvaluatedPtr>& instances);

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_INDICATORS_H_
