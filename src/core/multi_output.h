#ifndef FAIRSQG_CORE_MULTI_OUTPUT_H_
#define FAIRSQG_CORE_MULTI_OUTPUT_H_

#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/evaluated.h"
#include "core/qgen_result.h"
#include "matching/subgraph_matcher.h"

namespace fairsqg {

/// \brief Multiple-output-node query generation — the paper's future-work
/// extension (Section VI: "extend our work to multiple output nodes").
///
/// An instance's answer is the *union* of the match sets of all designated
/// output nodes, q(U_o, G) = ∪_{u ∈ U_o} q(u, G); diversity and coverage
/// are evaluated over that union. All designated outputs must carry the
/// same label (the measures' fingerprints and groups are per-label) and
/// every output must lie in the component of the template's primary output
/// node under the full edge set.
///
/// Lemma 2 lifts directly: refinement shrinks every per-node match set,
/// hence their union, so diversity decreases, feasibility is monotonically
/// lost, and the ε-Pareto machinery is unchanged.
class MultiOutputVerifier {
 public:
  /// `outputs` must be non-empty, unique, all with the primary output
  /// node's label.
  static Result<MultiOutputVerifier> Create(const QGenConfig& config,
                                            std::vector<QNodeId> outputs);

  /// Verifies one instantiation under union semantics.
  EvaluatedPtr Verify(const Instantiation& inst);

  const std::vector<QNodeId>& outputs() const { return outputs_; }
  uint64_t num_verified() const { return verify_seq_; }

 private:
  MultiOutputVerifier(const QGenConfig& config, std::vector<QNodeId> outputs);

  const QGenConfig* config_;
  std::vector<QNodeId> outputs_;
  SubgraphMatcher matcher_;
  DiversityEvaluator diversity_;
  CoverageEvaluator coverage_;
  uint64_t verify_seq_ = 0;
};

/// \brief EnumQGen under multi-output union semantics: enumerate I(Q),
/// verify with MultiOutputVerifier, archive with procedure Update.
Result<QGenResult> MultiOutputEnumQGen(const QGenConfig& config,
                                       std::vector<QNodeId> outputs);

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_MULTI_OUTPUT_H_
