#include "core/sweep_verifier.h"

#include <utility>

#include "common/logging.h"
#include "core/match_cache.h"
#include "obs/trace.h"

namespace fairsqg {

namespace {

/// Parked member sets beyond this many evict oldest-first. Chains are
/// normally served promptly (Enum's odometer visits them consecutively;
/// Rf/Bi spawn them as lattice children), so the cap only bounds leakage
/// from abandoned subtrees.
constexpr size_t kStoreCap = 4096;

}  // namespace

SweepVerifier::SweepVerifier(const QGenConfig& config) : config_(&config) {}

bool SweepVerifier::Serve(const Instantiation& inst, NodeSet* matches) {
  auto it = store_.find(inst);
  if (it == store_.end()) return false;
  *matches = std::move(it->second);
  store_.erase(it);  // The fifo_ entry goes stale; eviction skips it.
  return true;
}

int32_t SweepVerifier::CriticalLevel(
    NodeId w, const LiteralTemplate& lit,
    const std::vector<AttrValue>& values) const {
  const AttrValue* a = config_->graph->GetAttr(w, lit.attr);
  if (a == nullptr) return kWildcardBinding;
  int32_t lo = kWildcardBinding;  // P(-1) holds: the wildcard admits all.
  int32_t hi = static_cast<int32_t>(values.size());
  while (hi - lo > 1) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (a->Compare(lit.op, values[mid])) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void SweepVerifier::PublishMember(const Instantiation& member, NodeSet set) {
  if (config_->match_cache != nullptr) {
    // Mirror into the shared cache under the member's canonical key — the
    // cross-worker sharing path, and exactly what the per-instance miss
    // path would have inserted.
    QueryInstance mq =
        QueryInstance::Materialize(*config_->tmpl, *config_->domains, member);
    config_->match_cache->Insert(MatchSetCache::KeyFor(mq), set);
  }
  while (store_.size() >= kStoreCap && !fifo_.empty()) {
    auto it = store_.find(fifo_.front());
    fifo_.pop_front();
    if (it != store_.end()) store_.erase(it);
  }
  if (store_.emplace(member, std::move(set)).second) fifo_.push_back(member);
}

SweepVerifier::Outcome SweepVerifier::SweepChain(
    const QueryInstance& q, RangeVarId var, const CandidateSpace& candidates,
    const NodeSet* output_restrict, SubgraphMatcher* matcher,
    const FeasibilityGate& gate, NodeSet* head_matches) {
  FAIRSQG_TRACE_SPAN_FULL("sweep_chain");
  const QueryTemplate& tmpl = *config_->tmpl;
  const LiteralTemplate& lit = tmpl.literals()[tmpl.literal_of_var(var)];
  const std::vector<AttrValue>& values = config_->domains->values(var);
  const int32_t m = static_cast<int32_t>(values.size());
  const int32_t head_level = q.instantiation().range_binding(var);
  FAIRSQG_DCHECK(head_level < m - 1);
  RunContext* ctx = config_->run_context;

  if (!q.is_active(lit.node)) {
    // The swept node lies outside u_o's component, and activity depends
    // only on edge bindings (constant along the chain): every member
    // materializes to the same active structure, so the head's match set
    // is every member's match set. One search serves the whole chain.
    MatchResult res =
        matcher->MatchOutputBounded(q, candidates, ctx, output_restrict);
    if (res.outcome == MatchOutcome::kAborted) {
      FAIRSQG_COUNT("fairsqg.sweep.fallbacks");
      ++fallbacks_;
      return Outcome::kAborted;
    }
    if (gate && !gate(res.matches)) {
      *head_matches = std::move(res.matches);
      return Outcome::kHeadOnly;
    }
    Instantiation member = q.instantiation();
    for (int32_t k = head_level + 1; k < m; ++k) {
      member.set_range_binding(var, k);
      PublishMember(member, res.matches);
    }
    FAIRSQG_COUNT("fairsqg.sweep.chains");
    FAIRSQG_COUNT_N("fairsqg.sweep.instances",
                    static_cast<uint64_t>(m - 1 - head_level));
    ++chains_;
    instances_ += static_cast<uint64_t>(m - 1 - head_level);
    *head_matches = std::move(res.matches);
    return Outcome::kSwept;
  }

  if (level_.size() < config_->graph->num_nodes()) {
    level_.resize(config_->graph->num_nodes(), 0);
  }
  for (NodeId w : candidates.of(lit.node)) {
    level_[w] = CriticalLevel(w, lit, values);
  }
  SweepSpec spec;
  spec.node = lit.node;
  spec.level = level_.data();
  spec.min_level = head_level;
  spec.num_levels = m;

  SweepMatchResult head = matcher->MatchOutputWithWitness(q, candidates, spec,
                                                          ctx, output_restrict);
  if (head.outcome == MatchOutcome::kAborted) {
    FAIRSQG_COUNT("fairsqg.sweep.fallbacks");
    ++fallbacks_;
    return Outcome::kAborted;
  }
  if (gate && !gate(head.matches)) {
    *head_matches = std::move(head.matches);
    return Outcome::kHeadOnly;
  }
  if (matcher->ResolveSweepThresholds(q, candidates, spec, head.matches, ctx,
                                      &head.thresholds) ==
      MatchOutcome::kAborted) {
    FAIRSQG_COUNT("fairsqg.sweep.fallbacks");
    ++fallbacks_;
    return Outcome::kAborted;  // Partial thresholds: publish nothing.
  }

  // Member k's match set is the threshold prefix {v : t(v) >= k}, built in
  // ascending node order (head.matches is sorted, so members are too —
  // byte-identical to what the per-instance matcher would have returned).
  Instantiation member = q.instantiation();
  for (int32_t k = head_level + 1; k < m; ++k) {
    member.set_range_binding(var, k);
    NodeSet set;
    for (size_t i = 0; i < head.matches.size(); ++i) {
      if (head.thresholds[i] >= k) set.push_back(head.matches[i]);
    }
    PublishMember(member, std::move(set));
  }
  FAIRSQG_COUNT("fairsqg.sweep.chains");
  FAIRSQG_COUNT_N("fairsqg.sweep.instances",
                  static_cast<uint64_t>(m - 1 - head_level));
  ++chains_;
  instances_ += static_cast<uint64_t>(m - 1 - head_level);
  *head_matches = std::move(head.matches);
  return Outcome::kSwept;
}

}  // namespace fairsqg
