#ifndef FAIRSQG_CORE_TEMPLATE_REFINER_H_
#define FAIRSQG_CORE_TEMPLATE_REFINER_H_

#include "graph/graph.h"
#include "query/refinement.h"

namespace fairsqg {

/// \brief Spawn's template refinement (Section IV-A).
///
/// Given a verified instance's match set q(G), considers the subgraph
/// `G_q^d` induced by the d-hop neighbours of q(G) (d = template diameter)
/// and derives hints that shrink the spawn frontier:
///  1. each range variable on a literal `u.A op x` may only take values of
///     A that actually occur on nodes of u's label inside G_q^d — other
///     thresholds cannot change the match set differently;
///  2. an edge variable is pinned to 0 when G_q^d contains no edge with the
///     required label between nodes of the endpoint labels.
RefinementHints ComputeRefinementHints(const Graph& g, const QueryTemplate& tmpl,
                                       const VariableDomains& domains,
                                       const NodeSet& matches);

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_TEMPLATE_REFINER_H_
