#ifndef FAIRSQG_CORE_CONCURRENT_ARCHIVE_H_
#define FAIRSQG_CORE_CONCURRENT_ARCHIVE_H_

#include <cstddef>
#include <vector>

#include "core/pareto_archive.h"

namespace fairsqg {

/// \brief Sharded ε-Pareto archive for data-parallel generation.
///
/// Each worker owns one ParetoArchive shard and updates it without any
/// synchronization (shards are thread-private by contract — see DESIGN.md
/// §9). After the workers quiesce, `Merged()` folds every shard into a
/// single archive through procedure Update.
///
/// Soundness of the ε-box merge: each shard box-dominates everything its
/// worker verified, and Update preserves box dominance transitively —
/// whenever a member is evicted, the evictor's box dominates-or-equals the
/// evictee's box. Hence the merged archive box-dominates the union of all
/// verified instances and remains an ε-Pareto set of the full space, the
/// same guarantee a single sequential archive provides.
class ConcurrentParetoArchive {
 public:
  ConcurrentParetoArchive(double epsilon, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  double epsilon() const { return epsilon_; }

  /// The shard a worker updates; callers must ensure one thread per shard.
  ParetoArchive& shard(size_t worker) { return shards_[worker]; }
  const ParetoArchive& shard(size_t worker) const { return shards_[worker]; }

  /// Folds all shards into one archive (call only after workers quiesce).
  ParetoArchive Merged() const;

  /// Convenience: `Merged().SortedEntries()`.
  std::vector<EvaluatedPtr> MergedSortedEntries() const;

 private:
  double epsilon_;
  std::vector<ParetoArchive> shards_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_CONCURRENT_ARCHIVE_H_
