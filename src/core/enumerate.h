#ifndef FAIRSQG_CORE_ENUMERATE_H_
#define FAIRSQG_CORE_ENUMERATE_H_

#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/evaluated.h"
#include "core/stats.h"
#include "core/verifier.h"

namespace fairsqg {

/// \brief Odometer over the full instantiation space I(Q):
/// every range variable ranges over {wildcard, 0, ..., |dom|-1} and every
/// edge variable over {0, 1}. The first instantiation produced is the most
/// relaxed one.
class InstantiationEnumerator {
 public:
  InstantiationEnumerator(const QueryTemplate& tmpl,
                          const VariableDomains& domains);

  /// Advances to the next instantiation; false when exhausted.
  bool Next(Instantiation* out);

  /// |I(Q)| = prod (|dom|+1) * 2^|X_E| (saturating).
  size_t SpaceSize() const;

  void Reset();

 private:
  const QueryTemplate* tmpl_;
  const VariableDomains* domains_;
  Instantiation current_;
  bool started_ = false;
  bool exhausted_ = false;
};

/// \brief Verifies the entire instance space (the Δ2p algorithm of Theorem
/// 1 without the archive step). Returns every evaluated instance —
/// infeasible ones included — in enumeration order.
///
/// Fails with FailedPrecondition when |I(Q)| exceeds `cap` (guard against
/// accidental exponential blow-ups); cap 0 means 1e6.
Result<std::vector<EvaluatedPtr>> VerifyAllInstances(const QGenConfig& config,
                                                     InstanceVerifier* verifier,
                                                     GenStats* stats,
                                                     size_t cap = 0);

/// Convenience: feasible subset of `all`.
std::vector<EvaluatedPtr> FeasibleOnly(const std::vector<EvaluatedPtr>& all);

/// Adds a verifier's degraded-run counters (aborted matcher searches,
/// instances dropped on abort) and literal-sweep counters (chains swept,
/// members derived, fallbacks) into `stats`. Every generator calls this
/// once per verifier before returning.
void FoldVerifierStats(const InstanceVerifier& verifier, GenStats* stats);

/// Maps a truncated run onto the configured expiry policy: OK under
/// ExpiryPolicy::kPartial (caller returns the best-so-far archive),
/// Status::DeadlineExceeded under kFail. No-op when the run completed or
/// no RunContext is configured.
Status ApplyExpiryPolicy(const QGenConfig& config, const GenStats& stats);

/// Exact Pareto set of `instances` by sort-and-sweep (Kung et al.'s
/// algorithm specialised to two objectives): sort by descending diversity,
/// keep instances whose coverage strictly exceeds the running maximum.
/// Duplicate coordinates keep one representative.
std::vector<EvaluatedPtr> ExactParetoSet(std::vector<EvaluatedPtr> instances);

}  // namespace fairsqg

#endif  // FAIRSQG_CORE_ENUMERATE_H_
