#include "core/fairness_rules.h"

#include <algorithm>
#include <cmath>

namespace fairsqg {

namespace {

Result<GroupSet> Rebuild(size_t num_graph_nodes, const GroupSet& groups,
                         std::vector<size_t> constraints) {
  std::vector<NodeSet> sets;
  sets.reserve(groups.num_groups());
  for (size_t i = 0; i < groups.num_groups(); ++i) sets.push_back(groups.group(i));
  FAIRSQG_ASSIGN_OR_RETURN(
      GroupSet out,
      GroupSet::Create(num_graph_nodes, std::move(sets), std::move(constraints)));
  for (size_t i = 0; i < groups.num_groups(); ++i) out.set_name(i, groups.name(i));
  return out;
}

}  // namespace

Result<GroupSet> EqualOpportunityConstraints(size_t num_graph_nodes,
                                             const GroupSet& groups,
                                             size_t total_coverage) {
  size_t m = groups.num_groups();
  if (m == 0) return Status::InvalidArgument("need at least one group");
  std::vector<size_t> constraints(m, total_coverage / m);
  size_t remainder = total_coverage % m;
  for (size_t i = 0; i < remainder; ++i) ++constraints[i];
  for (size_t i = 0; i < m; ++i) {
    if (constraints[i] > groups.group(i).size()) {
      return Status::FailedPrecondition(
          "group '" + groups.name(i) + "' (" +
          std::to_string(groups.group(i).size()) +
          " nodes) cannot meet equal-opportunity target " +
          std::to_string(constraints[i]));
    }
  }
  return Rebuild(num_graph_nodes, groups, std::move(constraints));
}

Result<GroupSet> DisparateImpactConstraints(size_t num_graph_nodes,
                                            const GroupSet& groups,
                                            size_t total_coverage, double ratio) {
  size_t m = groups.num_groups();
  if (m == 0) return Status::InvalidArgument("need at least one group");
  if (ratio <= 0 || ratio > 1) {
    return Status::InvalidArgument("ratio must be in (0, 1]");
  }
  // Reference majority: the largest group.
  size_t major = 0;
  for (size_t i = 1; i < m; ++i) {
    if (groups.group(i).size() > groups.group(major).size()) major = i;
  }
  // Largest feasible majority target under the budget and group sizes.
  auto minority_target = [&](size_t c_major) {
    return static_cast<size_t>(
        std::ceil(ratio * static_cast<double>(c_major) - 1e-9));
  };
  size_t best = 0;
  for (size_t c = 1; c <= groups.group(major).size(); ++c) {
    size_t total = c;
    bool fits = true;
    for (size_t i = 0; i < m; ++i) {
      if (i == major) continue;
      size_t target = minority_target(c);
      if (target > groups.group(i).size()) {
        fits = false;
        break;
      }
      total += target;
    }
    if (!fits || total > total_coverage) break;
    best = c;
  }
  if (best == 0) {
    return Status::FailedPrecondition(
        "no disparate-impact constraint assignment fits the budget");
  }
  std::vector<size_t> constraints(m, minority_target(best));
  constraints[major] = best;
  return Rebuild(num_graph_nodes, groups, std::move(constraints));
}

bool SatisfiesDisparateImpact(const std::vector<size_t>& coverage_counts,
                              double ratio) {
  size_t max_count = 0;
  for (size_t c : coverage_counts) max_count = std::max(max_count, c);
  if (max_count == 0) return true;
  for (size_t c : coverage_counts) {
    if (static_cast<double>(c) + 1e-9 <
        ratio * static_cast<double>(max_count)) {
      return false;
    }
  }
  return true;
}

}  // namespace fairsqg
