#ifndef FAIRSQG_OBS_RUN_REPORT_H_
#define FAIRSQG_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairsqg {
struct GenStats;  // core/stats.h (header-only; included by run_report.cc).
}  // namespace fairsqg

namespace fairsqg::obs {

/// \brief Machine-readable summary of one generation run.
///
/// The single schema every exporter speaks: the CLI's --metrics-json, the
/// bench harness rows, and tools/check_bench_regression.py all produce or
/// consume this shape. Top-level keys:
///
///   kind            "fairsqg.run_report" (constant discriminator)
///   schema_version  RunReport::kSchemaVersion; consumers hard-fail on
///                   mismatch rather than misread renamed fields
///   algorithm       generator name, when set
///   stats           every GenStats counter, flat (see StatsJson)
///   metrics         {counters, gauges, histograms} from a MetricsSnapshot
///   trace           {detail, dropped, spans:[...]} from a Tracer snapshot
///
/// `stats` is always present once SetGenStats is called; `metrics` and
/// `trace` appear only when attached, so a bench row embedding just the
/// deterministic GenStats view stays byte-stable across repeats.
class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kKind = "fairsqg.run_report";

  RunReport();

  void SetAlgorithm(const std::string& name);
  void SetGenStats(const GenStats& stats);
  /// Attaches an arbitrary top-level field (scenario parameters, repeat
  /// counts — whatever the producer wants downstream tools to see).
  void SetField(const std::string& key, Json value);
  void AttachMetrics(const MetricsSnapshot& snapshot);
  void AttachTrace(const std::vector<SpanRecord>& spans, TraceDetail detail,
                   uint64_t dropped);

  const Json& json() const { return root_; }
  std::string Dump(int indent = 2) const { return root_.Dump(indent); }
  Status WriteFile(const std::string& path) const;

  /// Flat JSON object with every GenStats counter; shared by SetGenStats
  /// and the bench harness's per-row embedding.
  static Json StatsJson(const GenStats& stats);

 private:
  Json root_;
};

/// chrome://tracing "trace event" array ("X" duration events, "i"
/// instants; microsecond timestamps) for loading a span dump into a trace
/// viewer. Spans are emitted sorted by start time.
Json ChromeTraceJson(const std::vector<SpanRecord>& spans);
Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path);

}  // namespace fairsqg::obs

#endif  // FAIRSQG_OBS_RUN_REPORT_H_
