#ifndef FAIRSQG_OBS_JSON_H_
#define FAIRSQG_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fairsqg::obs {

/// \brief Minimal JSON value used by the observability exporters (RunReport,
/// chrome-trace dump, bench harness) and by the tests that validate their
/// output. Self-contained on purpose: the repo takes no third-party JSON
/// dependency, and the golden run-report test needs a real parser rather
/// than string matching.
///
/// Objects preserve key order via a sorted map (std::map), which makes every
/// dump deterministic for a given value — a property the golden-file test
/// and the bench baselines rely on. Numbers are stored as double; exact for
/// all counters below 2^53, which comfortably covers every counter the
/// system emits.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() : type_(Type::kNull) {}
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double d) : type_(Type::kNumber), number_(d) {}
  explicit Json(int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  explicit Json(uint64_t u)
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  explicit Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }

  /// Object access. Set overwrites; Find returns nullptr when absent (or
  /// when this value is not an object).
  void Set(const std::string& key, Json value) {
    object_[key] = std::move(value);
  }
  const Json* Find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, Json>& items() const { return object_; }

  /// Array access.
  void Push(Json value) { array_.push_back(std::move(value)); }
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : object_.size();
  }
  const Json& at(size_t i) const { return array_[i]; }
  const std::vector<Json>& elements() const { return array_; }

  /// Serializes with `indent` spaces per level (0 = compact single line).
  std::string Dump(int indent = 2) const;

  /// Parses `text` into `*out`. On failure returns false and describes the
  /// first error (with byte offset) in `*error` when non-null.
  static bool Parse(std::string_view text, Json* out, std::string* error);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::map<std::string, Json> object_;
  std::vector<Json> array_;
};

}  // namespace fairsqg::obs

#endif  // FAIRSQG_OBS_JSON_H_
