#include "obs/trace.h"

#include "common/thread_pool.h"
#include "common/timer.h"

namespace fairsqg::obs {

namespace {

thread_local uint64_t tls_current_parent = 0;

}  // namespace

const char* TraceDetailName(TraceDetail detail) {
  switch (detail) {
    case TraceDetail::kOff:
      return "off";
    case TraceDetail::kPhase:
      return "phase";
    case TraceDetail::kFull:
      return "full";
  }
  return "off";
}

bool ParseTraceDetail(std::string_view text, TraceDetail* out) {
  if (text == "off") {
    *out = TraceDetail::kOff;
  } else if (text == "phase") {
    *out = TraceDetail::kPhase;
  } else if (text == "full") {
    *out = TraceDetail::kFull;
  } else {
    return false;
  }
  return true;
}

Tracer::Tracer() : ring_(kDefaultCapacity) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Never freed.
  return *tracer;
}

void Tracer::Enable(TraceDetail detail) {
  // Callers enable between runs, when no spans are in flight; the clear is
  // not synchronized against concurrent writers.
  write_index_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
  detail_.store(static_cast<int>(detail), std::memory_order_relaxed);
}

void Tracer::Record(const SpanRecord& rec) {
  uint64_t idx = write_index_.fetch_add(1, std::memory_order_relaxed);
  ring_[idx % ring_.size()] = rec;
}

uint64_t Tracer::CurrentParent() { return tls_current_parent; }
void Tracer::SetCurrentParent(uint64_t id) { tls_current_parent = id; }

uint32_t Tracer::ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int32_t Tracer::ThisWorkerId() {
  size_t w = ThreadPool::CurrentWorkerId();
  return w == ThreadPool::kNotAWorker ? -1 : static_cast<int32_t>(w);
}

void Tracer::Instant(const char* name, TraceDetail level) {
  if (!ShouldRecord(level)) return;
  SpanRecord rec;
  rec.id = NextId();
  rec.parent = CurrentParent();
  rec.name = name;
  rec.start_ns = MonotonicNanos();
  rec.dur_ns = 0;
  rec.thread = ThisThreadId();
  rec.worker = ThisWorkerId();
  rec.instant = true;
  Record(rec);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  uint64_t total = write_index_.load(std::memory_order_relaxed);
  std::vector<SpanRecord> out;
  if (total == 0) return out;
  size_t cap = ring_.size();
  if (total <= cap) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(total));
  } else {
    out.reserve(cap);
    for (uint64_t i = total - cap; i < total; ++i) {
      out.push_back(ring_[i % cap]);
    }
  }
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t total = write_index_.load(std::memory_order_relaxed);
  return total > ring_.size() ? total - ring_.size() : 0;
}

TraceSpan::TraceSpan(const char* name, TraceDetail level) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.ShouldRecord(level)) return;
  active_ = true;
  name_ = name;
  id_ = tracer.NextId();
  saved_parent_ = Tracer::CurrentParent();
  Tracer::SetCurrentParent(id_);
  start_ns_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  int64_t end_ns = MonotonicNanos();
  Tracer::SetCurrentParent(saved_parent_);
  SpanRecord rec;
  rec.id = id_;
  rec.parent = saved_parent_;
  rec.name = name_;
  rec.start_ns = start_ns_;
  rec.dur_ns = end_ns - start_ns_;
  rec.thread = Tracer::ThisThreadId();
  rec.worker = Tracer::ThisWorkerId();
  Tracer::Global().Record(rec);
}

}  // namespace fairsqg::obs
