#ifndef FAIRSQG_OBS_METRICS_H_
#define FAIRSQG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace fairsqg::obs {

/// Number of exponential (power-of-two) buckets per histogram. Bucket i
/// counts observations v with bit_width(floor(v)) == i, i.e. boundaries
/// 1, 2, 4, ... — wide enough for nanosecond durations up to ~2 years.
inline constexpr size_t kHistogramBuckets = 48;

/// Point-in-time copy of one histogram, produced by Snapshot().
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< Meaningless when count == 0.
  double max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};
};

/// Point-in-time copy of every registered instrument. Maps are sorted by
/// name, so iterating a snapshot (and dumping it to JSON) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief Process-wide registry of named counters, gauges and histograms.
///
/// Designed for hot-path increments from the parallel generators: a counter
/// is an array of cache-line-padded atomic cells and each thread picks a
/// fixed shard, so concurrent `Add` calls from different workers touch
/// different cache lines and never take a lock. Shards are summed only when
/// a snapshot is taken. Instrument lookup by name takes a mutex, but the
/// FAIRSQG_COUNT macros resolve each call site's instrument once into a
/// function-local static, so the map is consulted once per site, not per
/// increment.
///
/// The registry is *write-only* from the algorithms' point of view: nothing
/// in src/core or src/matching ever reads a metric, which is what keeps the
/// instrumentation behaviorally inert (DESIGN.md §13). Tests and exporters
/// read via Snapshot().
class MetricsRegistry {
 public:
  static constexpr size_t kShards = 16;

  class Counter {
   public:
    void Add(uint64_t n = 1) {
      cells_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t Value() const {
      uint64_t total = 0;
      for (const Cell& c : cells_) {
        total += c.value.load(std::memory_order_relaxed);
      }
      return total;
    }
    void Reset() {
      for (Cell& c : cells_) c.value.store(0, std::memory_order_relaxed);
    }

   private:
    struct alignas(64) Cell {
      std::atomic<uint64_t> value{0};
    };
    std::array<Cell, kShards> cells_{};
  };

  class Gauge {
   public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }
    double Value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { Set(0); }

   private:
    std::atomic<double> value_{0};
  };

  /// Lock-free exponential histogram: per-bucket atomic counts plus
  /// atomically-maintained count/sum/min/max. Suitable for low-rate
  /// observations (per-phase durations), not per-instruction hot loops.
  class Histogram {
   public:
    void Observe(double v);
    HistogramSnapshot Snapshot() const;
    void Reset();

   private:
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0};
    std::atomic<double> min_{0};
    std::atomic<double> max_{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  };

  static MetricsRegistry& Global();

  /// Instrument lookup, creating on first use. Returned pointers are stable
  /// for the registry's lifetime (the process) and safe to cache in statics.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Runtime gate consulted by the FAIRSQG_COUNT / FAIRSQG_OBSERVE macros;
  /// a single relaxed atomic load on the hot path. Off by default: a
  /// process that never opts in pays one predictable branch per site.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Merges every instrument's shards into a point-in-time copy.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (names stay registered). Tests use
  /// this to isolate one run's deltas.
  void Reset();

 private:
  /// Stable shard index for the calling thread in [0, kShards).
  static size_t ThisThreadShard();

  mutable std::mutex mutex_;
  // std::map never invalidates element addresses, so &it->second is stable.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::atomic<bool> enabled_{false};
};

}  // namespace fairsqg::obs

#endif  // FAIRSQG_OBS_METRICS_H_
