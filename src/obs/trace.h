#ifndef FAIRSQG_OBS_TRACE_H_
#define FAIRSQG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace fairsqg::obs {

/// How much a run records. kPhase captures the coarse phase boundaries
/// (candidate build, enumeration, verification, archive insertion); kFull
/// additionally records per-instance spans inside the verifier and matcher.
/// Maps 1:1 onto the CLI's --trace-detail {off, phase, full}.
enum class TraceDetail : int { kOff = 0, kPhase = 1, kFull = 2 };

const char* TraceDetailName(TraceDetail detail);
bool ParseTraceDetail(std::string_view text, TraceDetail* out);

/// One closed span (or instant event) in the ring buffer. Records are
/// written when a span *closes*, so buffer order is completion order, not
/// start order; sort by start_ns to reconstruct the timeline.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root (no enclosing span on this thread).
  const char* name = "";
  int64_t start_ns = 0;  ///< MonotonicNanos() at open.
  int64_t dur_ns = 0;    ///< Always >= 0; 0 for instants.
  uint32_t thread = 0;   ///< Sequential tracer-assigned thread id.
  int32_t worker = -1;   ///< ThreadPool worker index, -1 off-pool.
  bool instant = false;
};

/// \brief Process-wide span recorder.
///
/// A fixed-capacity ring of SpanRecords: opening a span costs one relaxed
/// load (the detail gate) plus a clock read; closing claims a slot with one
/// relaxed fetch_add and writes the record. No locks on the hot path.
/// Parent linkage is a thread_local "current span" chain maintained by the
/// RAII TraceSpan, so nesting is attributed per thread with no shared
/// state. When more than `capacity` spans close, the oldest records are
/// overwritten and counted in dropped().
///
/// Like the metrics registry, the tracer is write-only for the algorithms:
/// nothing under src/core or src/matching reads it, which is what the
/// cross-generator differential test locks in (DESIGN.md §13).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static Tracer& Global();

  /// Clears the buffer and starts recording at `detail`.
  void Enable(TraceDetail detail);
  void Disable() { detail_.store(static_cast<int>(TraceDetail::kOff),
                                 std::memory_order_relaxed); }

  TraceDetail detail() const {
    return static_cast<TraceDetail>(detail_.load(std::memory_order_relaxed));
  }
  bool ShouldRecord(TraceDetail level) const {
    return detail_.load(std::memory_order_relaxed) >= static_cast<int>(level);
  }

  /// Records a zero-duration event under the calling thread's current span.
  void Instant(const char* name, TraceDetail level = TraceDetail::kPhase);

  /// Copies every live record, oldest first by buffer order. Callers must
  /// ensure writers have quiesced (generators join their pools before
  /// returning, so snapshotting after a run completes is race-free).
  std::vector<SpanRecord> Snapshot() const;

  /// Records overwritten because the ring wrapped.
  uint64_t dropped() const;

  /// Total records ever written since the last Enable().
  uint64_t total_recorded() const {
    return write_index_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceSpan;

  Tracer();

  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void Record(const SpanRecord& rec);

  /// Thread-local parent chain, manipulated only by TraceSpan/Instant.
  static uint64_t CurrentParent();
  static void SetCurrentParent(uint64_t id);
  static uint32_t ThisThreadId();
  static int32_t ThisWorkerId();

  std::atomic<int> detail_{static_cast<int>(TraceDetail::kOff)};
  std::atomic<uint64_t> next_id_{1};  // 0 is the "root" sentinel.
  std::atomic<uint64_t> write_index_{0};
  std::vector<SpanRecord> ring_;
};

/// \brief RAII scope that records one span when it closes.
///
/// `name` must be a string literal (the record stores the pointer). A span
/// constructed while the tracer's detail is below `level` is inert: no id
/// is allocated, no clock is read, and the destructor is a single branch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceDetail level = TraceDetail::kPhase);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = "";
  int64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t saved_parent_ = 0;
  bool active_ = false;
};

}  // namespace fairsqg::obs

// Instrumentation macros. Compiling with FAIRSQG_OBS=OFF (the CMake option,
// which defines FAIRSQG_OBS_DISABLED) expands every site to nothing — the
// hard compile-time gate. With observability compiled in, each site is
// runtime-gated: spans check the tracer detail level, counters check the
// registry's enabled flag; both are one relaxed atomic load when off.
#if defined(FAIRSQG_OBS_DISABLED)

#define FAIRSQG_TRACE_SPAN(name)
#define FAIRSQG_TRACE_SPAN_FULL(name)
#define FAIRSQG_TRACE_INSTANT(name) ((void)0)
#define FAIRSQG_COUNT(name) ((void)0)
#define FAIRSQG_COUNT_N(name, n) ((void)0)
#define FAIRSQG_OBSERVE(name, value) ((void)0)

#else

#define FAIRSQG_OBS_CONCAT_INNER(a, b) a##b
#define FAIRSQG_OBS_CONCAT(a, b) FAIRSQG_OBS_CONCAT_INNER(a, b)

/// Phase-level span covering the enclosing scope.
#define FAIRSQG_TRACE_SPAN(name)                                          \
  ::fairsqg::obs::TraceSpan FAIRSQG_OBS_CONCAT(fairsqg_obs_span_,         \
                                               __LINE__)(                 \
      name, ::fairsqg::obs::TraceDetail::kPhase)

/// Per-instance span, recorded only at --trace-detail=full.
#define FAIRSQG_TRACE_SPAN_FULL(name)                                     \
  ::fairsqg::obs::TraceSpan FAIRSQG_OBS_CONCAT(fairsqg_obs_span_,         \
                                               __LINE__)(                 \
      name, ::fairsqg::obs::TraceDetail::kFull)

/// Zero-duration event (e.g. a RunContext cancel observed).
#define FAIRSQG_TRACE_INSTANT(name)                                       \
  ::fairsqg::obs::Tracer::Global().Instant(                               \
      name, ::fairsqg::obs::TraceDetail::kPhase)

/// Named-counter increment. The instrument is resolved once per call site
/// (function-local static), then each hit is a sharded relaxed fetch_add.
#define FAIRSQG_COUNT_N(name, n)                                          \
  do {                                                                    \
    if (::fairsqg::obs::MetricsRegistry::Global().enabled()) {            \
      static ::fairsqg::obs::MetricsRegistry::Counter*                    \
          fairsqg_obs_counter =                                           \
              ::fairsqg::obs::MetricsRegistry::Global().GetCounter(name); \
      fairsqg_obs_counter->Add(static_cast<uint64_t>(n));                 \
    }                                                                     \
  } while (0)
#define FAIRSQG_COUNT(name) FAIRSQG_COUNT_N(name, 1)

/// Histogram observation (durations in nanoseconds, sizes in items).
#define FAIRSQG_OBSERVE(name, value)                                      \
  do {                                                                    \
    if (::fairsqg::obs::MetricsRegistry::Global().enabled()) {            \
      static ::fairsqg::obs::MetricsRegistry::Histogram*                  \
          fairsqg_obs_histogram =                                         \
              ::fairsqg::obs::MetricsRegistry::Global().GetHistogram(     \
                  name);                                                  \
      fairsqg_obs_histogram->Observe(static_cast<double>(value));         \
    }                                                                     \
  } while (0)

#endif  // FAIRSQG_OBS_DISABLED

#endif  // FAIRSQG_OBS_TRACE_H_
