#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fairsqg::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  double rounded = std::nearbyint(d);
  if (rounded == d && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return Fail("truncated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // The exporters only emit control-character escapes; decode the
            // BMP code point as UTF-8 (surrogate pairs are not produced).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > 200) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      *out = Json::Object();
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        Json value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->Set(key, std::move(value));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      *out = Json::Array();
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        Json value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->Push(std::move(value));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      *out = Json(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      *out = Json(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      *out = Json();
      return true;
    }
    // Number.
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return Fail("unexpected character");
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return Fail("malformed number");
    }
    *out = Json(d);
    return true;
  }
};

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += pad;
        AppendEscaped(out, key);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
        if (++i < object_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "}";
      break;
    }
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "]";
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  Parser p{text, 0, {}};
  if (!p.ParseValue(out, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing characters at offset " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

}  // namespace fairsqg::obs
