#include "obs/run_report.h"

#include <algorithm>
#include <cstdio>

#include "core/stats.h"

namespace fairsqg::obs {

namespace {

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Json HistogramJson(const HistogramSnapshot& h) {
  Json j = Json::Object();
  j.Set("count", Json(h.count));
  j.Set("sum", Json(h.sum));
  if (h.count > 0) {
    j.Set("min", Json(h.min));
    j.Set("max", Json(h.max));
  }
  // Sparse bucket dump: bucket i spans values [2^i, 2^(i+1)).
  Json buckets = Json::Array();
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    Json b = Json::Object();
    b.Set("pow2", Json(static_cast<uint64_t>(i)));
    b.Set("count", Json(h.buckets[i]));
    buckets.Push(std::move(b));
  }
  j.Set("buckets", std::move(buckets));
  return j;
}

Json SpanJson(const SpanRecord& s) {
  Json j = Json::Object();
  j.Set("id", Json(s.id));
  j.Set("parent", Json(s.parent));
  j.Set("name", Json(s.name));
  j.Set("start_ns", Json(s.start_ns));
  j.Set("dur_ns", Json(s.dur_ns));
  j.Set("thread", Json(static_cast<uint64_t>(s.thread)));
  j.Set("worker", Json(static_cast<int64_t>(s.worker)));
  if (s.instant) j.Set("instant", Json(true));
  return j;
}

}  // namespace

RunReport::RunReport() {
  root_ = Json::Object();
  root_.Set("kind", Json(kKind));
  root_.Set("schema_version", Json(static_cast<int64_t>(kSchemaVersion)));
}

void RunReport::SetAlgorithm(const std::string& name) {
  root_.Set("algorithm", Json(name));
}

void RunReport::SetGenStats(const GenStats& stats) {
  root_.Set("stats", StatsJson(stats));
}

void RunReport::SetField(const std::string& key, Json value) {
  root_.Set(key, std::move(value));
}

void RunReport::AttachMetrics(const MetricsSnapshot& snapshot) {
  Json metrics = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, Json(value));
  }
  metrics.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, Json(value));
  }
  metrics.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    histograms.Set(name, HistogramJson(h));
  }
  metrics.Set("histograms", std::move(histograms));
  root_.Set("metrics", std::move(metrics));
}

void RunReport::AttachTrace(const std::vector<SpanRecord>& spans,
                            TraceDetail detail, uint64_t dropped) {
  Json trace = Json::Object();
  trace.Set("detail", Json(TraceDetailName(detail)));
  trace.Set("dropped", Json(dropped));
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_ns < b->start_ns;
                   });
  Json arr = Json::Array();
  for (const SpanRecord* s : ordered) arr.Push(SpanJson(*s));
  trace.Set("spans", std::move(arr));
  root_.Set("trace", std::move(trace));
}

Status RunReport::WriteFile(const std::string& path) const {
  return WriteTextFile(path, Dump() + "\n");
}

Json RunReport::StatsJson(const GenStats& s) {
  Json j = Json::Object();
  j.Set("generated", Json(static_cast<uint64_t>(s.generated)));
  j.Set("verified", Json(static_cast<uint64_t>(s.verified)));
  j.Set("pruned", Json(static_cast<uint64_t>(s.pruned)));
  j.Set("feasible", Json(static_cast<uint64_t>(s.feasible)));
  j.Set("pruned_sandwich", Json(static_cast<uint64_t>(s.pruned_sandwich)));
  j.Set("pruned_subtree", Json(static_cast<uint64_t>(s.pruned_subtree)));
  j.Set("enqueued", Json(static_cast<uint64_t>(s.enqueued)));
  j.Set("stolen", Json(static_cast<uint64_t>(s.stolen)));
  j.Set("cache_hits", Json(static_cast<uint64_t>(s.cache_hits)));
  j.Set("cache_misses", Json(static_cast<uint64_t>(s.cache_misses)));
  j.Set("deadline_exceeded", Json(s.deadline_exceeded));
  j.Set("aborted_matches", Json(static_cast<uint64_t>(s.aborted_matches)));
  j.Set("timed_out_instances",
        Json(static_cast<uint64_t>(s.timed_out_instances)));
  j.Set("sweep_chains", Json(static_cast<uint64_t>(s.sweep_chains)));
  j.Set("sweep_instances", Json(static_cast<uint64_t>(s.sweep_instances)));
  j.Set("sweep_fallbacks", Json(static_cast<uint64_t>(s.sweep_fallbacks)));
  j.Set("total_seconds", Json(s.total_seconds));
  j.Set("verify_cpu_seconds", Json(s.verify_cpu_seconds));
  j.Set("verify_wall_seconds", Json(s.verify_wall_seconds));
  Json per_worker = Json::Array();
  for (double w : s.per_worker_verify_seconds) per_worker.Push(Json(w));
  j.Set("per_worker_verify_seconds", std::move(per_worker));
  return j;
}

Json ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_ns < b->start_ns;
                   });
  Json events = Json::Array();
  for (const SpanRecord* s : ordered) {
    Json e = Json::Object();
    e.Set("name", Json(s->name));
    e.Set("ph", Json(s->instant ? "i" : "X"));
    e.Set("ts", Json(static_cast<double>(s->start_ns) / 1e3));
    if (!s->instant) {
      e.Set("dur", Json(static_cast<double>(s->dur_ns) / 1e3));
    } else {
      e.Set("s", Json("t"));  // Instant scope: thread.
    }
    e.Set("pid", Json(static_cast<int64_t>(1)));
    e.Set("tid", Json(static_cast<uint64_t>(s->thread)));
    Json trace_args = Json::Object();
    trace_args.Set("id", Json(s->id));
    trace_args.Set("parent", Json(s->parent));
    trace_args.Set("worker", Json(static_cast<int64_t>(s->worker)));
    e.Set("args", std::move(trace_args));
    events.Push(std::move(e));
  }
  Json root = Json::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", Json("ms"));
  return root;
}

Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path) {
  return WriteTextFile(path, ChromeTraceJson(spans).Dump(0) + "\n");
}

}  // namespace fairsqg::obs
