#include "obs/metrics.h"

#include <bit>
#include <cmath>

namespace fairsqg::obs {

namespace {

size_t BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // Also catches NaN.
  uint64_t u = v >= 9.2e18 ? ~uint64_t{0} : static_cast<uint64_t>(v);
  size_t idx = static_cast<size_t>(std::bit_width(u)) - 1;
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

void AtomicUpdateMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicUpdateMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void MetricsRegistry::Histogram::Observe(double v) {
  // First observation seeds min/max; the count_ increment is last so a
  // concurrent Snapshot with count > 0 always sees a seeded min/max.
  uint64_t prior = count_.load(std::memory_order_relaxed);
  if (prior == 0) {
    double zero = 0;
    min_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
    zero = 0;
    max_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  AtomicUpdateMin(&min_, v);
  AtomicUpdateMax(&max_, v);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot MetricsRegistry::Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_acquire);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void MetricsRegistry::Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

size_t MetricsRegistry::ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &counters_[name];
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &gauges_[name];
}

MetricsRegistry::Histogram* MetricsRegistry::GetHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter.Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge.Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist.Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, hist] : histograms_) hist.Reset();
}

}  // namespace fairsqg::obs
