#include "graph/csv_loader.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fairsqg {

namespace {

enum class ColumnType { kInt, kDouble, kString };

struct AttrColumn {
  std::string name;
  ColumnType type;
};

Result<std::vector<AttrColumn>> ParseNodeHeader(std::string_view header) {
  std::vector<std::string_view> cols = SplitString(header, ',');
  if (cols.size() < 2 || StripWhitespace(cols[0]) != "id" ||
      StripWhitespace(cols[1]) != "label") {
    return Status::InvalidArgument(
        "node header must start with 'id,label': '" + std::string(header) + "'");
  }
  std::vector<AttrColumn> out;
  for (size_t i = 2; i < cols.size(); ++i) {
    std::string_view col = StripWhitespace(cols[i]);
    size_t colon = col.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("attribute column needs a :type suffix: '" +
                                     std::string(col) + "'");
    }
    std::string_view type = col.substr(colon + 1);
    AttrColumn ac;
    ac.name = std::string(col.substr(0, colon));
    if (type == "int") {
      ac.type = ColumnType::kInt;
    } else if (type == "double") {
      ac.type = ColumnType::kDouble;
    } else if (type == "string") {
      ac.type = ColumnType::kString;
    } else {
      return Status::InvalidArgument("unknown column type '" + std::string(type) +
                                     "'");
    }
    if (ac.name.empty()) {
      return Status::InvalidArgument("empty attribute column name");
    }
    out.push_back(std::move(ac));
  }
  return out;
}

Result<AttrValue> ParseCell(std::string_view cell, ColumnType type) {
  switch (type) {
    case ColumnType::kInt: {
      FAIRSQG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cell));
      return AttrValue(v);
    }
    case ColumnType::kDouble: {
      FAIRSQG_ASSIGN_OR_RETURN(double v, ParseDouble(cell));
      return AttrValue(v);
    }
    case ColumnType::kString:
      return AttrValue(std::string(cell));
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<Graph> LoadCsvGraph(std::istream& nodes, std::istream& edges,
                           std::shared_ptr<Schema> schema,
                           std::unordered_map<std::string, NodeId>* id_map) {
  if (schema == nullptr) schema = std::make_shared<Schema>();
  GraphBuilder builder(std::move(schema));
  std::unordered_map<std::string, NodeId> ids;

  std::string line;
  if (!std::getline(nodes, line)) {
    return Status::InvalidArgument("node CSV is empty");
  }
  FAIRSQG_ASSIGN_OR_RETURN(std::vector<AttrColumn> columns,
                           ParseNodeHeader(StripWhitespace(line)));
  size_t line_no = 1;
  while (std::getline(nodes, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string_view> cells = SplitString(text, ',');
    if (cells.size() != columns.size() + 2) {
      return Status::InvalidArgument("node line " + std::to_string(line_no) +
                                     ": expected " +
                                     std::to_string(columns.size() + 2) +
                                     " cells, got " + std::to_string(cells.size()));
    }
    std::string id(StripWhitespace(cells[0]));
    if (id.empty()) {
      return Status::InvalidArgument("node line " + std::to_string(line_no) +
                                     ": empty id");
    }
    if (ids.count(id) > 0) {
      return Status::InvalidArgument("node line " + std::to_string(line_no) +
                                     ": duplicate id '" + id + "'");
    }
    std::string_view node_label = StripWhitespace(cells[1]);
    if (node_label.empty()) {
      return Status::InvalidArgument("node line " + std::to_string(line_no) +
                                     ": empty label");
    }
    NodeId v = builder.AddNode(node_label);
    ids.emplace(std::move(id), v);
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string_view cell = StripWhitespace(cells[i + 2]);
      if (cell.empty()) continue;  // Absent attribute.
      Result<AttrValue> value = ParseCell(cell, columns[i].type);
      if (!value.ok()) {
        return Status::InvalidArgument(
            "node line " + std::to_string(line_no) + ", column '" +
            columns[i].name + "': " + value.status().message());
      }
      builder.SetAttr(v, columns[i].name, std::move(*value));
    }
  }
  if (nodes.bad()) {
    return Status::IoError("node CSV read failed after line " +
                           std::to_string(line_no) + " (truncated stream?)");
  }

  if (!std::getline(edges, line)) {
    return Status::InvalidArgument("edge CSV is empty");
  }
  if (StripWhitespace(line) != "from,to,label") {
    return Status::InvalidArgument("edge header must be 'from,to,label'");
  }
  line_no = 1;
  while (std::getline(edges, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string_view> cells = SplitString(text, ',');
    if (cells.size() != 3) {
      return Status::InvalidArgument("edge line " + std::to_string(line_no) +
                                     ": expected 3 cells");
    }
    auto from = ids.find(std::string(StripWhitespace(cells[0])));
    auto to = ids.find(std::string(StripWhitespace(cells[1])));
    if (from == ids.end() || to == ids.end()) {
      std::string_view missing =
          from == ids.end() ? StripWhitespace(cells[0]) : StripWhitespace(cells[1]);
      return Status::InvalidArgument("edge line " + std::to_string(line_no) +
                                     ": unknown endpoint id '" +
                                     std::string(missing) + "'");
    }
    std::string_view label = StripWhitespace(cells[2]);
    if (label.empty()) {
      return Status::InvalidArgument("edge line " + std::to_string(line_no) +
                                     ": empty edge label");
    }
    builder.AddEdge(from->second, to->second, label);
  }
  if (edges.bad()) {
    return Status::IoError("edge CSV read failed after line " +
                           std::to_string(line_no) + " (truncated stream?)");
  }

  if (id_map != nullptr) *id_map = std::move(ids);
  return std::move(builder).Build();
}

Result<Graph> LoadCsvGraphFiles(const std::string& nodes_path,
                                const std::string& edges_path,
                                std::shared_ptr<Schema> schema,
                                std::unordered_map<std::string, NodeId>* id_map) {
  std::ifstream nodes(nodes_path);
  if (!nodes) return Status::IoError("cannot open " + nodes_path);
  std::ifstream edges(edges_path);
  if (!edges) return Status::IoError("cannot open " + edges_path);
  return LoadCsvGraph(nodes, edges, std::move(schema), id_map);
}

}  // namespace fairsqg
