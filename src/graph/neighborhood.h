#ifndef FAIRSQG_GRAPH_NEIGHBORHOOD_H_
#define FAIRSQG_GRAPH_NEIGHBORHOOD_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairsqg {

/// \brief Nodes within `d` hops (ignoring direction) of any seed node.
///
/// This is the paper's `G_q^d`: the subgraph induced by the d-hop
/// neighbours of a verified instance's match set, which Spawn uses to
/// restrict the values its refinement steps need to consider. The result is
/// sorted ascending and includes the seeds.
NodeSet DHopNeighborhood(const Graph& g, const NodeSet& seeds, int d);

/// \brief Membership mask form of DHopNeighborhood for repeated probes;
/// `mask[v]` is true iff v is within d hops of a seed.
std::vector<bool> DHopMask(const Graph& g, const NodeSet& seeds, int d);

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_NEIGHBORHOOD_H_
