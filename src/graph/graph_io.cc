#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fairsqg {

namespace {

std::string EncodeValue(const AttrValue& v) {
  if (v.is_int()) return "i:" + v.ToString();
  if (v.is_double()) return "d:" + v.ToString();
  return "s:" + v.as_string();
}

Result<AttrValue> DecodeValue(std::string_view text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad attr value: '" + std::string(text) + "'");
  }
  std::string_view body = text.substr(2);
  switch (text[0]) {
    case 'i': {
      FAIRSQG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(body));
      return AttrValue(v);
    }
    case 'd': {
      FAIRSQG_ASSIGN_OR_RETURN(double v, ParseDouble(body));
      return AttrValue(v);
    }
    case 's':
      return AttrValue(std::string(body));
    default:
      return Status::InvalidArgument("bad attr tag: '" + std::string(text) + "'");
  }
}

}  // namespace

Status WriteGraphText(const Graph& g, std::ostream& out) {
  out << "# fairsqg graph v1: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "v " << v << " " << g.schema().NodeLabelName(g.node_label(v));
    for (const AttrEntry& e : g.attrs(v)) {
      out << " " << g.schema().AttrName(e.attr) << "=" << EncodeValue(e.value);
    }
    out << "\n";
  }
  // Canonical edge order: (from, to, label name) — independent of the
  // schema's label interning order, so re-serializing a loaded graph is
  // byte-identical.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto adj = g.OutEdges(v);
    std::vector<const AdjEntry*> sorted;
    sorted.reserve(adj.size());
    for (const AdjEntry& e : adj) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [&](const AdjEntry* a, const AdjEntry* b) {
                if (a->neighbor != b->neighbor) return a->neighbor < b->neighbor;
                return g.schema().EdgeLabelName(a->edge_label) <
                       g.schema().EdgeLabelName(b->edge_label);
              });
    for (const AdjEntry* e : sorted) {
      out << "e " << v << " " << e->neighbor << " "
          << g.schema().EdgeLabelName(e->edge_label) << "\n";
    }
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return WriteGraphText(g, out);
}

Result<Graph> ReadGraphText(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string_view> tok = SplitString(text, ' ');
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + why);
    };
    if (tok[0] == "v") {
      if (tok.size() < 3) return fail("node line needs id and label");
      FAIRSQG_ASSIGN_OR_RETURN(int64_t id, ParseInt64(tok[1]));
      if (id != static_cast<int64_t>(builder.num_nodes())) {
        return fail("node ids must be dense and ascending");
      }
      NodeId v = builder.AddNode(tok[2]);
      for (size_t i = 3; i < tok.size(); ++i) {
        if (tok[i].empty()) continue;
        size_t eq = tok[i].find('=');
        if (eq == std::string_view::npos) return fail("attr needs name=value");
        FAIRSQG_ASSIGN_OR_RETURN(AttrValue value,
                                 DecodeValue(tok[i].substr(eq + 1)));
        builder.SetAttr(v, tok[i].substr(0, eq), std::move(value));
      }
    } else if (tok[0] == "e") {
      if (tok.size() != 4) return fail("edge line needs from to label");
      FAIRSQG_ASSIGN_OR_RETURN(int64_t from, ParseInt64(tok[1]));
      FAIRSQG_ASSIGN_OR_RETURN(int64_t to, ParseInt64(tok[2]));
      if (from < 0 || to < 0 ||
          from >= static_cast<int64_t>(builder.num_nodes()) ||
          to >= static_cast<int64_t>(builder.num_nodes())) {
        return fail("edge endpoint out of range");
      }
      builder.AddEdge(static_cast<NodeId>(from), static_cast<NodeId>(to), tok[3]);
    } else {
      return fail("unknown record type '" + std::string(tok[0]) + "'");
    }
  }
  return std::move(builder).Build();
}

Result<Graph> ReadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return ReadGraphText(in);
}

}  // namespace fairsqg
