#include "graph/attr_value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/hash.h"

namespace fairsqg {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kLt:
      return "<";
  }
  return "?";
}

double AttrValue::ToNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  return 0.0;
}

std::string AttrValue::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", as_double());
    return buf;
  }
  return as_string();
}

namespace {
int CompareThreeWay(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
}  // namespace

bool AttrValue::Compare(CompareOp op, const AttrValue& rhs) const {
  int cmp = 0;
  if (is_string() && rhs.is_string()) {
    cmp = as_string().compare(rhs.as_string());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else if (is_numeric() && rhs.is_numeric()) {
    cmp = CompareThreeWay(ToNumeric(), rhs.ToNumeric());
  } else {
    // Mixed string/numeric: no predicate over incompatible types matches.
    return false;
  }
  switch (op) {
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kLt:
      return cmp < 0;
  }
  return false;
}

bool AttrValue::operator<(const AttrValue& rhs) const {
  if (is_numeric() != rhs.is_numeric()) return is_numeric();
  if (is_numeric()) return ToNumeric() < rhs.ToNumeric();
  return as_string() < rhs.as_string();
}

bool AttrValue::operator==(const AttrValue& rhs) const {
  if (is_string() != rhs.is_string()) return false;
  if (is_string()) return as_string() == rhs.as_string();
  return ToNumeric() == rhs.ToNumeric();
}

uint64_t AttrValue::Hash() const {
  if (is_string()) {
    return std::hash<std::string>{}(as_string()) | 0x8000000000000000ULL;
  }
  double d = ToNumeric();
  // Int-valued doubles hash like the corresponding int64.
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

}  // namespace fairsqg
