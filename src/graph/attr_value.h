#ifndef FAIRSQG_GRAPH_ATTR_VALUE_H_
#define FAIRSQG_GRAPH_ATTR_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

namespace fairsqg {

/// Comparison operator of a search predicate, from the paper's literal form
/// `u.A op x` with op in {>, >=, =, <=, <}.
enum class CompareOp { kGt, kGe, kEq, kLe, kLt };

/// Short symbol (">", ">=", "=", "<=", "<").
const char* CompareOpToString(CompareOp op);

/// \brief A typed attribute value: integer, real, or string.
///
/// Numeric values of either type compare with each other; strings compare
/// only with strings (lexicographically). This mirrors attributed property
/// graphs such as DBpedia where a node tuple mixes numeric and categorical
/// fields.
class AttrValue {
 public:
  AttrValue() : value_(int64_t{0}) {}
  explicit AttrValue(int64_t v) : value_(v) {}
  explicit AttrValue(double v) : value_(v) {}
  explicit AttrValue(std::string v) : value_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_numeric() const { return !is_string(); }

  int64_t as_int() const { return std::get<int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }

  /// Numeric view of an int or double value; 0.0 for strings.
  double ToNumeric() const;

  /// Round-trippable text form ("42", "3.5", "\"action\"" without quotes).
  std::string ToString() const;

  /// \brief Evaluates `*this op rhs`.
  ///
  /// Numeric vs numeric uses numeric order; string vs string uses
  /// lexicographic order; mixed numeric/string comparisons are false for
  /// every op (a predicate over a missing/incompatible type never matches).
  bool Compare(CompareOp op, const AttrValue& rhs) const;

  /// Total order used to sort active domains: numerics first (by value),
  /// then strings (lexicographic).
  bool operator<(const AttrValue& rhs) const;
  bool operator==(const AttrValue& rhs) const;
  bool operator!=(const AttrValue& rhs) const { return !(*this == rhs); }

  /// Stable 64-bit hash.
  uint64_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> value_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_ATTR_VALUE_H_
