#ifndef FAIRSQG_GRAPH_GRAPH_BUILDER_H_
#define FAIRSQG_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// \brief Mutable accumulator that produces an immutable Graph.
///
/// Usage:
/// \code
///   GraphBuilder b;
///   NodeId v = b.AddNode("user");
///   b.SetAttr(v, "yearsOfExp", AttrValue(int64_t{12}));
///   b.AddEdge(v, w, "worksAt");
///   FAIRSQG_ASSIGN_OR_RETURN(Graph g, b.Build());
/// \endcode
class GraphBuilder {
 public:
  GraphBuilder() : schema_(std::make_shared<Schema>()) {}
  /// Builds against an existing schema (e.g., shared with templates).
  explicit GraphBuilder(std::shared_ptr<Schema> schema)
      : schema_(std::move(schema)) {}

  Schema& schema() { return *schema_; }

  /// Adds a node with the given label; returns its dense id.
  NodeId AddNode(std::string_view label);
  NodeId AddNode(LabelId label);

  /// Sets (or overwrites) one attribute of `v`'s tuple.
  void SetAttr(NodeId v, std::string_view attr, AttrValue value);
  void SetAttr(NodeId v, AttrId attr, AttrValue value);

  /// Adds a directed labelled edge; parallel edges with distinct labels are
  /// allowed, exact duplicates are deduplicated at Build time.
  void AddEdge(NodeId from, NodeId to, std::string_view edge_label);
  void AddEdge(NodeId from, NodeId to, LabelId edge_label);

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes: sorts adjacency, builds CSR, label index, active domains.
  /// The builder is consumed.
  Result<Graph> Build() &&;

 private:
  struct EdgeRec {
    NodeId from;
    NodeId to;
    LabelId label;
  };

  std::shared_ptr<Schema> schema_;
  std::vector<LabelId> node_labels_;
  std::vector<std::vector<AttrEntry>> node_attrs_;
  std::vector<EdgeRec> edges_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_GRAPH_BUILDER_H_
