#ifndef FAIRSQG_GRAPH_TYPES_H_
#define FAIRSQG_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace fairsqg {

/// Dense identifier of a data-graph node.
using NodeId = uint32_t;
/// Dense identifier of a data-graph edge.
using EdgeId = uint32_t;
/// Interned node/edge label.
using LabelId = uint32_t;
/// Interned attribute name.
using AttrId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr AttrId kInvalidAttr = std::numeric_limits<AttrId>::max();

/// A set of data-graph nodes, kept sorted and unique by convention.
using NodeSet = std::vector<NodeId>;

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_TYPES_H_
