#ifndef FAIRSQG_GRAPH_ATTR_RANGE_INDEX_H_
#define FAIRSQG_GRAPH_ATTR_RANGE_INDEX_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/attr_value.h"
#include "graph/types.h"

namespace fairsqg {

/// \brief Order index of one (node label, attribute) pair: every node of
/// the label carrying the attribute, as a `(value, node)` array sorted by
/// value (AttrValue's total order: numerics first, then strings; ties by
/// node id).
///
/// Because every search predicate `u.A op x` is a half-open range in that
/// order (Compare's mixed-type rule confines a numeric constant to the
/// numeric prefix and a string constant to the string suffix), its
/// satisfying nodes are a *contiguous slice* found by binary search in
/// O(log n) — candidate generation becomes index slicing instead of a scan
/// over `NodesWithLabel`. Built once at Graph build time; nodes missing the
/// attribute are simply absent (a missing attribute never satisfies a
/// predicate).
class AttrRangeIndex {
 public:
  AttrRangeIndex() = default;

  /// Builds from unsorted `(value, node)` pairs (consumed).
  static AttrRangeIndex Build(std::vector<std::pair<AttrValue, NodeId>> entries);

  /// Total entries (= nodes of the label carrying the attribute).
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Node ids satisfying `value op x`, in *value order* (not id order).
  /// Callers intersect or sort as needed; `SliceBounds` returns the raw
  /// index range when only the selectivity is wanted.
  std::span<const NodeId> SliceFor(CompareOp op, const AttrValue& x) const;

  /// [lo, hi) entry range of `SliceFor` — O(log n), no materialization.
  std::pair<size_t, size_t> SliceBounds(CompareOp op, const AttrValue& x) const;

  const AttrValue& value_at(size_t i) const { return values_[i]; }
  NodeId node_at(size_t i) const { return nodes_[i]; }

 private:
  std::vector<AttrValue> values_;  ///< Ascending by AttrValue::operator<.
  std::vector<NodeId> nodes_;     ///< Parallel to values_; ties id-ascending.
  size_t num_numeric_ = 0;        ///< Length of the numeric prefix.
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_ATTR_RANGE_INDEX_H_
