#include "graph/graph_builder.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace fairsqg {

NodeId GraphBuilder::AddNode(std::string_view label) {
  return AddNode(schema_->InternNodeLabel(label));
}

NodeId GraphBuilder::AddNode(LabelId label) {
  NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.push_back(label);
  node_attrs_.emplace_back();
  return id;
}

void GraphBuilder::SetAttr(NodeId v, std::string_view attr, AttrValue value) {
  SetAttr(v, schema_->InternAttr(attr), std::move(value));
}

void GraphBuilder::SetAttr(NodeId v, AttrId attr, AttrValue value) {
  FAIRSQG_CHECK(v < node_attrs_.size()) << "SetAttr on unknown node " << v;
  for (AttrEntry& e : node_attrs_[v]) {
    if (e.attr == attr) {
      e.value = std::move(value);
      return;
    }
  }
  node_attrs_[v].push_back({attr, std::move(value)});
}

void GraphBuilder::AddEdge(NodeId from, NodeId to, std::string_view edge_label) {
  AddEdge(from, to, schema_->InternEdgeLabel(edge_label));
}

void GraphBuilder::AddEdge(NodeId from, NodeId to, LabelId edge_label) {
  edges_.push_back({from, to, edge_label});
}

Result<Graph> GraphBuilder::Build() && {
  const size_t n = node_labels_.size();
  for (const EdgeRec& e : edges_) {
    if (e.from >= n || e.to >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
  }

  Graph g;
  g.schema_ = std::move(schema_);
  g.node_labels_ = std::move(node_labels_);

  // Attribute pool, each tuple sorted by attribute id.
  g.attr_offsets_.assign(n + 1, 0);
  size_t total_attrs = 0;
  for (auto& tuple : node_attrs_) total_attrs += tuple.size();
  g.attr_pool_.reserve(total_attrs);
  for (size_t v = 0; v < n; ++v) {
    auto& tuple = node_attrs_[v];
    std::sort(tuple.begin(), tuple.end(),
              [](const AttrEntry& a, const AttrEntry& b) { return a.attr < b.attr; });
    g.attr_offsets_[v] = g.attr_pool_.size();
    for (AttrEntry& e : tuple) g.attr_pool_.push_back(std::move(e));
  }
  g.attr_offsets_[n] = g.attr_pool_.size();

  // Deduplicate edges, then build CSR in both directions.
  std::sort(edges_.begin(), edges_.end(), [](const EdgeRec& a, const EdgeRec& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.label < b.label;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const EdgeRec& a, const EdgeRec& b) {
                             return a.from == b.from && a.to == b.to &&
                                    a.label == b.label;
                           }),
               edges_.end());

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const EdgeRec& e : edges_) {
    ++g.out_offsets_[e.from + 1];
    ++g.in_offsets_[e.to + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_adj_.resize(edges_.size());
  g.in_adj_.resize(edges_.size());
  {
    std::vector<size_t> out_pos(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
    std::vector<size_t> in_pos(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const EdgeRec& e : edges_) {
      g.out_adj_[out_pos[e.from]++] = {e.to, e.label};
      g.in_adj_[in_pos[e.to]++] = {e.from, e.label};
    }
  }
  // Out lists are already (to, label)-sorted by the global sort; in lists
  // need their own ordering for binary search and merge-joins.
  for (size_t v = 0; v < n; ++v) {
    auto begin = g.in_adj_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v]);
    auto end = g.in_adj_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v + 1]);
    std::sort(begin, end, [](const AdjEntry& a, const AdjEntry& b) {
      return a.neighbor != b.neighbor ? a.neighbor < b.neighbor
                                      : a.edge_label < b.edge_label;
    });
  }

  // Label index.
  size_t num_labels = g.schema_->num_node_labels();
  g.label_index_.assign(num_labels, {});
  for (NodeId v = 0; v < n; ++v) {
    if (g.node_labels_[v] < num_labels) g.label_index_[g.node_labels_[v]].push_back(v);
  }

  // Per-label bitsets for O(1) label-membership tests.
  g.label_bitsets_.reserve(g.label_index_.size());
  for (const NodeSet& nodes : g.label_index_) {
    g.label_bitsets_.push_back(NodeBitset::FromNodes(nodes, n));
  }

  // Active domains: global per attribute and per (node label, attribute),
  // plus the attribute range indexes ((value, node) sorted per pair).
  size_t num_attrs = g.schema_->num_attrs();
  std::vector<std::set<AttrValue>> global(num_attrs);
  std::map<std::pair<LabelId, AttrId>, std::set<AttrValue>> per_label;
  std::map<std::pair<LabelId, AttrId>, std::vector<std::pair<AttrValue, NodeId>>>
      index_entries;
  for (NodeId v = 0; v < n; ++v) {
    for (const AttrEntry& e : g.attrs(v)) {
      global[e.attr].insert(e.value);
      per_label[{g.node_labels_[v], e.attr}].insert(e.value);
      index_entries[{g.node_labels_[v], e.attr}].push_back({e.value, v});
    }
  }
  for (auto& [key, entries] : index_entries) {
    g.attr_index_.emplace(key, AttrRangeIndex::Build(std::move(entries)));
  }
  g.global_adom_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    g.global_adom_[a].assign(global[a].begin(), global[a].end());
  }
  for (auto& [key, values] : per_label) {
    auto& dom = g.label_adom_[key];
    dom.assign(values.begin(), values.end());
    g.max_adom_size_ = std::max(g.max_adom_size_, dom.size());
  }

  for (NodeId v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }

  return g;
}

}  // namespace fairsqg
