#ifndef FAIRSQG_GRAPH_GRAPH_IO_H_
#define FAIRSQG_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// \brief Plain-text serialization of attributed graphs.
///
/// Line-oriented format, one record per line:
/// \code
///   # comment
///   v <id> <label> [attr=value ...]     value: i:<int> d:<double> s:<text>
///   e <from> <to> <edge_label>
/// \endcode
/// Node ids must be dense and ascending starting at 0.
Status WriteGraphText(const Graph& g, std::ostream& out);
Status WriteGraphFile(const Graph& g, const std::string& path);

Result<Graph> ReadGraphText(std::istream& in);
Result<Graph> ReadGraphFile(const std::string& path);

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_GRAPH_IO_H_
