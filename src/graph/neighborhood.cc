#include "graph/neighborhood.h"

#include <deque>

namespace fairsqg {

std::vector<bool> DHopMask(const Graph& g, const NodeSet& seeds, int d) {
  std::vector<bool> visited(g.num_nodes(), false);
  std::deque<std::pair<NodeId, int>> queue;
  for (NodeId v : seeds) {
    if (v < g.num_nodes() && !visited[v]) {
      visited[v] = true;
      queue.emplace_back(v, 0);
    }
  }
  while (!queue.empty()) {
    auto [v, depth] = queue.front();
    queue.pop_front();
    if (depth == d) continue;
    for (const AdjEntry& e : g.OutEdges(v)) {
      if (!visited[e.neighbor]) {
        visited[e.neighbor] = true;
        queue.emplace_back(e.neighbor, depth + 1);
      }
    }
    for (const AdjEntry& e : g.InEdges(v)) {
      if (!visited[e.neighbor]) {
        visited[e.neighbor] = true;
        queue.emplace_back(e.neighbor, depth + 1);
      }
    }
  }
  return visited;
}

NodeSet DHopNeighborhood(const Graph& g, const NodeSet& seeds, int d) {
  std::vector<bool> mask = DHopMask(g, seeds, d);
  NodeSet out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mask[v]) out.push_back(v);
  }
  return out;
}

}  // namespace fairsqg
