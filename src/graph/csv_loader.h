#ifndef FAIRSQG_GRAPH_CSV_LOADER_H_
#define FAIRSQG_GRAPH_CSV_LOADER_H_

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// \brief Loads an attributed graph from a node CSV and an edge CSV, the
/// common interchange format of public property graphs.
///
/// Node file header: `id,label,<attr>:<type>,...` with type one of
/// `int`, `double`, `string`; empty cells mean "attribute absent".
/// \code
///   id,label,yearsOfExp:int,major:string
///   u1,user,12,physics
///   o1,org,,
/// \endcode
/// Edge file header must be `from,to,label`:
/// \code
///   from,to,label
///   u1,o1,worksAt
/// \endcode
/// External string ids are mapped to dense NodeIds in file order; the
/// mapping is returned through `id_map` when non-null.
Result<Graph> LoadCsvGraph(std::istream& nodes, std::istream& edges,
                           std::shared_ptr<Schema> schema = nullptr,
                           std::unordered_map<std::string, NodeId>* id_map =
                               nullptr);

/// File-path convenience wrapper.
Result<Graph> LoadCsvGraphFiles(const std::string& nodes_path,
                                const std::string& edges_path,
                                std::shared_ptr<Schema> schema = nullptr,
                                std::unordered_map<std::string, NodeId>*
                                    id_map = nullptr);

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_CSV_LOADER_H_
