#ifndef FAIRSQG_GRAPH_NODE_BITSET_H_
#define FAIRSQG_GRAPH_NODE_BITSET_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace fairsqg {

/// \brief Dense bitset over data-graph node ids.
///
/// The matcher's inner loop asks "is neighbour w a candidate of query node
/// u?" once per adjacency entry; a word-indexed bit test answers in O(1)
/// where a sorted-set binary search pays O(log k). The candidate pipeline
/// also uses bitsets as scratch for multi-literal slice intersection
/// (bitmap AND + set-bit extraction yields id-sorted candidates without a
/// sort).
class NodeBitset {
 public:
  NodeBitset() = default;
  /// All-zero bitset able to hold nodes [0, num_nodes).
  explicit NodeBitset(size_t num_nodes)
      : num_bits_(num_nodes), words_((num_nodes + 63) / 64, 0) {}

  /// Builds the characteristic bitset of `nodes` (ids < num_nodes).
  static NodeBitset FromNodes(std::span<const NodeId> nodes, size_t num_nodes) {
    NodeBitset b(num_nodes);
    for (NodeId v : nodes) b.Set(v);
    return b;
  }

  size_t num_bits() const { return num_bits_; }
  bool empty() const { return words_.empty(); }

  void Set(NodeId v) { words_[v >> 6] |= uint64_t{1} << (v & 63); }

  /// O(1) membership; ids beyond the capacity are never members.
  bool Test(NodeId v) const {
    size_t w = v >> 6;
    if (w >= words_.size()) return false;
    return (words_[w] >> (v & 63)) & 1;
  }

  /// Intersects in place (`*this &= other`); trailing words beyond the
  /// shorter operand are cleared.
  void IntersectWith(const NodeBitset& other) {
    size_t common = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < common; ++i) words_[i] &= other.words_[i];
    std::fill(words_.begin() + static_cast<ptrdiff_t>(common), words_.end(), 0);
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  /// Appends every set bit to `out` in ascending id order.
  void ExtractTo(NodeSet* out) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        out->push_back(static_cast<NodeId>((w << 6) + tz));
        bits &= bits - 1;
      }
    }
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_NODE_BITSET_H_
