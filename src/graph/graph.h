#ifndef FAIRSQG_GRAPH_GRAPH_H_
#define FAIRSQG_GRAPH_GRAPH_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/attr_range_index.h"
#include "graph/attr_value.h"
#include "graph/node_bitset.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace fairsqg {

/// One attribute of a node tuple `T(v)`.
struct AttrEntry {
  AttrId attr;
  AttrValue value;
};

/// One adjacency slot: target (or source) node plus the edge label.
struct AdjEntry {
  NodeId neighbor;
  LabelId edge_label;
};

/// \brief Immutable attributed directed graph `G = (V, E, L, T)`.
///
/// Nodes carry a label and a tuple of typed attributes; edges carry a label.
/// Storage is CSR in both directions, with a label index and precomputed
/// active domains (global and per node label) to drive template variable
/// domains and candidate filtering. Construct via GraphBuilder.
class Graph {
 public:
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return out_adj_.size(); }

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }

  LabelId node_label(NodeId v) const { return node_labels_[v]; }

  /// The attribute tuple T(v), sorted by attribute id.
  std::span<const AttrEntry> attrs(NodeId v) const {
    return {attr_pool_.data() + attr_offsets_[v],
            attr_offsets_[v + 1] - attr_offsets_[v]};
  }

  /// Value of attribute `a` on `v`, or nullptr when absent.
  const AttrValue* GetAttr(NodeId v, AttrId a) const;

  std::span<const AdjEntry> OutEdges(NodeId v) const {
    return {out_adj_.data() + out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const AdjEntry> InEdges(NodeId v) const {
    return {in_adj_.data() + in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]};
  }
  size_t out_degree(NodeId v) const { return out_offsets_[v + 1] - out_offsets_[v]; }
  size_t in_degree(NodeId v) const { return in_offsets_[v + 1] - in_offsets_[v]; }
  size_t degree(NodeId v) const { return out_degree(v) + in_degree(v); }
  size_t max_degree() const { return max_degree_; }

  /// True iff edge (from, to) with `edge_label` exists (binary search).
  bool HasEdge(NodeId from, NodeId to, LabelId edge_label) const;

  /// `V(u)`: all nodes carrying `label`, ascending. Empty for unknown labels.
  const NodeSet& NodesWithLabel(LabelId label) const;

  /// Characteristic bitset of `NodesWithLabel(label)` (O(1) membership);
  /// an empty bitset for unknown labels.
  const NodeBitset& LabelBitset(LabelId label) const;

  /// Order index of `(label, a)`, or nullptr when no node with `label`
  /// carries `a` (then no literal over `a` can be satisfied). Built once at
  /// Graph build time; drives index-sliced candidate generation.
  const AttrRangeIndex* RangeIndex(LabelId label, AttrId a) const;

  /// Global active domain adom(A): sorted unique values of attribute `a`.
  const std::vector<AttrValue>& ActiveDomain(AttrId a) const;

  /// Active domain of `a` restricted to nodes labelled `label`; this is the
  /// value set a range variable on a query node with that label can take.
  const std::vector<AttrValue>& ActiveDomain(LabelId label, AttrId a) const;

  /// Size of the largest per-label active domain (the paper's |adom_m|).
  size_t MaxActiveDomainSize() const { return max_adom_size_; }

 private:
  friend class GraphBuilder;
  Graph() = default;

  std::shared_ptr<Schema> schema_;
  std::vector<LabelId> node_labels_;

  // Attribute tuples, pooled.
  std::vector<AttrEntry> attr_pool_;
  std::vector<size_t> attr_offsets_;  // size num_nodes()+1

  // CSR adjacency, each list sorted by (neighbor, edge_label).
  std::vector<AdjEntry> out_adj_;
  std::vector<size_t> out_offsets_;
  std::vector<AdjEntry> in_adj_;
  std::vector<size_t> in_offsets_;

  std::vector<NodeSet> label_index_;  // indexed by LabelId
  std::vector<NodeBitset> label_bitsets_;  // parallel to label_index_
  NodeSet empty_node_set_;
  NodeBitset empty_bitset_;

  // Attribute range indexes, one per (label, attr) pair present in G.
  std::map<std::pair<LabelId, AttrId>, AttrRangeIndex> attr_index_;

  std::vector<std::vector<AttrValue>> global_adom_;  // indexed by AttrId
  std::map<std::pair<LabelId, AttrId>, std::vector<AttrValue>> label_adom_;
  std::vector<AttrValue> empty_domain_;
  size_t max_adom_size_ = 0;
  size_t max_degree_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_GRAPH_H_
