#include "graph/graph.h"

#include <algorithm>

namespace fairsqg {

const AttrValue* Graph::GetAttr(NodeId v, AttrId a) const {
  auto tuple = attrs(v);
  auto it = std::lower_bound(
      tuple.begin(), tuple.end(), a,
      [](const AttrEntry& e, AttrId key) { return e.attr < key; });
  if (it != tuple.end() && it->attr == a) return &it->value;
  return nullptr;
}

bool Graph::HasEdge(NodeId from, NodeId to, LabelId edge_label) const {
  auto adj = OutEdges(from);
  auto it = std::lower_bound(
      adj.begin(), adj.end(), std::make_pair(to, edge_label),
      [](const AdjEntry& e, const std::pair<NodeId, LabelId>& key) {
        return e.neighbor != key.first ? e.neighbor < key.first
                                       : e.edge_label < key.second;
      });
  return it != adj.end() && it->neighbor == to && it->edge_label == edge_label;
}

const NodeSet& Graph::NodesWithLabel(LabelId label) const {
  if (label >= label_index_.size()) return empty_node_set_;
  return label_index_[label];
}

const NodeBitset& Graph::LabelBitset(LabelId label) const {
  if (label >= label_bitsets_.size()) return empty_bitset_;
  return label_bitsets_[label];
}

const AttrRangeIndex* Graph::RangeIndex(LabelId label, AttrId a) const {
  auto it = attr_index_.find({label, a});
  if (it == attr_index_.end()) return nullptr;
  return &it->second;
}

const std::vector<AttrValue>& Graph::ActiveDomain(AttrId a) const {
  if (a >= global_adom_.size()) return empty_domain_;
  return global_adom_[a];
}

const std::vector<AttrValue>& Graph::ActiveDomain(LabelId label, AttrId a) const {
  auto it = label_adom_.find({label, a});
  if (it == label_adom_.end()) return empty_domain_;
  return it->second;
}

}  // namespace fairsqg
