#include "graph/attr_range_index.h"

#include <algorithm>

namespace fairsqg {

AttrRangeIndex AttrRangeIndex::Build(
    std::vector<std::pair<AttrValue, NodeId>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const std::pair<AttrValue, NodeId>& a,
               const std::pair<AttrValue, NodeId>& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });
  AttrRangeIndex index;
  index.values_.reserve(entries.size());
  index.nodes_.reserve(entries.size());
  for (auto& [value, node] : entries) {
    if (value.is_numeric()) ++index.num_numeric_;
    index.values_.push_back(std::move(value));
    index.nodes_.push_back(node);
  }
  return index;
}

std::pair<size_t, size_t> AttrRangeIndex::SliceBounds(CompareOp op,
                                                      const AttrValue& x) const {
  // Compare's mixed-type rule: a numeric constant only ever matches numeric
  // values, a string constant only strings. The total order puts numerics
  // first, so the admissible region is the numeric prefix or string suffix.
  const size_t region_begin = x.is_numeric() ? 0 : num_numeric_;
  const size_t region_end = x.is_numeric() ? num_numeric_ : values_.size();

  auto begin = values_.begin() + static_cast<ptrdiff_t>(region_begin);
  auto end = values_.begin() + static_cast<ptrdiff_t>(region_end);
  // lower: first value !< x; upper: first value > x. Both stay inside the
  // region because cross-type comparisons order the regions themselves.
  const size_t lower = static_cast<size_t>(
      std::lower_bound(begin, end, x) - values_.begin());
  const size_t upper = static_cast<size_t>(
      std::upper_bound(begin, end, x) - values_.begin());

  switch (op) {
    case CompareOp::kGt:
      return {upper, region_end};
    case CompareOp::kGe:
      return {lower, region_end};
    case CompareOp::kEq:
      return {lower, upper};
    case CompareOp::kLe:
      return {region_begin, upper};
    case CompareOp::kLt:
      return {region_begin, lower};
  }
  return {0, 0};
}

std::span<const NodeId> AttrRangeIndex::SliceFor(CompareOp op,
                                                 const AttrValue& x) const {
  auto [lo, hi] = SliceBounds(op, x);
  return {nodes_.data() + lo, hi - lo};
}

}  // namespace fairsqg
