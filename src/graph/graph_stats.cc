#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace fairsqg {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.num_node_labels = g.schema().num_node_labels();
  s.num_edge_labels = g.schema().num_edge_labels();
  s.max_degree = g.max_degree();
  s.max_active_domain = g.MaxActiveDomainSize();

  size_t total_attrs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total_attrs += g.attrs(v).size();
  if (g.num_nodes() > 0) {
    s.avg_attrs_per_node =
        static_cast<double>(total_attrs) / static_cast<double>(g.num_nodes());
    s.avg_degree = 2.0 * static_cast<double>(g.num_edges()) /
                   static_cast<double>(g.num_nodes());
  }

  for (LabelId l = 0; l < g.schema().num_node_labels(); ++l) {
    size_t count = g.NodesWithLabel(l).size();
    if (count > 0) s.label_histogram.emplace_back(g.schema().NodeLabelName(l), count);
  }
  std::sort(s.label_histogram.begin(), s.label_histogram.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return s;
}

std::string FormatStatsRow(const std::string& dataset_name, const GraphStats& s) {
  std::ostringstream out;
  out << dataset_name << " |V|=" << s.num_nodes << " |E|=" << s.num_edges
      << " node-labels=" << s.num_node_labels
      << " edge-labels=" << s.num_edge_labels << " avg#attr=";
  out.precision(2);
  out << std::fixed << s.avg_attrs_per_node << " avg-deg=" << s.avg_degree
      << " max-deg=" << s.max_degree << " max|adom|=" << s.max_active_domain;
  return out.str();
}

}  // namespace fairsqg
