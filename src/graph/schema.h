#ifndef FAIRSQG_GRAPH_SCHEMA_H_
#define FAIRSQG_GRAPH_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace fairsqg {

/// \brief Bidirectional string<->id dictionary for interned names.
class Dictionary {
 public:
  /// Returns the id of `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  /// Id of `name`, or kInvalidLabel if unknown (no interning).
  uint32_t Lookup(std::string_view name) const;

  /// Name of `id`; id must be valid.
  const std::string& Name(uint32_t id) const;

  bool Contains(std::string_view name) const {
    return Lookup(name) != kInvalidLabel;
  }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// \brief The vocabulary of a data graph: node labels, edge labels, and
/// attribute names. Shared by the graph, templates, and instances so that
/// all of them speak in dense interned ids.
class Schema {
 public:
  LabelId InternNodeLabel(std::string_view name) {
    return node_labels_.Intern(name);
  }
  LabelId InternEdgeLabel(std::string_view name) {
    return edge_labels_.Intern(name);
  }
  AttrId InternAttr(std::string_view name) { return attrs_.Intern(name); }

  LabelId NodeLabelId(std::string_view name) const {
    return node_labels_.Lookup(name);
  }
  LabelId EdgeLabelId(std::string_view name) const {
    return edge_labels_.Lookup(name);
  }
  AttrId AttrIdOf(std::string_view name) const { return attrs_.Lookup(name); }

  const std::string& NodeLabelName(LabelId id) const {
    return node_labels_.Name(id);
  }
  const std::string& EdgeLabelName(LabelId id) const {
    return edge_labels_.Name(id);
  }
  const std::string& AttrName(AttrId id) const { return attrs_.Name(id); }

  size_t num_node_labels() const { return node_labels_.size(); }
  size_t num_edge_labels() const { return edge_labels_.size(); }
  size_t num_attrs() const { return attrs_.size(); }

 private:
  Dictionary node_labels_;
  Dictionary edge_labels_;
  Dictionary attrs_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_SCHEMA_H_
