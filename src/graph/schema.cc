#include "graph/schema.h"

#include "common/logging.h"

namespace fairsqg {

uint32_t Dictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Dictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidLabel : it->second;
}

const std::string& Dictionary::Name(uint32_t id) const {
  FAIRSQG_CHECK(id < names_.size()) << "dictionary id out of range: " << id;
  return names_[id];
}

}  // namespace fairsqg
