#ifndef FAIRSQG_GRAPH_GRAPH_STATS_H_
#define FAIRSQG_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fairsqg {

/// Summary statistics of a data graph (Table II of the paper).
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_node_labels = 0;
  size_t num_edge_labels = 0;
  double avg_attrs_per_node = 0.0;
  size_t max_degree = 0;
  double avg_degree = 0.0;
  size_t max_active_domain = 0;
  /// (label name, count), descending by count.
  std::vector<std::pair<std::string, size_t>> label_histogram;
};

/// Computes summary statistics over `g`.
GraphStats ComputeGraphStats(const Graph& g);

/// Renders the stats in the layout of the paper's Table II row.
std::string FormatStatsRow(const std::string& dataset_name, const GraphStats& s);

}  // namespace fairsqg

#endif  // FAIRSQG_GRAPH_GRAPH_STATS_H_
