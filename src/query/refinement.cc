#include "query/refinement.h"

#include <algorithm>

#include "common/logging.h"

namespace fairsqg {

std::vector<LatticeStep> LatticeNeighbors::RefineChildren(
    const QueryTemplate& tmpl, const VariableDomains& domains,
    const Instantiation& inst, const RefinementHints& hints) {
  std::vector<LatticeStep> out;
  for (RangeVarId x = 0; x < tmpl.num_range_vars(); ++x) {
    int32_t cur = inst.range_binding(x);
    int32_t next = kWildcardBinding;
    if (x < hints.restrict_range.size() && hints.restrict_range[x]) {
      // First allowed index strictly greater than the current binding
      // (wildcard is -1, so any allowed index qualifies from wildcard).
      const auto& allowed = hints.allowed_range_indexes[x];
      auto it = std::upper_bound(allowed.begin(), allowed.end(), cur);
      if (it == allowed.end()) continue;
      next = *it;
    } else {
      next = cur + 1;  // Wildcard (-1) -> 0, k -> k+1.
      if (next >= static_cast<int32_t>(domains.size(x))) continue;
    }
    Instantiation child = inst;
    child.set_range_binding(x, next);
    out.push_back({std::move(child), x});
  }
  for (EdgeVarId x = 0; x < tmpl.num_edge_vars(); ++x) {
    if (inst.edge_binding(x) != 0) continue;
    if (x < hints.edge_fixed_zero.size() && hints.edge_fixed_zero[x]) continue;
    Instantiation child = inst;
    child.set_edge_binding(x, 1);
    out.push_back({std::move(child),
                   static_cast<uint32_t>(tmpl.num_range_vars()) + x});
  }
  return out;
}

std::vector<LatticeStep> LatticeNeighbors::RelaxChildren(
    const QueryTemplate& tmpl, const VariableDomains& domains,
    const Instantiation& inst) {
  (void)domains;
  std::vector<LatticeStep> out;
  for (RangeVarId x = 0; x < tmpl.num_range_vars(); ++x) {
    int32_t cur = inst.range_binding(x);
    if (cur == kWildcardBinding) continue;  // Already the most relaxed.
    Instantiation child = inst;
    child.set_range_binding(x, cur - 1);  // 0 - 1 == kWildcardBinding.
    out.push_back({std::move(child), x});
  }
  for (EdgeVarId x = 0; x < tmpl.num_edge_vars(); ++x) {
    if (inst.edge_binding(x) != 1) continue;
    Instantiation child = inst;
    child.set_edge_binding(x, 0);
    out.push_back({std::move(child),
                   static_cast<uint32_t>(tmpl.num_range_vars()) + x});
  }
  return out;
}

}  // namespace fairsqg
