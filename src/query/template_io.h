#ifndef FAIRSQG_QUERY_TEMPLATE_IO_H_
#define FAIRSQG_QUERY_TEMPLATE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "query/query_template.h"

namespace fairsqg {

/// \brief Plain-text serialization of query templates, so workloads can be
/// stored next to their graphs and replayed.
///
/// Line-oriented format (`#` comments allowed):
/// \code
///   template
///   node u0 director
///   node u1 user
///   output u0
///   edge u1 u0 recommend          # fixed edge
///   vedge u1 u0 coReview          # edge with a Boolean variable
///   literal u1 yearsOfExp >= ?    # range variable (allocation order)
///   literal u0 domain = s:IT      # fixed literal (i:/d:/s: typed value)
/// \endcode
/// Node ids must be `u<k>` with k dense from 0; range/edge variable ids are
/// assigned in declaration order, matching QueryTemplate's allocation.
Status WriteTemplateText(const QueryTemplate& tmpl, std::ostream& out);
Status WriteTemplateFile(const QueryTemplate& tmpl, const std::string& path);

Result<QueryTemplate> ReadTemplateText(std::istream& in,
                                       std::shared_ptr<Schema> schema);
Result<QueryTemplate> ReadTemplateFile(const std::string& path,
                                       std::shared_ptr<Schema> schema);

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_TEMPLATE_IO_H_
