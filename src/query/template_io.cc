#include "query/template_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace fairsqg {

namespace {

std::string EncodeValue(const AttrValue& v) {
  if (v.is_int()) return "i:" + v.ToString();
  if (v.is_double()) return "d:" + v.ToString();
  return "s:" + v.as_string();
}

Result<AttrValue> DecodeValue(std::string_view text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad typed value: '" + std::string(text) + "'");
  }
  std::string_view body = text.substr(2);
  switch (text[0]) {
    case 'i': {
      FAIRSQG_ASSIGN_OR_RETURN(int64_t v, ParseInt64(body));
      return AttrValue(v);
    }
    case 'd': {
      FAIRSQG_ASSIGN_OR_RETURN(double v, ParseDouble(body));
      return AttrValue(v);
    }
    case 's':
      return AttrValue(std::string(body));
    default:
      return Status::InvalidArgument("bad value tag: '" + std::string(text) + "'");
  }
}

Result<CompareOp> ParseOp(std::string_view text) {
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "=") return CompareOp::kEq;
  if (text == "<=") return CompareOp::kLe;
  if (text == "<") return CompareOp::kLt;
  return Status::InvalidArgument("bad comparison op: '" + std::string(text) + "'");
}

Result<QNodeId> ParseNodeRef(std::string_view text, size_t num_nodes) {
  if (text.size() < 2 || text[0] != 'u') {
    return Status::InvalidArgument("bad node ref: '" + std::string(text) + "'");
  }
  FAIRSQG_ASSIGN_OR_RETURN(int64_t id, ParseInt64(text.substr(1)));
  if (id < 0 || id >= static_cast<int64_t>(num_nodes)) {
    return Status::InvalidArgument("node ref out of range: '" +
                                   std::string(text) + "'");
  }
  return static_cast<QNodeId>(id);
}

}  // namespace

Status WriteTemplateText(const QueryTemplate& tmpl, std::ostream& out) {
  const Schema& schema = tmpl.schema();
  out << "template\n";
  for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
    out << "node u" << u << " " << schema.NodeLabelName(tmpl.node_label(u))
        << "\n";
  }
  out << "output u" << tmpl.output_node() << "\n";
  for (const QueryEdge& e : tmpl.edges()) {
    out << (e.is_variable() ? "vedge" : "edge") << " u" << e.from << " u" << e.to
        << " " << schema.EdgeLabelName(e.label) << "\n";
  }
  for (const LiteralTemplate& l : tmpl.literals()) {
    out << "literal u" << l.node << " " << schema.AttrName(l.attr) << " "
        << CompareOpToString(l.op) << " ";
    if (l.is_variable()) {
      out << "?";
    } else {
      out << EncodeValue(l.fixed_value);
    }
    out << "\n";
  }
  if (!out.good()) return Status::IoError("template write failed");
  return Status::OK();
}

Status WriteTemplateFile(const QueryTemplate& tmpl, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return WriteTemplateText(tmpl, out);
}

Result<QueryTemplate> ReadTemplateText(std::istream& in,
                                       std::shared_ptr<Schema> schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  QueryTemplate tmpl(std::move(schema));
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  bool saw_output = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + why);
    };
    // Strip trailing comments.
    size_t hash = text.find('#');
    if (hash != std::string_view::npos) {
      text = StripWhitespace(text.substr(0, hash));
    }
    std::vector<std::string_view> raw = SplitString(text, ' ');
    std::vector<std::string_view> tok;
    for (std::string_view t : raw) {
      if (!t.empty()) tok.push_back(t);
    }
    if (tok.empty()) continue;

    if (tok[0] == "template") {
      saw_header = true;
    } else if (tok[0] == "node") {
      if (tok.size() != 3) return fail("node needs id and label");
      std::string expected = "u" + std::to_string(tmpl.num_nodes());
      if (tok[1] != expected) {
        return fail("node ids must be dense; expected " + expected);
      }
      tmpl.AddNode(tok[2]);
    } else if (tok[0] == "output") {
      if (tok.size() != 2) return fail("output needs a node ref");
      if (saw_output) return fail("duplicate 'output' line");
      Result<QNodeId> u = ParseNodeRef(tok[1], tmpl.num_nodes());
      if (!u.ok()) return fail(u.status().message());
      tmpl.SetOutputNode(*u);
      saw_output = true;
    } else if (tok[0] == "edge" || tok[0] == "vedge") {
      if (tok.size() != 4) return fail("edge needs from, to and label");
      Result<QNodeId> from = ParseNodeRef(tok[1], tmpl.num_nodes());
      if (!from.ok()) return fail(from.status().message());
      Result<QNodeId> to = ParseNodeRef(tok[2], tmpl.num_nodes());
      if (!to.ok()) return fail(to.status().message());
      if (tok[0] == "edge") {
        tmpl.AddEdge(*from, *to, tok[3]);
      } else {
        tmpl.AddVariableEdge(*from, *to, tok[3]);
      }
    } else if (tok[0] == "literal") {
      if (tok.size() != 5) return fail("literal needs node, attr, op, value");
      Result<QNodeId> u = ParseNodeRef(tok[1], tmpl.num_nodes());
      if (!u.ok()) return fail(u.status().message());
      Result<CompareOp> op = ParseOp(tok[3]);
      if (!op.ok()) return fail(op.status().message());
      if (tok[4] == "?") {
        tmpl.AddRangeLiteral(u.ValueOrDie(), tok[2], *op);
      } else {
        Result<AttrValue> value = DecodeValue(tok[4]);
        if (!value.ok()) return fail(value.status().message());
        tmpl.AddLiteral(*u, tok[2], *op, std::move(*value));
      }
    } else {
      return fail("unknown record '" + std::string(tok[0]) + "'");
    }
  }
  if (in.bad()) {
    return Status::IoError("template read failed after line " +
                           std::to_string(line_no) + " (truncated stream?)");
  }
  if (!saw_header) return Status::InvalidArgument("missing 'template' header");
  if (!saw_output && tmpl.num_nodes() > 1) {
    return Status::InvalidArgument("missing 'output' line");
  }
  FAIRSQG_RETURN_NOT_OK(tmpl.Validate());
  return tmpl;
}

Result<QueryTemplate> ReadTemplateFile(const std::string& path,
                                       std::shared_ptr<Schema> schema) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return ReadTemplateText(in, std::move(schema));
}

}  // namespace fairsqg
