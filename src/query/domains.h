#ifndef FAIRSQG_QUERY_DOMAINS_H_
#define FAIRSQG_QUERY_DOMAINS_H_

#include <vector>

#include "common/result.h"
#include "graph/attr_value.h"
#include "graph/graph.h"
#include "query/query_template.h"

namespace fairsqg {

/// \brief Per-range-variable value domains, ordered from most relaxed to
/// most refined.
///
/// The domain of a range variable on literal `u.A op x` is the active
/// domain `adom(A)` restricted to nodes with `u`'s label (Section IV,
/// template refinement restricts it further at spawn time). Ordering makes
/// one refinement step "advance the index by one":
///  * op in {>, >=}: ascending values (raising a lower bound refines);
///  * op in {<, <=}: descending values (lowering an upper bound refines).
/// Index -1 denotes the wildcard '_' (predicate dropped), the most relaxed
/// binding of any range variable.
class VariableDomains {
 public:
  /// Builds domains for every range variable of `tmpl` against `g`.
  static Result<VariableDomains> Build(const Graph& g, const QueryTemplate& tmpl);

  size_t num_vars() const { return domains_.size(); }

  /// Values of variable `x`, relaxed -> refined.
  const std::vector<AttrValue>& values(RangeVarId x) const { return domains_[x]; }

  size_t size(RangeVarId x) const { return domains_[x].size(); }

  /// Value at `index` of variable `x`; index must be in range.
  const AttrValue& value(RangeVarId x, size_t index) const {
    return domains_[x][index];
  }

  /// \brief A coarsened copy keeping at most `max_per_var` evenly spaced
  /// values per variable (always including the most relaxed and most
  /// refined values).
  ///
  /// The paper's template generator controls |I(Q)| by limiting the
  /// candidate bindings per variable (its largest spaces hold 800-1400
  /// instances); this is the corresponding knob for attributes with large
  /// active domains.
  VariableDomains Coarsened(size_t max_per_var) const;

  /// Total number of distinct instantiations:
  /// prod_x (|dom(x)|+1) * 2^|X_E| (the +1 is the wildcard).
  /// Saturates at SIZE_MAX on overflow.
  size_t InstanceSpaceSize(const QueryTemplate& tmpl) const;

 private:
  std::vector<std::vector<AttrValue>> domains_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_DOMAINS_H_
