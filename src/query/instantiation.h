#ifndef FAIRSQG_QUERY_INSTANTIATION_H_
#define FAIRSQG_QUERY_INSTANTIATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/domains.h"
#include "query/query_template.h"

namespace fairsqg {

/// Wildcard binding '_' of a range variable (predicate dropped).
inline constexpr int32_t kWildcardBinding = -1;

/// \brief A total binding `I` of a template's variables (Section II).
///
/// Range variables are bound by an index into their VariableDomains value
/// list (relaxed -> refined order) or by kWildcardBinding. Edge variables
/// are bound to 0 (edge absent) or 1 (edge present).
class Instantiation {
 public:
  Instantiation() = default;
  Instantiation(std::vector<int32_t> range_bindings,
                std::vector<uint8_t> edge_bindings)
      : range_(std::move(range_bindings)), edge_(std::move(edge_bindings)) {}

  /// The most relaxed instantiation (lattice root q_r): every range
  /// variable wildcarded, every optional edge absent.
  static Instantiation MostRelaxed(const QueryTemplate& tmpl);

  /// The most refined instantiation (lattice bottom q_b): every range
  /// variable at its last domain index, every optional edge present.
  /// Variables with empty domains stay wildcarded (no constant to bind).
  static Instantiation MostRefined(const QueryTemplate& tmpl,
                                   const VariableDomains& domains);

  size_t num_range_vars() const { return range_.size(); }
  size_t num_edge_vars() const { return edge_.size(); }

  int32_t range_binding(RangeVarId x) const { return range_[x]; }
  bool is_wildcard(RangeVarId x) const { return range_[x] == kWildcardBinding; }
  uint8_t edge_binding(EdgeVarId x) const { return edge_[x]; }

  void set_range_binding(RangeVarId x, int32_t index) { range_[x] = index; }
  void set_edge_binding(EdgeVarId x, uint8_t value) { edge_[x] = value; }

  /// \brief Refinement preorder `this >= other` (Section IV): every range
  /// variable of `this` is at least as selective as in `other`, and every
  /// edge present in `other` is present in `this`.
  bool Refines(const Instantiation& other) const;

  /// Strict refinement: Refines(other) and the bindings differ.
  bool StrictlyRefines(const Instantiation& other) const {
    return *this != other && Refines(other);
  }

  bool operator==(const Instantiation& other) const {
    return range_ == other.range_ && edge_ == other.edge_;
  }
  bool operator!=(const Instantiation& other) const { return !(*this == other); }

  /// Stable hash for visited-set deduplication.
  uint64_t Hash() const;

  /// E.g. "[x0=10 x1=_ | e0=1 e1=0]" with values resolved via `domains`.
  std::string ToString(const QueryTemplate& tmpl,
                       const VariableDomains& domains) const;

  struct Hasher {
    size_t operator()(const Instantiation& i) const {
      return static_cast<size_t>(i.Hash());
    }
  };

 private:
  std::vector<int32_t> range_;
  std::vector<uint8_t> edge_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_INSTANTIATION_H_
