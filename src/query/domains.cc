#include "query/domains.h"

#include <algorithm>
#include <limits>

namespace fairsqg {

Result<VariableDomains> VariableDomains::Build(const Graph& g,
                                               const QueryTemplate& tmpl) {
  FAIRSQG_RETURN_NOT_OK(tmpl.Validate());
  VariableDomains out;
  out.domains_.resize(tmpl.num_range_vars());
  for (RangeVarId x = 0; x < tmpl.num_range_vars(); ++x) {
    const LiteralTemplate& l = tmpl.literals()[tmpl.literal_of_var(x)];
    LabelId label = tmpl.node_label(l.node);
    const std::vector<AttrValue>& adom = g.ActiveDomain(label, l.attr);
    std::vector<AttrValue>& dom = out.domains_[x];
    dom = adom;  // Ascending by AttrValue order.
    if (l.op == CompareOp::kLt || l.op == CompareOp::kLe) {
      std::reverse(dom.begin(), dom.end());  // Descending: lowering refines.
    }
  }
  return out;
}

VariableDomains VariableDomains::Coarsened(size_t max_per_var) const {
  VariableDomains out;
  out.domains_.resize(domains_.size());
  for (size_t x = 0; x < domains_.size(); ++x) {
    const std::vector<AttrValue>& dom = domains_[x];
    std::vector<AttrValue>& coarse = out.domains_[x];
    if (dom.size() <= max_per_var || max_per_var == 0) {
      coarse = dom;
      continue;
    }
    // Evenly spaced picks, always keeping both endpoints.
    for (size_t i = 0; i < max_per_var; ++i) {
      size_t idx = (i * (dom.size() - 1)) / (max_per_var - 1);
      coarse.push_back(dom[idx]);
    }
    coarse.erase(std::unique(coarse.begin(), coarse.end(),
                             [](const AttrValue& a, const AttrValue& b) {
                               return a == b;
                             }),
                 coarse.end());
  }
  return out;
}

size_t VariableDomains::InstanceSpaceSize(const QueryTemplate& tmpl) const {
  size_t total = 1;
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  for (const auto& dom : domains_) {
    size_t options = dom.size() + 1;  // +1 for the wildcard.
    if (total > kMax / options) return kMax;
    total *= options;
  }
  for (size_t i = 0; i < tmpl.num_edge_vars(); ++i) {
    if (total > kMax / 2) return kMax;
    total *= 2;
  }
  return total;
}

}  // namespace fairsqg
