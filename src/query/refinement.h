#ifndef FAIRSQG_QUERY_REFINEMENT_H_
#define FAIRSQG_QUERY_REFINEMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "query/instantiation.h"

namespace fairsqg {

/// \brief Per-variable restrictions computed by template refinement
/// (procedure Spawn, Section IV-A): which domain indexes are worth
/// exploring, and which edge variables are fixed to 0.
///
/// Empty/default hints impose no restriction.
struct RefinementHints {
  /// For each range variable: sorted list of still-useful domain indexes.
  /// An empty inner vector with `restrict_range[x] == true` means no value
  /// remains useful (refining x further cannot change the match set).
  std::vector<std::vector<int32_t>> allowed_range_indexes;
  std::vector<bool> restrict_range;  // Whether allowed_range_indexes[x] applies.
  /// Edge variables pinned to 0 (no matching edge exists in G_q^d).
  std::vector<bool> edge_fixed_zero;

  static RefinementHints None(const QueryTemplate& tmpl) {
    RefinementHints h;
    h.allowed_range_indexes.resize(tmpl.num_range_vars());
    h.restrict_range.assign(tmpl.num_range_vars(), false);
    h.edge_fixed_zero.assign(tmpl.num_edge_vars(), false);
    return h;
  }
};

/// A lattice neighbor: the new instantiation and the index of the variable
/// that changed (range variables first, then edge variables).
struct LatticeStep {
  Instantiation inst;
  uint32_t var_index;

  /// True if the changed variable is a range variable of `tmpl`.
  bool IsRangeVar(const QueryTemplate& tmpl) const {
    return var_index < tmpl.num_range_vars();
  }
};

/// \brief Stepwise neighbor generation in the instance lattice
/// `(I(Q), <=_I)`: an edge of the lattice changes exactly one variable to
/// its next (or previous) value in the corresponding ordered domain.
class LatticeNeighbors {
 public:
  /// Children of `inst` in the refinement direction (procedure Spawn /
  /// SpawnF): for each variable, advance it one step if possible. `hints`
  /// restricts range indexes and skips edges fixed to 0; pass
  /// RefinementHints::None(tmpl) for the unrestricted lattice.
  static std::vector<LatticeStep> RefineChildren(const QueryTemplate& tmpl,
                                                 const VariableDomains& domains,
                                                 const Instantiation& inst,
                                                 const RefinementHints& hints);

  /// Children in the relaxation direction (procedure SpawnB): for each
  /// variable, step it back once (index k -> k-1, 0 -> wildcard, edge 1->0).
  static std::vector<LatticeStep> RelaxChildren(const QueryTemplate& tmpl,
                                                const VariableDomains& domains,
                                                const Instantiation& inst);
};

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_REFINEMENT_H_
