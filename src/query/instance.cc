#include "query/instance.h"

#include <deque>
#include <sstream>

namespace fairsqg {

QueryInstance QueryInstance::Materialize(const QueryTemplate& tmpl,
                                         const VariableDomains& domains,
                                         Instantiation inst) {
  QueryInstance q;
  q.tmpl_ = &tmpl;
  q.inst_ = std::move(inst);
  q.output_node_ = tmpl.output_node();

  // Edges active under I: fixed edges plus variable edges bound to 1.
  std::vector<const QueryEdge*> present;
  present.reserve(tmpl.num_edges());
  for (const QueryEdge& e : tmpl.edges()) {
    if (!e.is_variable() || q.inst_.edge_binding(e.variable) == 1) {
      present.push_back(&e);
    }
  }

  // Connected component of u_o over the present edges (undirected).
  q.active_mask_.assign(tmpl.num_nodes(), false);
  q.active_mask_[q.output_node_] = true;
  std::deque<QNodeId> queue{q.output_node_};
  while (!queue.empty()) {
    QNodeId v = queue.front();
    queue.pop_front();
    for (const QueryEdge* e : present) {
      QNodeId other = kInvalidNode;
      if (e->from == v) other = e->to;
      if (e->to == v) other = e->from;
      if (other != kInvalidNode && !q.active_mask_[other]) {
        q.active_mask_[other] = true;
        queue.push_back(other);
      }
    }
  }
  for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
    if (q.active_mask_[u]) q.active_nodes_.push_back(u);
  }
  for (const QueryEdge* e : present) {
    if (q.active_mask_[e->from] && q.active_mask_[e->to]) {
      q.active_edges_.push_back({e->from, e->to, e->label});
    }
  }

  // Bound literals: fixed literals as-is, variable literals resolved via
  // the domain index, wildcards dropped.
  q.node_literals_.resize(tmpl.num_nodes());
  for (const LiteralTemplate& l : tmpl.literals()) {
    if (l.is_variable()) {
      int32_t binding = q.inst_.range_binding(l.variable);
      if (binding == kWildcardBinding) continue;
      q.node_literals_[l.node].push_back(
          {l.node, l.attr, l.op,
           domains.value(l.variable, static_cast<size_t>(binding))});
    } else {
      q.node_literals_[l.node].push_back({l.node, l.attr, l.op, l.fixed_value});
    }
  }
  return q;
}

std::string QueryInstance::ToString() const {
  std::ostringstream out;
  out << "QueryInstance(u_o=u" << output_node_ << ")\n";
  for (QNodeId u : active_nodes_) {
    out << "  u" << u << ": " << tmpl_->schema().NodeLabelName(tmpl_->node_label(u));
    for (const BoundLiteral& l : node_literals_[u]) {
      out << " [" << tmpl_->schema().AttrName(l.attr) << " "
          << CompareOpToString(l.op) << " " << l.value.ToString() << "]";
    }
    out << "\n";
  }
  for (const InstanceEdge& e : active_edges_) {
    out << "  u" << e.from << " -" << tmpl_->schema().EdgeLabelName(e.label)
        << "-> u" << e.to << "\n";
  }
  return out.str();
}

}  // namespace fairsqg
