#ifndef FAIRSQG_QUERY_QUERY_TEMPLATE_H_
#define FAIRSQG_QUERY_QUERY_TEMPLATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/attr_value.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace fairsqg {

/// Index of a query node within a template.
using QNodeId = uint32_t;
/// Index of a query edge within a template.
using QEdgeId = uint32_t;
/// Index of a range variable (into QueryTemplate::range_vars()).
using RangeVarId = uint32_t;
/// Index of an edge variable (into QueryTemplate::edge_vars()).
using EdgeVarId = uint32_t;

inline constexpr uint32_t kNoVariable = 0xffffffffu;

/// A search predicate `u.A op x` where x is either a fixed constant or a
/// range variable to be bound at instantiation time.
struct LiteralTemplate {
  QNodeId node = 0;
  AttrId attr = kInvalidAttr;
  CompareOp op = CompareOp::kGe;
  /// kNoVariable for a fixed literal, else the RangeVarId bound to this
  /// literal (each range variable parameterizes exactly one literal).
  uint32_t variable = kNoVariable;
  /// Constant for fixed literals; ignored when variable != kNoVariable.
  AttrValue fixed_value;

  bool is_variable() const { return variable != kNoVariable; }
};

/// A query edge; `variable == kNoVariable` means the edge is always present.
struct QueryEdge {
  QNodeId from = 0;
  QNodeId to = 0;
  LabelId label = kInvalidLabel;
  uint32_t variable = kNoVariable;  // EdgeVarId if this edge is optional

  bool is_variable() const { return variable != kNoVariable; }
};

/// \brief A query template `Q(u_o)`: a connected, labelled query graph with
/// parameterized search predicates (Section II of the paper).
///
/// Range variables appear in literals `u.A op x` with op in {>, >=, <=, <};
/// the refinement preorder of Section IV is defined for inequality
/// predicates, so equality literals must use fixed constants. Boolean edge
/// variables switch optional edges on and off. The designated output node
/// `u_o` is the node whose match set `q(G)` the measures are computed over.
class QueryTemplate {
 public:
  explicit QueryTemplate(std::shared_ptr<Schema> schema)
      : schema_(std::move(schema)) {}

  /// Adds a query node; the first added node is the output node by default.
  QNodeId AddNode(std::string_view label);
  QNodeId AddNode(LabelId label);

  void SetOutputNode(QNodeId u) { output_node_ = u; }
  QNodeId output_node() const { return output_node_; }

  /// Adds a fixed search predicate `u.A op value`.
  void AddLiteral(QNodeId u, std::string_view attr, CompareOp op, AttrValue value);
  void AddLiteral(QNodeId u, AttrId attr, CompareOp op, AttrValue value);

  /// Adds a parameterized predicate `u.A op x`; returns the new variable id.
  /// op must be an inequality (the refinement preorder needs a direction).
  RangeVarId AddRangeLiteral(QNodeId u, std::string_view attr, CompareOp op);
  RangeVarId AddRangeLiteral(QNodeId u, AttrId attr, CompareOp op);

  /// Adds an always-present edge.
  QEdgeId AddEdge(QNodeId from, QNodeId to, std::string_view label);
  QEdgeId AddEdge(QNodeId from, QNodeId to, LabelId label);

  /// Adds an optional edge controlled by a Boolean edge variable; returns
  /// the edge variable id.
  EdgeVarId AddVariableEdge(QNodeId from, QNodeId to, std::string_view label);
  EdgeVarId AddVariableEdge(QNodeId from, QNodeId to, LabelId label);

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return edges_.size(); }
  LabelId node_label(QNodeId u) const { return node_labels_[u]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  const QueryEdge& edge(QEdgeId e) const { return edges_[e]; }
  const std::vector<LiteralTemplate>& literals() const { return literals_; }

  /// Literal indexes attached to query node `u`.
  const std::vector<uint32_t>& literals_of(QNodeId u) const;

  size_t num_range_vars() const { return range_var_literal_.size(); }
  size_t num_edge_vars() const { return edge_var_edge_.size(); }
  /// |X| = |X_L| + |X_E|.
  size_t num_vars() const { return num_range_vars() + num_edge_vars(); }

  /// Literal index parameterized by range variable `x`.
  uint32_t literal_of_var(RangeVarId x) const { return range_var_literal_[x]; }
  /// Edge index controlled by edge variable `x`.
  QEdgeId edge_of_var(EdgeVarId x) const { return edge_var_edge_[x]; }

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }

  /// Diameter (longest shortest path, undirected) of the template graph
  /// with ALL edges present; the paper's `d` for `G_q^d`.
  int Diameter() const;

  /// Checks structural invariants: output node valid, endpoints in range,
  /// template connected when all edges are present, inequality ops on all
  /// range variables, attrs/labels known to the schema.
  Status Validate() const;

  /// Human-readable multi-line description.
  std::string ToString() const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<LabelId> node_labels_;
  std::vector<QueryEdge> edges_;
  std::vector<LiteralTemplate> literals_;
  std::vector<std::vector<uint32_t>> node_literals_;  // per node
  std::vector<uint32_t> range_var_literal_;           // RangeVarId -> literal idx
  std::vector<QEdgeId> edge_var_edge_;                // EdgeVarId -> edge idx
  QNodeId output_node_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_QUERY_TEMPLATE_H_
