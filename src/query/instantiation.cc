#include "query/instantiation.h"

#include <sstream>

#include "common/hash.h"

namespace fairsqg {

Instantiation Instantiation::MostRelaxed(const QueryTemplate& tmpl) {
  return Instantiation(
      std::vector<int32_t>(tmpl.num_range_vars(), kWildcardBinding),
      std::vector<uint8_t>(tmpl.num_edge_vars(), 0));
}

Instantiation Instantiation::MostRefined(const QueryTemplate& tmpl,
                                         const VariableDomains& domains) {
  std::vector<int32_t> range(tmpl.num_range_vars(), kWildcardBinding);
  for (RangeVarId x = 0; x < tmpl.num_range_vars(); ++x) {
    if (domains.size(x) > 0) {
      range[x] = static_cast<int32_t>(domains.size(x)) - 1;
    }
  }
  return Instantiation(std::move(range),
                       std::vector<uint8_t>(tmpl.num_edge_vars(), 1));
}

bool Instantiation::Refines(const Instantiation& other) const {
  for (size_t x = 0; x < range_.size(); ++x) {
    if (other.range_[x] == kWildcardBinding) continue;  // '_' is most relaxed.
    if (range_[x] == kWildcardBinding) return false;
    if (range_[x] < other.range_[x]) return false;
  }
  for (size_t x = 0; x < edge_.size(); ++x) {
    if (edge_[x] < other.edge_[x]) return false;  // Edge present in other only.
  }
  return true;
}

uint64_t Instantiation::Hash() const {
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (int32_t b : range_) HashCombine(&h, Mix64(static_cast<uint64_t>(b) + 2));
  for (uint8_t b : edge_) HashCombine(&h, Mix64(b + 11));
  return h;
}

std::string Instantiation::ToString(const QueryTemplate& tmpl,
                                    const VariableDomains& domains) const {
  (void)tmpl;
  std::ostringstream out;
  out << "[";
  for (size_t x = 0; x < range_.size(); ++x) {
    if (x > 0) out << " ";
    out << "x" << x << "=";
    if (range_[x] == kWildcardBinding) {
      out << "_";
    } else {
      out << domains.value(static_cast<RangeVarId>(x),
                           static_cast<size_t>(range_[x]))
                 .ToString();
    }
  }
  if (!edge_.empty()) {
    out << " |";
    for (size_t x = 0; x < edge_.size(); ++x) {
      out << " e" << x << "=" << static_cast<int>(edge_[x]);
    }
  }
  out << "]";
  return out.str();
}

}  // namespace fairsqg
