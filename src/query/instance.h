#ifndef FAIRSQG_QUERY_INSTANCE_H_
#define FAIRSQG_QUERY_INSTANCE_H_

#include <string>
#include <vector>

#include "graph/attr_value.h"
#include "query/instantiation.h"

namespace fairsqg {

/// A fully bound search predicate of a query instance.
struct BoundLiteral {
  QNodeId node;
  AttrId attr;
  CompareOp op;
  AttrValue value;
};

/// An active (present) edge of a query instance.
struct InstanceEdge {
  QNodeId from;
  QNodeId to;
  LabelId label;
};

/// \brief A query instance `q(u_o)` of a template induced by an
/// instantiation `I` (Section II).
///
/// Per the paper, the instance keeps exactly the edges that are active
/// under `I` *and* lie in the connected component of the output node;
/// wildcarded predicates are dropped. Query nodes outside u_o's component
/// do not constrain the match set and are excluded from active_nodes().
class QueryInstance {
 public:
  /// Materializes `inst` over `tmpl`, resolving range bindings via `domains`.
  static QueryInstance Materialize(const QueryTemplate& tmpl,
                                   const VariableDomains& domains,
                                   Instantiation inst);

  const Instantiation& instantiation() const { return inst_; }
  const QueryTemplate& tmpl() const { return *tmpl_; }

  QNodeId output_node() const { return output_node_; }

  /// Query nodes in u_o's connected component, ascending.
  const std::vector<QNodeId>& active_nodes() const { return active_nodes_; }
  bool is_active(QNodeId u) const { return active_mask_[u]; }

  /// Active edges within u_o's component.
  const std::vector<InstanceEdge>& active_edges() const { return active_edges_; }

  /// Bound literals of node `u` (wildcards dropped); indexed by QNodeId.
  const std::vector<BoundLiteral>& literals_of(QNodeId u) const {
    return node_literals_[u];
  }

  /// Number of active edges (the paper's instance size |q|).
  size_t num_active_edges() const { return active_edges_.size(); }

  std::string ToString() const;

 private:
  const QueryTemplate* tmpl_ = nullptr;
  Instantiation inst_;
  QNodeId output_node_ = 0;
  std::vector<QNodeId> active_nodes_;
  std::vector<bool> active_mask_;
  std::vector<InstanceEdge> active_edges_;
  std::vector<std::vector<BoundLiteral>> node_literals_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_QUERY_INSTANCE_H_
