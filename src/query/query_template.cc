#include "query/query_template.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/logging.h"

namespace fairsqg {

QNodeId QueryTemplate::AddNode(std::string_view label) {
  return AddNode(schema_->InternNodeLabel(label));
}

QNodeId QueryTemplate::AddNode(LabelId label) {
  QNodeId id = static_cast<QNodeId>(node_labels_.size());
  node_labels_.push_back(label);
  node_literals_.emplace_back();
  return id;
}

void QueryTemplate::AddLiteral(QNodeId u, std::string_view attr, CompareOp op,
                               AttrValue value) {
  AddLiteral(u, schema_->InternAttr(attr), op, std::move(value));
}

void QueryTemplate::AddLiteral(QNodeId u, AttrId attr, CompareOp op,
                               AttrValue value) {
  FAIRSQG_CHECK(u < num_nodes()) << "literal on unknown query node";
  LiteralTemplate l;
  l.node = u;
  l.attr = attr;
  l.op = op;
  l.fixed_value = std::move(value);
  node_literals_[u].push_back(static_cast<uint32_t>(literals_.size()));
  literals_.push_back(std::move(l));
}

RangeVarId QueryTemplate::AddRangeLiteral(QNodeId u, std::string_view attr,
                                          CompareOp op) {
  return AddRangeLiteral(u, schema_->InternAttr(attr), op);
}

RangeVarId QueryTemplate::AddRangeLiteral(QNodeId u, AttrId attr, CompareOp op) {
  FAIRSQG_CHECK(u < num_nodes()) << "literal on unknown query node";
  RangeVarId var = static_cast<RangeVarId>(range_var_literal_.size());
  LiteralTemplate l;
  l.node = u;
  l.attr = attr;
  l.op = op;
  l.variable = var;
  node_literals_[u].push_back(static_cast<uint32_t>(literals_.size()));
  range_var_literal_.push_back(static_cast<uint32_t>(literals_.size()));
  literals_.push_back(std::move(l));
  return var;
}

QEdgeId QueryTemplate::AddEdge(QNodeId from, QNodeId to, std::string_view label) {
  return AddEdge(from, to, schema_->InternEdgeLabel(label));
}

QEdgeId QueryTemplate::AddEdge(QNodeId from, QNodeId to, LabelId label) {
  QEdgeId id = static_cast<QEdgeId>(edges_.size());
  edges_.push_back({from, to, label, kNoVariable});
  return id;
}

EdgeVarId QueryTemplate::AddVariableEdge(QNodeId from, QNodeId to,
                                         std::string_view label) {
  return AddVariableEdge(from, to, schema_->InternEdgeLabel(label));
}

EdgeVarId QueryTemplate::AddVariableEdge(QNodeId from, QNodeId to, LabelId label) {
  EdgeVarId var = static_cast<EdgeVarId>(edge_var_edge_.size());
  QEdgeId e = static_cast<QEdgeId>(edges_.size());
  edges_.push_back({from, to, label, var});
  edge_var_edge_.push_back(e);
  return var;
}

const std::vector<uint32_t>& QueryTemplate::literals_of(QNodeId u) const {
  FAIRSQG_CHECK(u < num_nodes());
  return node_literals_[u];
}

int QueryTemplate::Diameter() const {
  const size_t n = num_nodes();
  if (n == 0) return 0;
  // Undirected adjacency with all edges present.
  std::vector<std::vector<QNodeId>> adj(n);
  for (const QueryEdge& e : edges_) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  int diameter = 0;
  std::vector<int> dist(n);
  for (QNodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<QNodeId> queue{s};
    dist[s] = 0;
    while (!queue.empty()) {
      QNodeId v = queue.front();
      queue.pop_front();
      diameter = std::max(diameter, dist[v]);
      for (QNodeId w : adj[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  return diameter;
}

Status QueryTemplate::Validate() const {
  if (num_nodes() == 0) return Status::InvalidArgument("template has no nodes");
  if (output_node_ >= num_nodes()) {
    return Status::InvalidArgument("output node out of range");
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const QueryEdge& e = edges_[i];
    if (e.from >= num_nodes() || e.to >= num_nodes()) {
      return Status::InvalidArgument("query edge endpoint out of range");
    }
    if (e.from == e.to) return Status::InvalidArgument("self-loop query edge");
    for (size_t j = i + 1; j < edges_.size(); ++j) {
      const QueryEdge& o = edges_[j];
      if (e.from == o.from && e.to == o.to && e.label == o.label) {
        return Status::InvalidArgument(
            "duplicate query edge (same endpoints and label)");
      }
    }
  }
  for (const LiteralTemplate& l : literals_) {
    if (l.attr == kInvalidAttr) return Status::InvalidArgument("literal attr unset");
    if (l.is_variable() && l.op == CompareOp::kEq) {
      return Status::InvalidArgument(
          "range variables require an inequality op; '=' literals must be fixed");
    }
  }
  // Connectivity with all edges present (the template must be a connected
  // graph per its definition; instances keep u_o's component).
  if (num_nodes() > 1) {
    std::vector<bool> seen(num_nodes(), false);
    std::deque<QNodeId> queue{output_node_};
    seen[output_node_] = true;
    size_t reached = 1;
    while (!queue.empty()) {
      QNodeId v = queue.front();
      queue.pop_front();
      for (const QueryEdge& e : edges_) {
        QNodeId other = kInvalidNode;
        if (e.from == v) other = e.to;
        if (e.to == v) other = e.from;
        if (other != kInvalidNode && !seen[other]) {
          seen[other] = true;
          ++reached;
          queue.push_back(other);
        }
      }
    }
    if (reached != num_nodes()) {
      return Status::InvalidArgument("template graph is not connected");
    }
  }
  return Status::OK();
}

std::string QueryTemplate::ToString() const {
  std::ostringstream out;
  out << "QueryTemplate(u_o=u" << output_node_ << ", |V|=" << num_nodes()
      << ", |E|=" << num_edges() << ", |X_L|=" << num_range_vars()
      << ", |X_E|=" << num_edge_vars() << ")\n";
  for (QNodeId u = 0; u < num_nodes(); ++u) {
    out << "  u" << u << ": " << schema_->NodeLabelName(node_labels_[u]);
    for (uint32_t li : node_literals_[u]) {
      const LiteralTemplate& l = literals_[li];
      out << " [" << schema_->AttrName(l.attr) << " " << CompareOpToString(l.op)
          << " ";
      if (l.is_variable()) {
        out << "x" << l.variable;
      } else {
        out << l.fixed_value.ToString();
      }
      out << "]";
    }
    out << "\n";
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const QueryEdge& e = edges_[i];
    out << "  u" << e.from << " -" << schema_->EdgeLabelName(e.label) << "-> u"
        << e.to;
    if (e.is_variable()) out << " [xe" << e.variable << "]";
    out << "\n";
  }
  return out.str();
}

}  // namespace fairsqg
