#ifndef FAIRSQG_COMMON_LOGGING_H_
#define FAIRSQG_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

#include "common/status.h"

namespace fairsqg {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// \brief Builds one log line and emits it to stderr on destruction.
///
/// FATAL messages abort the process after emission; this is the mechanism
/// behind FAIRSQG_CHECK in an exception-free codebase.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards the streamed expression; used for disabled log levels.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// \brief Minimum severity emitted by FAIRSQG_LOG; defaults to kInfo.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace fairsqg

#define FAIRSQG_LOG(level)                                     \
  ::fairsqg::internal_logging::LogMessage(                     \
      ::fairsqg::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal assertion; evaluates `cond`, and on failure logs the streamed
/// message and aborts. Active in all build modes.
#define FAIRSQG_CHECK(cond)                     \
  (cond) ? (void)0                              \
         : ::fairsqg::internal_logging::Voidify() & FAIRSQG_LOG(Fatal) \
               << "Check failed: " #cond " "

#define FAIRSQG_CHECK_OK(expr)                                          \
  do {                                                                  \
    ::fairsqg::Status _st = (expr);                                     \
    FAIRSQG_CHECK(_st.ok()) << _st.ToString();                          \
  } while (false)

#define FAIRSQG_DCHECK(cond) FAIRSQG_CHECK(cond)

namespace fairsqg::internal_logging {

/// Helper giving the ternary in FAIRSQG_CHECK a void-typed arm.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace fairsqg::internal_logging

#endif  // FAIRSQG_COMMON_LOGGING_H_
