#ifndef FAIRSQG_COMMON_FLAGS_H_
#define FAIRSQG_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace fairsqg {

/// \brief Minimal `--name=value` / `--name value` command-line parser used by
/// the example binaries and the benchmark harness.
///
/// Unknown flags are rejected so that typos surface immediately.
class FlagParser {
 public:
  /// Registers a flag with a default value and help text.
  void DefineInt64(const std::string& name, int64_t default_value,
                   const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or bad values.
  /// Positional arguments are collected into positional().
  Status Parse(int argc, const char* const* argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per flag: name, default, help.
  std::string HelpString() const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromText(const std::string& name, const std::string& text);
  const Flag& GetOrDie(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_FLAGS_H_
