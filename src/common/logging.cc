#include "common/logging.h"

#include <cstdlib>

namespace fairsqg {

namespace {
LogLevel g_threshold = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }
LogLevel GetLogThreshold() { return g_threshold; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace fairsqg
