#include "common/status.h"

namespace fairsqg {

namespace {
const std::string kEmptyMessage;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyMessage : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

}  // namespace fairsqg
