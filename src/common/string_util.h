#ifndef FAIRSQG_COMMON_STRING_UTIL_H_
#define FAIRSQG_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fairsqg {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins the elements of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief Levenshtein edit distance between two strings.
///
/// Used by the diversity measure's attribute-tuple distance. Cost is
/// O(|a|*|b|) with O(min) memory.
size_t EditDistance(std::string_view a, std::string_view b);

/// Edit distance normalized to [0, 1] by max(|a|, |b|); 0 for two empties.
double NormalizedEditDistance(std::string_view a, std::string_view b);

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_STRING_UTIL_H_
