#ifndef FAIRSQG_COMMON_FAULT_INJECTION_H_
#define FAIRSQG_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

namespace fairsqg::fault {

/// \brief Compile-time-gated fault injection at named sites.
///
/// Production code marks degradable points with FAIRSQG_FAULT_POINT("site").
/// With the `FAIRSQG_FAULT_INJECTION` CMake option OFF (the default) the
/// macro expands to the constant `false` — zero code, zero cost. With the
/// option ON, tests arm sites with a FaultSpec and the macro reports/acts:
///
///  - `kFail`  : the macro returns true and the caller skips the optional
///               work (cache admission, a reserve() hint, ...);
///  - `kStall` : Hit() sleeps for `stall_micros` and returns false — the
///               caller proceeds, just late (models a wedged match step).
///
/// Sites currently compiled in:
///   matcher.step      backtracking inner loop (stall → pathological match)
///   cache.lookup      MatchSetCache::Lookup (fail → forced miss)
///   cache.insert      MatchSetCache::Insert (fail → admission refused)
///   verifier.reserve  match-set reserve hints (fail → allocation throttled)
///   cache.reserve     signature-buffer reserve (fail → allocation throttled)
///
/// The registry itself always compiles (so tests link in either mode);
/// only the call sites are gated. Arm/Disarm are thread-safe; Hit() on an
/// unarmed build is a single relaxed atomic load.
struct FaultSpec {
  enum class Action { kNone, kFail, kStall };
  Action action = Action::kNone;
  /// kStall: how long each firing sleeps.
  uint64_t stall_micros = 0;
  /// Fire only from the N-th hit on (1 = first hit; 0 behaves like 1).
  uint64_t trigger_after = 0;
  /// Stop firing after this many firings (0 = unlimited).
  uint64_t max_fires = 0;
};

/// Arms `site`; replaces any previous spec and resets its counters.
void Arm(const std::string& site, FaultSpec spec);
void Disarm(const std::string& site);
void DisarmAll();

/// Times the site was reached (armed or not) since it was last armed.
uint64_t HitCount(const std::string& site);

/// True when the library was built with -DFAIRSQG_FAULT_INJECTION=ON, i.e.
/// the fault points are compiled in and Arm() can take effect.
bool InjectionEnabled();

/// Implementation hook behind FAIRSQG_FAULT_POINT; see FaultSpec.
bool Hit(const char* site);

}  // namespace fairsqg::fault

#ifdef FAIRSQG_FAULT_INJECTION
#define FAIRSQG_FAULT_POINT(site) (::fairsqg::fault::Hit(site))
#else
#define FAIRSQG_FAULT_POINT(site) (false)
#endif

#endif  // FAIRSQG_COMMON_FAULT_INJECTION_H_
