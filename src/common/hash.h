#ifndef FAIRSQG_COMMON_HASH_H_
#define FAIRSQG_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace fairsqg {

/// Mixes `value` into a running 64-bit hash (boost::hash_combine style,
/// widened to 64 bits). Used for canonical instantiation keys.
inline void HashCombine(uint64_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// Finalizer giving good avalanche behaviour for sequential ids.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_HASH_H_
