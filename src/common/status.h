#ifndef FAIRSQG_COMMON_STATUS_H_
#define FAIRSQG_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace fairsqg {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail, in the Arrow/RocksDB style.
///
/// The library does not use exceptions; every fallible public entry point
/// returns a Status (or a Result<T>, see result.h). The OK state is
/// allocation-free.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory functions, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status IoError(std::string msg);
  static Status Internal(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// Message text; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK; non-OK statuses are rare so the allocation is acceptable.
  std::unique_ptr<Rep> rep_;
};

}  // namespace fairsqg

/// Propagates a non-OK Status from the enclosing function.
#define FAIRSQG_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::fairsqg::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // FAIRSQG_COMMON_STATUS_H_
