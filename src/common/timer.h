#ifndef FAIRSQG_COMMON_TIMER_H_
#define FAIRSQG_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fairsqg {

/// \brief Nanoseconds on the process-wide monotonic clock.
///
/// The single time source for every duration the system records: Timer,
/// RunContext deadlines, trace spans and metric timestamps all derive from
/// steady_clock through this helper, so durations computed across
/// subsystems are always non-negative and mutually comparable (never mixed
/// with the adjustable system_clock).
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness and
/// the online algorithm's delay-time accounting.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_TIMER_H_
