#include "common/run_context.h"

#include "common/timer.h"

namespace fairsqg {

void RunContext::SetDeadlineAfterMillis(double ms) {
  int64_t delta = static_cast<int64_t>(ms * 1e6);
  int64_t at = MonotonicNanos() + (delta > 0 ? delta : 0);
  // 0 means "no deadline"; an exact collision just shifts by one nano.
  deadline_ns_ = at == 0 ? 1 : at;
}

bool RunContext::HardExpired() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return deadline_ns_ != 0 && MonotonicNanos() >= deadline_ns_;
}

bool RunContext::PollVerification() {
  if (Expired()) return true;
  uint64_t count = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (poll_limit_ != 0 && count >= poll_limit_) {
    polls_exhausted_.store(true, std::memory_order_relaxed);
    if (count > poll_limit_) {
      // Lost the admission race against the poll that hit the limit:
      // refuse and roll the count back so exactly poll_limit_ are admitted.
      polls_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace fairsqg
