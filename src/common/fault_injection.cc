#include "common/fault_injection.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace fairsqg::fault {

namespace {

struct SiteState {
  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: outlives all threads.
  return *r;
}

/// Armed-site count; Hit() exits on one relaxed load when nothing is armed,
/// keeping the compiled-in-but-idle hot-loop cost to a single atomic read.
std::atomic<uint64_t> armed_sites{0};

}  // namespace

void Arm(const std::string& site, FaultSpec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.insert_or_assign(site, SiteState{spec, 0, 0});
  (void)it;
  if (inserted) armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(site) > 0) {
    armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  armed_sites.fetch_sub(r.sites.size(), std::memory_order_relaxed);
  r.sites.clear();
}

uint64_t HitCount(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

bool InjectionEnabled() {
#ifdef FAIRSQG_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

bool Hit(const char* site) {
  if (armed_sites.load(std::memory_order_relaxed) == 0) return false;
  uint64_t stall_micros = 0;
  bool fail = false;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return false;
    SiteState& s = it->second;
    ++s.hits;
    uint64_t first = s.spec.trigger_after == 0 ? 1 : s.spec.trigger_after;
    if (s.hits < first) return false;
    if (s.spec.max_fires != 0 && s.fires >= s.spec.max_fires) return false;
    ++s.fires;
    switch (s.spec.action) {
      case FaultSpec::Action::kNone:
        return false;
      case FaultSpec::Action::kFail:
        fail = true;
        break;
      case FaultSpec::Action::kStall:
        stall_micros = s.spec.stall_micros;
        break;
    }
  }
  // Sleep outside the registry lock so stalls do not serialize other sites.
  if (stall_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_micros));
  }
  return fail;
}

}  // namespace fairsqg::fault
