#ifndef FAIRSQG_COMMON_RANDOM_H_
#define FAIRSQG_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairsqg {

/// \brief Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+).
///
/// All workload generators and randomized algorithms in the library draw
/// from this engine so that every dataset, template, and stream is exactly
/// reproducible from its seed across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Approximately Zipf-distributed rank in [0, n) with exponent s > 0.
  /// Used for skewed degree/attribute distributions in synthetic graphs.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples k distinct indices from [0, n); k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_RANDOM_H_
