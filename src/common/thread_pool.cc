#include "common/thread_pool.h"

#include <deque>
#include <utility>

#include "common/logging.h"

namespace fairsqg {

namespace {

// Identifies the pool (and slot) owning the current thread so Submit can
// route recursive submissions to the caller's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_index = ThreadPool::kNotAWorker;

}  // namespace

struct ThreadPool::WorkerQueue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> stolen{0};
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain: never drop queued work (tasks may carry results the coordinator
  // still references). Exceptions not collected via Wait() are swallowed.
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::WorkerIndex() const {
  return tls_pool == this ? tls_index : kNotAWorker;
}

size_t ThreadPool::CurrentWorkerId() { return tls_index; }

void ThreadPool::Enqueue(size_t worker, std::function<void()> task) {
  {
    // Account before publishing so a racing completion can never observe
    // pending_ == 0 while this task is in flight.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    FAIRSQG_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    ++pending_;
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[worker]->mutex);
    // A worker pushes to the front of its own deque (depth-first locality
    // for recursive fan-out); everything else appends.
    if (WorkerIndex() == worker) {
      queues_[worker]->tasks.push_front(std::move(task));
    } else {
      queues_[worker]->tasks.push_back(std::move(task));
    }
  }
  work_cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t w = WorkerIndex();
  if (w == kNotAWorker) {
    w = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  Enqueue(w, std::move(task));
}

void ThreadPool::SubmitOn(size_t worker, std::function<void()> task) {
  FAIRSQG_CHECK(worker < queues_.size()) << "SubmitOn: bad worker index";
  Enqueue(worker, std::move(task));
}

bool ThreadPool::TryPop(size_t index, std::function<void()>* task,
                        bool* was_stolen) {
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    if (!queues_[index]->tasks.empty()) {
      *task = std::move(queues_[index]->tasks.front());
      queues_[index]->tasks.pop_front();
      *was_stolen = false;
      return true;
    }
  }
  // Steal from the back of a sibling's deque (opposite end from the
  // owner's pops, minimizing contention and keeping the owner's hot work).
  for (size_t k = 1; k < queues_.size(); ++k) {
    size_t j = (index + k) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[j]->mutex);
    if (!queues_[j]->tasks.empty()) {
      *task = std::move(queues_[j]->tasks.back());
      queues_[j]->tasks.pop_back();
      *was_stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()> task, size_t worker,
                         bool was_stolen) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
  queues_[worker]->executed.fetch_add(1, std::memory_order_relaxed);
  if (was_stolen) {
    queues_[worker]->stolen.fetch_add(1, std::memory_order_relaxed);
  }
  bool quiesced = false;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    quiesced = (--pending_ == 0);
  }
  if (quiesced) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_index = index;
  std::function<void()> task;
  bool was_stolen = false;
  while (true) {
    if (TryPop(index, &task, &was_stolen)) {
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --queued_;
      }
      RunTask(std::move(task), index, was_stolen);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::Wait() {
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    std::swap(error, first_error_);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats total;
  for (const std::unique_ptr<WorkerQueue>& q : queues_) {
    total.executed += q->executed.load(std::memory_order_relaxed);
    total.stolen += q->stolen.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace fairsqg
