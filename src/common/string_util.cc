#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace fairsqg {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view text) {
  text = StripWhitespace(text);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("not an int64: '" + std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return Status::InvalidArgument("empty double");
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::InvalidArgument("double out of range: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // `a` is now the shorter string; keep one rolling row of the DP table.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) / static_cast<double>(m);
}

}  // namespace fairsqg
