#ifndef FAIRSQG_COMMON_RUN_CONTEXT_H_
#define FAIRSQG_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace fairsqg {

/// What a generator does when its RunContext expires mid-run.
enum class ExpiryPolicy {
  /// Stop cleanly and return the best-so-far ε-Pareto archive with
  /// GenStats::deadline_exceeded set (the anytime contract, DESIGN.md §11).
  kPartial,
  /// Fail the run with Status::DeadlineExceeded; no partial result.
  kFail,
};

/// \brief Cooperative cancellation handle threaded through every execution
/// layer (generators → verifier → matcher). One RunContext governs one run.
///
/// Three independent stop conditions compose:
///  - a **monotonic deadline** (steady clock) for wall-time bounded service;
///  - an **atomic cancellation token** tripped by any thread
///    (`RequestCancel`), e.g. a client disconnect;
///  - a **verification budget** (`CancelAfterVerifications`) tripped at the
///    generators' deterministic poll sites — the mechanism the randomized
///    cancellation tests use, because unlike a clock it expires at an exact,
///    reproducible verification count.
///
/// Two severities are exposed so parallel runs stay deterministic where
/// they can be:
///  - `HardExpired()` (token or deadline) is checked *inside* the matcher's
///    backtracking loop and aborts in-flight matches — a wedged VF2 search
///    cannot outlive the deadline by more than one poll interval;
///  - `Expired()` additionally reports the verification-budget trip, and is
///    consulted only at scheduling sites (the sequential step loop, the
///    BiQGen coordinator's batch collection, ParallelQGen's chunk
///    dispatcher). A budget trip therefore never aborts a match midway:
///    already-scheduled work completes, so the verified set is exactly the
///    first N instances of the deterministic schedule.
///
/// Configuration setters are NOT thread-safe and must happen before the run
/// starts; `RequestCancel`, `PollVerification`, and all queries are safe
/// from any thread during the run.
class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- configuration (before the run starts) -------------------------------

  /// Arms the monotonic deadline `ms` milliseconds from now. Non-positive
  /// values arm an already-expired deadline.
  void SetDeadlineAfterMillis(double ms);
  void ClearDeadline() { deadline_ns_ = 0; }
  bool has_deadline() const { return deadline_ns_ != 0; }

  /// Backtracking-step budget per matcher invocation (0 = unlimited). Caps
  /// the time any single pathological instance can consume: an expired
  /// deadline is detected at the latest one step-budget slice later.
  void set_match_step_limit(uint64_t steps) { match_step_limit_ = steps; }
  uint64_t match_step_limit() const { return match_step_limit_; }

  void set_on_expiry(ExpiryPolicy policy) { policy_ = policy; }
  ExpiryPolicy on_expiry() const { return policy_; }

  /// Trips the (soft) token after exactly `n` counted verification polls;
  /// the n-th verification still runs, the (n+1)-th is refused. 0 disarms.
  void CancelAfterVerifications(uint64_t n) { poll_limit_ = n; }

  // --- runtime (thread-safe) -----------------------------------------------

  /// Trips the hard cancellation token; irreversible for this run.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Token tripped or deadline passed — aborts in-flight matches.
  bool HardExpired() const;

  /// HardExpired() or the verification budget is exhausted — stops
  /// scheduling further verifications.
  bool Expired() const {
    return polls_exhausted_.load(std::memory_order_relaxed) || HardExpired();
  }

  /// The per-verification poll, called by every generator immediately
  /// before scheduling a verification. Returns true when the run must stop
  /// (the pending verification is NOT counted and must not run); otherwise
  /// counts the verification against the budget and returns false.
  bool PollVerification();

  /// Verifications admitted by PollVerification so far.
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> polls_exhausted_{false};
  std::atomic<uint64_t> polls_{0};
  uint64_t poll_limit_ = 0;      // 0 = unlimited.
  int64_t deadline_ns_ = 0;      // Steady-clock nanos since epoch; 0 = none.
  uint64_t match_step_limit_ = 0;
  ExpiryPolicy policy_ = ExpiryPolicy::kPartial;
};

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_RUN_CONTEXT_H_
