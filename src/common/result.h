#ifndef FAIRSQG_COMMON_RESULT_H_
#define FAIRSQG_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace fairsqg {

/// \brief A value of type T or a non-OK Status, in the Arrow Result<T> style.
///
/// Construction from a value or from a non-OK Status is implicit so that
/// `return value;` and `return Status::...;` both work inside functions
/// returning Result<T>.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    FAIRSQG_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> must not be constructed from an OK Status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the computation; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access to the held value; requires ok().
  const T& ValueOrDie() const& {
    FAIRSQG_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    FAIRSQG_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    FAIRSQG_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace fairsqg

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status from the enclosing function.
#define FAIRSQG_ASSIGN_OR_RETURN(lhs, rexpr)              \
  FAIRSQG_ASSIGN_OR_RETURN_IMPL_(                         \
      FAIRSQG_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define FAIRSQG_CONCAT_INNER_(x, y) x##y
#define FAIRSQG_CONCAT_(x, y) FAIRSQG_CONCAT_INNER_(x, y)

#define FAIRSQG_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                   \
  if (!result_name.ok()) return result_name.status();           \
  lhs = std::move(result_name).ValueOrDie()

#endif  // FAIRSQG_COMMON_RESULT_H_
