#ifndef FAIRSQG_COMMON_THREAD_POOL_H_
#define FAIRSQG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fairsqg {

/// \brief Work-stealing thread pool shared by the parallel generators.
///
/// Each worker owns a deque of tasks. A worker pops from the front of its
/// own deque (LIFO-ish locality for recursively submitted work) and, when
/// empty, steals from the back of a sibling's deque. External submissions
/// round-robin across the deques; `SubmitOn` pins a task to one worker's
/// deque (it may still be *stolen* — pinning is a placement hint, not an
/// execution guarantee).
///
/// Thread-safety contract (see DESIGN.md §9): tasks may submit further
/// tasks; `Wait()` blocks until the pool has quiesced (no queued and no
/// running task) and rethrows the first exception a task raised, if any.
/// The destructor drains every remaining task before joining — it never
/// drops queued work.
class ThreadPool {
 public:
  /// Sentinel returned by WorkerIndex() on threads the pool does not own.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// `num_threads` 0 selects the hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains all queued tasks, then joins the workers. Any exception still
  /// pending (Wait() not called) is swallowed — call Wait() to observe it.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueue a task. From a worker thread the task lands on that worker's
  /// own deque (cheap recursive fan-out); from outside, deques are filled
  /// round-robin.
  void Submit(std::function<void()> task);

  /// Enqueue a task onto worker `worker`'s deque (placement hint only).
  void SubmitOn(size_t worker, std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished, then rethrows the first captured task exception.
  /// The pool stays usable afterwards.
  void Wait();

  /// Index of the calling pool worker in [0, num_workers()), or
  /// kNotAWorker when called from a thread the pool does not own.
  size_t WorkerIndex() const;

  /// Worker index of the calling thread within whichever pool owns it, or
  /// kNotAWorker when the thread belongs to no pool. Unlike WorkerIndex()
  /// this needs no pool reference, so observers (the tracer's worker
  /// attribution) can ask without plumbing the pool through every layer.
  static size_t CurrentWorkerId();

  /// Lifetime counters, attributed per worker and summed on read.
  struct Stats {
    uint64_t executed = 0;  ///< Tasks run to completion.
    uint64_t stolen = 0;    ///< Tasks executed by a worker that stole them.
  };
  Stats stats() const;

 private:
  struct WorkerQueue;

  void WorkerLoop(size_t index);
  /// Pops a task for worker `index`: own deque first, then steals.
  bool TryPop(size_t index, std::function<void()>* task, bool* was_stolen);
  void Enqueue(size_t worker, std::function<void()> task);
  void RunTask(std::function<void()> task, size_t worker, bool was_stolen);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake and quiescence. `pending_` counts submitted-but-unfinished
  // tasks; `queued_` counts submitted-but-unpopped tasks (wake predicate).
  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;
  size_t queued_ = 0;
  bool stop_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  std::atomic<size_t> next_queue_{0};
};

}  // namespace fairsqg

#endif  // FAIRSQG_COMMON_THREAD_POOL_H_
