#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace fairsqg {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FAIRSQG_CHECK(bound > 0) << "NextBounded requires a positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  FAIRSQG_CHECK(lo <= hi) << "NextInRange requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  FAIRSQG_CHECK(n > 0) << "NextZipf requires n > 0";
  if (n == 1) return 0;
  // Inverse-CDF approximation of the Zipf(s) distribution via the bounded
  // Pareto transform; accurate enough for workload skew.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  double nd = static_cast<double>(n);
  double t = (std::pow(nd, 1.0 - s) - 1.0) * u + 1.0;
  double rank = std::pow(t, 1.0 / (1.0 - s));
  uint64_t r = static_cast<uint64_t>(rank) - 1;
  return r >= n ? n - 1 : r;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  FAIRSQG_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::unordered_set<uint64_t> seen;
  while (out.size() < k) {
    uint64_t v = NextBounded(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace fairsqg
