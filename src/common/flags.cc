#include "common/flags.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fairsqg {

void FlagParser::DefineInt64(const std::string& name, int64_t default_value,
                             const std::string& help) {
  Flag f;
  f.kind = Kind::kInt64;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::SetFromText(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name + "\n" + HelpString());
  }
  Flag& f = it->second;
  switch (f.kind) {
    case Kind::kInt64: {
      FAIRSQG_ASSIGN_OR_RETURN(f.int_value, ParseInt64(text));
      break;
    }
    case Kind::kDouble: {
      FAIRSQG_ASSIGN_OR_RETURN(f.double_value, ParseDouble(text));
      break;
    }
    case Kind::kString:
      f.string_value = text;
      break;
    case Kind::kBool:
      if (text == "true" || text == "1" || text.empty()) {
        f.bool_value = true;
      } else if (text == "false" || text == "0") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + text);
      }
      break;
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      FAIRSQG_RETURN_NOT_OK(SetFromText(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // `--flag value` form, or bare `--flag` for booleans.
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" + HelpString());
    }
    if (it->second.kind == Kind::kBool) {
      it->second.bool_value = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    FAIRSQG_RETURN_NOT_OK(SetFromText(body, argv[++i]));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetOrDie(const std::string& name,
                                             Kind kind) const {
  auto it = flags_.find(name);
  FAIRSQG_CHECK(it != flags_.end()) << "flag --" << name << " was never defined";
  FAIRSQG_CHECK(it->second.kind == kind) << "flag --" << name << " type mismatch";
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetOrDie(name, Kind::kInt64).int_value;
}
double FlagParser::GetDouble(const std::string& name) const {
  return GetOrDie(name, Kind::kDouble).double_value;
}
const std::string& FlagParser::GetString(const std::string& name) const {
  return GetOrDie(name, Kind::kString).string_value;
}
bool FlagParser::GetBool(const std::string& name) const {
  return GetOrDie(name, Kind::kBool).bool_value;
}

std::string FlagParser::HelpString() const {
  std::ostringstream out;
  out << "flags:\n";
  for (const auto& [name, f] : flags_) {
    out << "  --" << name << " (";
    switch (f.kind) {
      case Kind::kInt64:
        out << "int, default " << f.int_value;
        break;
      case Kind::kDouble:
        out << "double, default " << f.double_value;
        break;
      case Kind::kString:
        out << "string, default '" << f.string_value << "'";
        break;
      case Kind::kBool:
        out << "bool, default " << (f.bool_value ? "true" : "false");
        break;
    }
    out << ") " << f.help << "\n";
  }
  return out.str();
}

}  // namespace fairsqg
