#include "matching/subgraph_matcher.h"

#include <algorithm>
#include <memory>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace fairsqg {

/// Backtracking plan: a connectivity-aware order of the active query nodes
/// plus, per position, the edge checks against already-matched positions.
struct SubgraphMatcher::Plan {
  struct EdgeConstraint {
    uint32_t matched_pos;  // Position of the already-matched endpoint.
    LabelId label;
    bool outgoing_from_matched;  // Edge direction: matched -> current?
  };

  std::vector<QNodeId> order;                        // order[0] == u_o.
  std::vector<std::vector<EdgeConstraint>> constraints;  // Per position.

  static Plan Build(const QueryInstance& q, const CandidateSpace& candidates,
                    QNodeId anchor, const SweepSpec* sweep = nullptr,
                    int32_t sweep_floor = 0) {
    Plan plan;
    const auto& active = q.active_nodes();
    std::vector<bool> placed(q.tmpl().num_nodes(), false);
    std::vector<int> position(q.tmpl().num_nodes(), -1);

    // During a sweep probe the swept node's image is restricted to critical
    // levels >= sweep_floor, so its *effective* candidate set can be far
    // smaller than candidates.of() reports. Ordering by the effective size
    // pulls the swept node forward, making failing probes prune as early as
    // the per-instance path (whose rebuilt candidate space is genuinely
    // that small) instead of exhausting deep subtrees first.
    size_t sweep_node_size = 0;
    if (sweep != nullptr) {
      for (NodeId w : candidates.of(sweep->node)) {
        if (sweep->level[w] >= sweep_floor) ++sweep_node_size;
      }
    }

    auto place = [&](QNodeId u) {
      position[u] = static_cast<int>(plan.order.size());
      plan.order.push_back(u);
      placed[u] = true;
    };
    place(anchor);

    while (plan.order.size() < active.size()) {
      // Among unplaced active nodes adjacent to a placed one, pick the one
      // with the smallest candidate set.
      QNodeId best = kInvalidNode;
      size_t best_size = 0;
      for (const InstanceEdge& e : q.active_edges()) {
        for (QNodeId u : {e.from, e.to}) {
          QNodeId other = (u == e.from) ? e.to : e.from;
          if (placed[u] || !placed[other]) continue;
          size_t size = sweep != nullptr && u == sweep->node
                            ? sweep_node_size
                            : candidates.of(u).size();
          if (best == kInvalidNode || size < best_size) {
            best = u;
            best_size = size;
          }
        }
      }
      FAIRSQG_CHECK(best != kInvalidNode)
          << "active query nodes must be connected to u_o";
      place(best);
    }

    plan.constraints.resize(plan.order.size());
    for (const InstanceEdge& e : q.active_edges()) {
      int pf = position[e.from];
      int pt = position[e.to];
      FAIRSQG_DCHECK(pf >= 0 && pt >= 0);
      if (pf < pt) {
        plan.constraints[pt].push_back(
            {static_cast<uint32_t>(pf), e.label, /*outgoing_from_matched=*/true});
      } else {
        plan.constraints[pf].push_back(
            {static_cast<uint32_t>(pt), e.label, /*outgoing_from_matched=*/false});
      }
    }
    return plan;
  }
};

namespace {

bool InSortedSet(const NodeSet& set, NodeId v) {
  return std::binary_search(set.begin(), set.end(), v);
}

}  // namespace

bool SubgraphMatcher::ExistsEmbedding(const QueryInstance& /*q*/,
                                      const CandidateSpace& candidates,
                                      const Plan& plan, NodeId v,
                                      SearchBudget* budget,
                                      const SweepSpec* sweep,
                                      int32_t sweep_floor,
                                      NodeId* witness_out) {
  const size_t n = plan.order.size();
  std::vector<NodeId> assignment(n, kInvalidNode);
  assignment[0] = v;

  // Recursive extension over plan positions.
  auto extend = [&](auto&& self, size_t pos) -> bool {
    if (pos == n) return true;
    ++stats_.backtrack_steps;
    FAIRSQG_FAULT_POINT("matcher.step");
    if (budget->Tick()) return false;
    QNodeId u = plan.order[pos];
    const auto& constraints = plan.constraints[pos];
    FAIRSQG_DCHECK(!constraints.empty());

    // Drive enumeration from the constraint whose matched endpoint has the
    // smallest label-compatible adjacency list.
    const Plan::EdgeConstraint* driver = &constraints[0];
    size_t driver_size = SIZE_MAX;
    for (const auto& c : constraints) {
      NodeId w = assignment[c.matched_pos];
      size_t size = c.outgoing_from_matched ? g_->out_degree(w) : g_->in_degree(w);
      if (size < driver_size) {
        driver_size = size;
        driver = &c;
      }
    }
    NodeId anchor = assignment[driver->matched_pos];
    auto adjacency = driver->outgoing_from_matched ? g_->OutEdges(anchor)
                                                   : g_->InEdges(anchor);
    const NodeBitset& cand = candidates.bits(u);
    for (const AdjEntry& e : adjacency) {
      if (e.edge_label != driver->label) continue;
      NodeId w = e.neighbor;
      ++stats_.bitset_probes;
      if (!cand.Test(w)) continue;
      // Literal-sweep restriction: the swept node's image must survive at
      // least to `sweep_floor` (DESIGN.md §12). `level` is only written for
      // candidate nodes, which the bitset probe above guarantees.
      if (sweep != nullptr && u == sweep->node && sweep->level[w] < sweep_floor)
        continue;
      // Injectivity (isomorphism semantics only).
      if (semantics_ == MatchSemantics::kIsomorphism) {
        bool used = false;
        for (size_t i = 0; i < pos; ++i) {
          if (assignment[i] == w) {
            used = true;
            break;
          }
        }
        if (used) continue;
      }
      // Remaining edge constraints.
      bool ok = true;
      for (const auto& c : constraints) {
        if (&c == driver) continue;
        NodeId m = assignment[c.matched_pos];
        bool has = c.outgoing_from_matched ? g_->HasEdge(m, w, c.label)
                                           : g_->HasEdge(w, m, c.label);
        if (!has) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      assignment[pos] = w;
      if (self(self, pos + 1)) return true;
      if (budget->aborted) return false;  // Unwind without trying siblings.
      assignment[pos] = kInvalidNode;
    }
    return false;
  };
  const bool found = extend(extend, 1);
  if (found && sweep != nullptr && witness_out != nullptr) {
    // On success the recursion unwound without clearing the assignment:
    // report the swept node's image as the threshold witness.
    for (size_t i = 0; i < n; ++i) {
      if (plan.order[i] == sweep->node) {
        *witness_out = assignment[i];
        break;
      }
    }
  }
  return found;
}

NodeSet SubgraphMatcher::MatchOutput(const QueryInstance& q,
                                     const CandidateSpace& candidates,
                                     const NodeSet* output_restrict) {
  return MatchNode(q, candidates, q.output_node(), output_restrict);
}

NodeSet SubgraphMatcher::MatchNode(const QueryInstance& q,
                                   const CandidateSpace& candidates,
                                   QNodeId anchor,
                                   const NodeSet* output_restrict) {
  return MatchNodeBounded(q, candidates, anchor, /*ctx=*/nullptr,
                          output_restrict)
      .matches;
}

MatchResult SubgraphMatcher::MatchOutputBounded(const QueryInstance& q,
                                                const CandidateSpace& candidates,
                                                RunContext* ctx,
                                                const NodeSet* output_restrict) {
  return MatchNodeBounded(q, candidates, q.output_node(), ctx, output_restrict);
}

MatchResult SubgraphMatcher::MatchNodeBounded(const QueryInstance& q,
                                              const CandidateSpace& candidates,
                                              QNodeId anchor, RunContext* ctx,
                                              const NodeSet* output_restrict) {
  FAIRSQG_TRACE_SPAN_FULL("match");
  FAIRSQG_COUNT("fairsqg.match.instances");
  ++stats_.instances_matched;
  MatchResult result;
  if (!q.is_active(anchor)) return result;  // Unconstrained by the instance.
  if (candidates.HasEmptyActive(q)) return result;

  SearchBudget budget;
  budget.ctx = ctx;
  budget.limit = ctx != nullptr ? ctx->match_step_limit() : 0;
  if (ctx != nullptr && ctx->HardExpired()) {
    ++stats_.aborted_matches;
    FAIRSQG_COUNT("fairsqg.match.aborted");
    result.outcome = MatchOutcome::kAborted;
    return result;
  }

  Plan plan = Plan::Build(q, candidates, anchor);

  const NodeSet& base = candidates.of(anchor);
  // Iterate over the smaller of the base candidates and the restriction.
  const NodeSet* outer = &base;
  const NodeSet* inner = nullptr;
  if (output_restrict != nullptr) {
    outer = output_restrict->size() < base.size() ? output_restrict : &base;
    inner = outer == &base ? output_restrict : &base;
  }
  for (NodeId v : *outer) {
    if (budget.aborted) break;
    if (inner != nullptr && !InSortedSet(*inner, v)) continue;
    ++stats_.output_candidates_tested;
    // Trivial (single-node) plans never enter the step loop, so poll the
    // context here, amortized over the candidate scan.
    if (ctx != nullptr && (stats_.output_candidates_tested & 255) == 0 &&
        ctx->HardExpired()) {
      budget.aborted = true;
      break;
    }
    if (plan.order.size() == 1 ||
        ExistsEmbedding(q, candidates, plan, v, &budget)) {
      if (!budget.aborted) result.matches.push_back(v);
    }
  }
  if (budget.aborted) {
    ++stats_.aborted_matches;
    FAIRSQG_COUNT("fairsqg.match.aborted");
    result.outcome = MatchOutcome::kAborted;
  }
  // `outer` iterations are ascending, so the result is sorted.
  return result;
}

SweepMatchResult SubgraphMatcher::MatchOutputWithWitness(
    const QueryInstance& q, const CandidateSpace& candidates,
    const SweepSpec& spec, RunContext* ctx, const NodeSet* output_restrict) {
  // One chain, one instance count: every member set derives from this
  // invocation (plus ResolveSweepThresholds, which counts none).
  FAIRSQG_TRACE_SPAN_FULL("match_sweep");
  FAIRSQG_COUNT("fairsqg.match.instances");
  ++stats_.instances_matched;
  SweepMatchResult result;
  const QNodeId anchor = q.output_node();
  FAIRSQG_DCHECK(q.is_active(anchor) && q.is_active(spec.node));
  if (candidates.HasEmptyActive(q)) return result;

  SearchBudget budget;
  budget.ctx = ctx;  // Sweeps run without a per-match step budget.
  if (ctx != nullptr && ctx->HardExpired()) {
    ++stats_.aborted_matches;
    FAIRSQG_COUNT("fairsqg.match.aborted");
    result.outcome = MatchOutcome::kAborted;
    return result;
  }

  Plan plan = Plan::Build(q, candidates, anchor);
  const bool self_sweep = spec.node == anchor;

  const NodeSet& base = candidates.of(anchor);
  const NodeSet* outer = &base;
  const NodeSet* inner = nullptr;
  if (output_restrict != nullptr) {
    outer = output_restrict->size() < base.size() ? output_restrict : &base;
    inner = outer == &base ? output_restrict : &base;
  }
  for (NodeId v : *outer) {
    if (budget.aborted) break;
    if (inner != nullptr && !InSortedSet(*inner, v)) continue;
    ++stats_.output_candidates_tested;
    if (ctx != nullptr && (stats_.output_candidates_tested & 255) == 0 &&
        ctx->HardExpired()) {
      budget.aborted = true;
      break;
    }
    if (self_sweep) {
      // The swept node IS the output node: v's own critical level is its
      // exact threshold, no probing needed. (The level floor below never
      // fires — candidates already satisfy the head's literal — it guards
      // the contract, not the data.)
      if (spec.level[v] < spec.min_level) continue;
      if (plan.order.size() == 1 ||
          ExistsEmbedding(q, candidates, plan, v, &budget)) {
        if (!budget.aborted) {
          result.matches.push_back(v);
          result.thresholds.push_back(spec.level[v]);
        }
      }
      continue;
    }
    NodeId witness = kInvalidNode;
    if (ExistsEmbedding(q, candidates, plan, v, &budget, &spec, spec.min_level,
                        &witness)) {
      if (!budget.aborted) {
        result.matches.push_back(v);
        result.thresholds.push_back(spec.level[witness]);
      }
    }
  }
  if (budget.aborted) {
    ++stats_.aborted_matches;
    FAIRSQG_COUNT("fairsqg.match.aborted");
    result.outcome = MatchOutcome::kAborted;
    result.matches.clear();
    result.thresholds.clear();
  }
  return result;
}

MatchOutcome SubgraphMatcher::ResolveSweepThresholds(
    const QueryInstance& q, const CandidateSpace& candidates,
    const SweepSpec& spec, const NodeSet& matches, RunContext* ctx,
    std::vector<int32_t>* thresholds) {
  if (spec.node == q.output_node()) return MatchOutcome::kComplete;
  FAIRSQG_CHECK(thresholds->size() == matches.size());
  SearchBudget budget;
  budget.ctx = ctx;
  // One plan per probe floor, built lazily: a floor shrinks the swept
  // node's effective candidate set, and the plan must order by that
  // effective size or failing probes explore deep subtrees before ever
  // touching the restriction (see Plan::Build).
  std::vector<std::unique_ptr<Plan>> plan_at_floor(
      static_cast<size_t>(spec.num_levels));
  auto plan_for = [&](int32_t floor) -> const Plan& {
    auto& slot = plan_at_floor[static_cast<size_t>(floor)];
    if (slot == nullptr) {
      slot = std::make_unique<Plan>(
          Plan::Build(q, candidates, q.output_node(), &spec, floor));
    }
    return *slot;
  };
  const int32_t last = spec.num_levels - 1;
  for (size_t i = 0; i < matches.size(); ++i) {
    const NodeId v = matches[i];
    int32_t bound = (*thresholds)[i];
    // Gallop: a successful probe above `bound` jumps to the new witness's
    // level (strictly increasing, so this terminates in at most the number
    // of distinct witness levels); a failed probe fixes the threshold.
    while (bound < last) {
      NodeId witness = kInvalidNode;
      if (!ExistsEmbedding(q, candidates, plan_for(bound + 1), v, &budget,
                           &spec, bound + 1, &witness)) {
        break;
      }
      FAIRSQG_DCHECK(witness != kInvalidNode && spec.level[witness] > bound);
      bound = spec.level[witness];
    }
    if (budget.aborted) {
      ++stats_.aborted_matches;
      FAIRSQG_COUNT("fairsqg.match.aborted");
      return MatchOutcome::kAborted;
    }
    (*thresholds)[i] = bound;
  }
  return MatchOutcome::kComplete;
}

NodeSet SubgraphMatcher::MatchOutput(const QueryInstance& q) {
  CandidateSpace candidates = CandidateSpace::Build(*g_, q);
  return MatchOutput(q, candidates);
}

size_t SubgraphMatcher::EnumerateEmbeddings(const QueryInstance& q,
                                            const CandidateSpace& candidates,
                                            const EmbeddingVisitor& visitor,
                                            size_t limit) {
  if (candidates.HasEmptyActive(q)) return 0;
  Plan plan = Plan::Build(q, candidates, q.output_node());
  const size_t n = plan.order.size();
  std::vector<NodeId> assignment(n, kInvalidNode);
  std::vector<NodeId> by_query_node(q.tmpl().num_nodes(), kInvalidNode);
  size_t count = 0;
  bool stop = false;

  auto emit = [&]() {
    std::fill(by_query_node.begin(), by_query_node.end(), kInvalidNode);
    for (size_t i = 0; i < n; ++i) by_query_node[plan.order[i]] = assignment[i];
    ++count;
    if (!visitor(by_query_node)) stop = true;
    if (limit > 0 && count >= limit) stop = true;
  };

  auto extend = [&](auto&& self, size_t pos) -> void {
    if (stop) return;
    if (pos == n) {
      emit();
      return;
    }
    ++stats_.backtrack_steps;
    QNodeId u = plan.order[pos];
    const auto& constraints = plan.constraints[pos];
    const Plan::EdgeConstraint& driver = constraints[0];
    NodeId anchor = assignment[driver.matched_pos];
    auto adjacency = driver.outgoing_from_matched ? g_->OutEdges(anchor)
                                                  : g_->InEdges(anchor);
    const NodeBitset& cand = candidates.bits(u);
    for (const AdjEntry& e : adjacency) {
      if (stop) return;
      if (e.edge_label != driver.label) continue;
      NodeId w = e.neighbor;
      ++stats_.bitset_probes;
      if (!cand.Test(w)) continue;
      if (semantics_ == MatchSemantics::kIsomorphism) {
        bool used = false;
        for (size_t i = 0; i < pos; ++i) {
          if (assignment[i] == w) {
            used = true;
            break;
          }
        }
        if (used) continue;
      }
      bool ok = true;
      for (const auto& c : constraints) {
        if (&c == &driver) continue;
        NodeId m = assignment[c.matched_pos];
        bool has = c.outgoing_from_matched ? g_->HasEdge(m, w, c.label)
                                           : g_->HasEdge(w, m, c.label);
        if (!has) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      assignment[pos] = w;
      self(self, pos + 1);
      assignment[pos] = kInvalidNode;
    }
  };

  for (NodeId v : candidates.of(q.output_node())) {
    if (stop) break;
    assignment[0] = v;
    if (n == 1) {
      emit();
    } else {
      extend(extend, 1);
    }
    assignment[0] = kInvalidNode;
  }
  return count;
}

}  // namespace fairsqg
