#ifndef FAIRSQG_MATCHING_SUBGRAPH_MATCHER_H_
#define FAIRSQG_MATCHING_SUBGRAPH_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/run_context.h"
#include "matching/candidate_space.h"
#include "matching/match_stats.h"

namespace fairsqg {

/// Matching semantics for query evaluation: subgraph isomorphism (the
/// paper's semantics; embeddings are injective) or graph homomorphism
/// (query nodes may map to the same data node — cheaper, larger answers).
enum class MatchSemantics { kIsomorphism, kHomomorphism };

/// How a bounded match invocation ended.
enum class MatchOutcome {
  /// The search ran to completion; the match set is exact.
  kComplete,
  /// The RunContext expired (token/deadline) or the per-match step budget
  /// ran out mid-search. The partial match set MUST be discarded — it is
  /// neither a subset guarantee nor cacheable (DESIGN.md §11).
  kAborted,
};

/// Result of a bounded match: the set is meaningful only when kComplete.
struct MatchResult {
  NodeSet matches;
  MatchOutcome outcome = MatchOutcome::kComplete;
};

/// \brief Restriction threaded through a literal sweep (DESIGN.md §12).
///
/// `level[w]` is data node w's *critical level* of the swept literal: the
/// deepest domain index (relaxed → refined order) whose bound w still
/// satisfies, or -1 when only the wildcard admits it. A sweep-restricted
/// search requires the image of `node` to sit at critical level >= the
/// probe floor, which turns "does v survive chain member k?" into one
/// existence search.
struct SweepSpec {
  QNodeId node = 0;                ///< The swept literal's query node.
  const int32_t* level = nullptr;  ///< NodeId-indexed critical levels.
  int32_t min_level = 0;           ///< The chain head's binding (-1: wildcard).
  int32_t num_levels = 0;          ///< Domain size of the swept variable.
};

/// Result of the first sweep phase: the chain head's exact match set plus,
/// per match, a lower bound on its critical threshold — the level of the
/// witness embedding found (exact when the swept node is the output node).
struct SweepMatchResult {
  NodeSet matches;
  std::vector<int32_t> thresholds;  ///< Parallel to `matches`.
  MatchOutcome outcome = MatchOutcome::kComplete;
};

/// \brief Subgraph-isomorphism engine computing output-node match sets.
///
/// For a query instance `q(u_o)`, MatchOutput returns `q(G)`: every data
/// node `v` such that an injective, label-, predicate-, and edge-preserving
/// embedding of u_o's connected component maps u_o to v (the paper's
/// matching semantics, Section II). The search is a VF2-style backtracking
/// over the active query nodes, anchored at u_o and extended along query
/// edges in a connectivity-aware order with smallest-candidate-set-first
/// tie-breaking; one embedding per output candidate suffices (existence).
class SubgraphMatcher {
 public:
  explicit SubgraphMatcher(const Graph& g,
                           MatchSemantics semantics = MatchSemantics::kIsomorphism)
      : g_(&g), semantics_(semantics) {}

  MatchSemantics semantics() const { return semantics_; }

  /// Computes q(G) given prebuilt candidates. If `output_restrict` is
  /// non-null, only those nodes are considered as images of u_o — this is
  /// the incVerify path: a refined child's match set is a subset of its
  /// parent's (Lemma 2), so the parent's q(G) bounds the search.
  NodeSet MatchOutput(const QueryInstance& q, const CandidateSpace& candidates,
                      const NodeSet* output_restrict = nullptr);

  /// Convenience: builds candidates and matches in one call.
  NodeSet MatchOutput(const QueryInstance& q);

  /// \brief Match set of an arbitrary *active* query node `anchor`:
  /// every data node some embedding maps `anchor` to. MatchOutput is
  /// MatchNode(q, candidates, q.output_node()). Returns an empty set when
  /// `anchor` lies outside u_o's component (the instance does not
  /// constrain it). Substrate for the multiple-output-node extension.
  NodeSet MatchNode(const QueryInstance& q, const CandidateSpace& candidates,
                    QNodeId anchor, const NodeSet* output_restrict = nullptr);

  /// \brief Deadline/cancellation-aware MatchOutput: the backtracking loop
  /// polls `ctx` (hard expiry: token or deadline) and honours its per-match
  /// step budget, returning MatchOutcome::kAborted instead of running
  /// unboundedly on a pathological instance. `ctx` may be null (unbounded;
  /// identical to MatchOutput).
  MatchResult MatchOutputBounded(const QueryInstance& q,
                                 const CandidateSpace& candidates,
                                 RunContext* ctx,
                                 const NodeSet* output_restrict = nullptr);

  /// Bounded form of MatchNode; see MatchOutputBounded.
  MatchResult MatchNodeBounded(const QueryInstance& q,
                               const CandidateSpace& candidates, QNodeId anchor,
                               RunContext* ctx,
                               const NodeSet* output_restrict = nullptr);

  /// \brief First phase of a literal sweep (DESIGN.md §12): computes the
  /// chain head's q(G) exactly like MatchOutputBounded while recording, per
  /// output match, the critical level of the witness embedding found — a
  /// free lower bound on the match's true threshold. `spec.node` must be
  /// active. Counts ONE instances_matched for the whole chain (the derived
  /// member sets cost no further searches); ResolveSweepThresholds counts
  /// none. Runs without a per-match step budget (callers disable sweeping
  /// under one); `ctx` hard expiry still aborts.
  SweepMatchResult MatchOutputWithWitness(const QueryInstance& q,
                                          const CandidateSpace& candidates,
                                          const SweepSpec& spec, RunContext* ctx,
                                          const NodeSet* output_restrict = nullptr);

  /// \brief Second sweep phase: gallops each head match's witness bound up
  /// to its exact critical threshold by re-searching with the swept node's
  /// image restricted to levels above the bound; each successful probe
  /// jumps the bound to the new witness's level (strictly increasing), each
  /// failure fixes the threshold. No-op when the swept node is the output
  /// node (phase one is already exact there). Returns kAborted on hard
  /// expiry — thresholds are then partial and must be discarded.
  MatchOutcome ResolveSweepThresholds(const QueryInstance& q,
                                      const CandidateSpace& candidates,
                                      const SweepSpec& spec,
                                      const NodeSet& matches, RunContext* ctx,
                                      std::vector<int32_t>* thresholds);

  /// Visitor over full embeddings: `assignment[u]` is the data node bound
  /// to query node u (kInvalidNode for nodes outside u_o's component).
  /// Return false from the visitor to stop the enumeration.
  using EmbeddingVisitor = std::function<bool(const std::vector<NodeId>&)>;

  /// \brief Enumerates every embedding of the instance (not just output
  /// matches); returns the number of embeddings visited. `limit` 0 means
  /// unlimited. Useful for explanation UIs and benchmark auditing.
  size_t EnumerateEmbeddings(const QueryInstance& q,
                             const CandidateSpace& candidates,
                             const EmbeddingVisitor& visitor, size_t limit = 0);

  const MatchStats& stats() const { return stats_; }
  MatchStats& mutable_stats() { return stats_; }

 private:
  struct Plan;

  /// Per-invocation abort accounting: a step budget (0 = unlimited) plus an
  /// amortized hard-expiry poll of the RunContext every 256 steps.
  struct SearchBudget {
    RunContext* ctx = nullptr;
    uint64_t limit = 0;
    uint64_t steps = 0;
    bool aborted = false;

    /// Counts one backtracking step; true when the search must abort.
    bool Tick() {
      ++steps;
      if (limit != 0 && steps > limit) {
        aborted = true;
        return true;
      }
      if (ctx != nullptr && (steps & 255) == 0 && ctx->HardExpired()) {
        aborted = true;
        return true;
      }
      return false;
    }
  };

  /// True if an embedding extending {u_o -> v} exists. Sets
  /// `budget->aborted` (and returns false) when the budget trips. With a
  /// sweep spec, the swept node's image is restricted to critical level
  /// >= `sweep_floor` and, on success, reported through `witness_out`.
  bool ExistsEmbedding(const QueryInstance& q, const CandidateSpace& candidates,
                       const Plan& plan, NodeId v, SearchBudget* budget,
                       const SweepSpec* sweep = nullptr,
                       int32_t sweep_floor = 0, NodeId* witness_out = nullptr);

  const Graph* g_;
  MatchSemantics semantics_;
  MatchStats stats_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_MATCHING_SUBGRAPH_MATCHER_H_
