#include "matching/brute_force.h"

#include <algorithm>

namespace fairsqg {

NodeSet BruteForceMatchOutput(const Graph& g, const QueryInstance& q) {
  const auto& active = q.active_nodes();
  const size_t n = active.size();

  // Candidate lists per active position, by direct predicate evaluation.
  std::vector<NodeSet> cands(n);
  for (size_t i = 0; i < n; ++i) {
    QNodeId u = active[i];
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (NodeSatisfies(g, v, q.tmpl().node_label(u), q.literals_of(u))) {
        cands[i].push_back(v);
      }
    }
  }

  // Position of each active query node.
  std::vector<int> pos_of(q.tmpl().num_nodes(), -1);
  for (size_t i = 0; i < n; ++i) pos_of[active[i]] = static_cast<int>(i);
  size_t out_pos = static_cast<size_t>(pos_of[q.output_node()]);

  NodeSet result;
  std::vector<NodeId> assignment(n, kInvalidNode);

  auto edges_ok = [&]() {
    for (const InstanceEdge& e : q.active_edges()) {
      NodeId from = assignment[pos_of[e.from]];
      NodeId to = assignment[pos_of[e.to]];
      if (!g.HasEdge(from, to, e.label)) return false;
    }
    return true;
  };

  auto enumerate = [&](auto&& self, size_t i) -> void {
    if (i == n) {
      if (edges_ok()) result.push_back(assignment[out_pos]);
      return;
    }
    for (NodeId v : cands[i]) {
      if (std::find(assignment.begin(), assignment.begin() + i, v) !=
          assignment.begin() + i) {
        continue;  // Injectivity.
      }
      assignment[i] = v;
      self(self, i + 1);
      assignment[i] = kInvalidNode;
    }
  };
  enumerate(enumerate, 0);

  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace fairsqg
