#include "matching/candidate_space.h"

#include <algorithm>

#include "common/logging.h"

namespace fairsqg {

namespace {

/// Galloping kicks in when one side is this many times larger: binary
/// probes through the big side beat a linear merge.
constexpr size_t kGallopSkew = 16;

/// Sorting an index slice pays off only while the slice is within this
/// factor of the running intersection; beyond it, a direct per-node
/// predicate test over the (smaller) base is cheaper.
constexpr size_t kSliceSortBudget = 8;

/// Intersection of two sorted id ranges into `out` (cleared first).
void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     NodeSet* out) {
  out->clear();
  if (b.size() < a.size()) std::swap(a, b);
  if (b.size() >= kGallopSkew * std::max<size_t>(a.size(), 1)) {
    auto it = b.begin();
    for (NodeId v : a) {
      it = std::lower_bound(it, b.end(), v);
      if (it == b.end()) break;
      if (*it == v) out->push_back(v);
    }
  } else {
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(*out));
  }
}

/// Keeps only the members of sorted `base` satisfying `v.attr op x`.
void FilterByLiteral(const Graph& g, const BoundLiteral& l, NodeSet* base) {
  std::erase_if(*base, [&](NodeId v) {
    const AttrValue* value = g.GetAttr(v, l.attr);
    return value == nullptr || !value->Compare(l.op, l.value);
  });
}

struct DegreeRequirement {
  size_t out_deg = 0;
  size_t in_deg = 0;
  bool effective() const { return out_deg > 0 || in_deg > 0; }
};

void FilterByDegree(const Graph& g, const DegreeRequirement& req, NodeSet* base) {
  std::erase_if(*base, [&](NodeId v) {
    return g.out_degree(v) < req.out_deg || g.in_degree(v) < req.in_deg;
  });
}

/// Intersection of the literal slices of `lits` (all over `label`), via the
/// attribute range indexes. `base` receives the sorted result. Chooses
/// between sort+merge (selective smallest slice) and bitmap AND
/// (unselective) per call.
void IntersectSlices(const Graph& g, LabelId label,
                     const std::vector<BoundLiteral>& lits, NodeSet* base,
                     MatchStats* stats) {
  base->clear();
  struct Slice {
    std::span<const NodeId> nodes;
  };
  std::vector<Slice> slices;
  slices.reserve(lits.size());
  for (const BoundLiteral& l : lits) {
    const AttrRangeIndex* idx = g.RangeIndex(label, l.attr);
    if (idx == nullptr) return;  // No labelled node carries the attribute.
    if (stats != nullptr) ++stats->index_slices;
    std::span<const NodeId> s = idx->SliceFor(l.op, l.value);
    if (s.empty()) return;
    slices.push_back({s});
  }
  size_t min_pos = 0;
  for (size_t i = 1; i < slices.size(); ++i) {
    if (slices[i].nodes.size() < slices[min_pos].nodes.size()) min_pos = i;
  }
  const size_t n = g.num_nodes();
  const size_t k_min = slices[min_pos].nodes.size();

  if (k_min <= std::max<size_t>(256, n / 16)) {
    // Selective: sort the smallest slice into id order, then shrink it.
    base->assign(slices[min_pos].nodes.begin(), slices[min_pos].nodes.end());
    std::sort(base->begin(), base->end());
    NodeSet scratch, merged;
    for (size_t i = 0; i < slices.size() && !base->empty(); ++i) {
      if (i == min_pos) continue;
      const auto s = slices[i].nodes;
      if (s.size() <= kSliceSortBudget * base->size() + 64) {
        scratch.assign(s.begin(), s.end());
        std::sort(scratch.begin(), scratch.end());
        IntersectSorted(*base, scratch, &merged);
        base->swap(merged);
      } else {
        FilterByLiteral(g, lits[i], base);
      }
    }
  } else {
    // Unselective: dense bitmap AND per literal, then set-bit extraction
    // (which emits ascending ids — no sort needed).
    NodeBitset acc(n);
    for (NodeId v : slices[min_pos].nodes) acc.Set(v);
    NodeBitset cur(n);
    for (size_t i = 0; i < slices.size(); ++i) {
      if (i == min_pos) continue;
      cur.ClearAll();
      for (NodeId v : slices[i].nodes) cur.Set(v);
      acc.IntersectWith(cur);
    }
    acc.ExtractTo(base);
  }
}

}  // namespace

bool NodeSatisfies(const Graph& g, NodeId v, LabelId label,
                   const std::vector<BoundLiteral>& literals) {
  if (g.node_label(v) != label) return false;
  for (const BoundLiteral& l : literals) {
    const AttrValue* value = g.GetAttr(v, l.attr);
    if (value == nullptr || !value->Compare(l.op, l.value)) return false;
  }
  return true;
}

CandidateSpace::Entry CandidateSpace::MakeEntry(NodeSet set,
                                                size_t num_graph_nodes) {
  Entry e;
  auto bits = std::make_shared<NodeBitset>(
      NodeBitset::FromNodes(set, num_graph_nodes));
  e.nodes = std::make_shared<const NodeSet>(std::move(set));
  e.bits = std::move(bits);
  return e;
}

CandidateSpace CandidateSpace::Build(const Graph& g, const QueryInstance& q,
                                     bool degree_filter, bool use_index,
                                     MatchStats* stats) {
  CandidateSpace space;
  const QueryTemplate& tmpl = q.tmpl();

  // Active out/in degree per query node (for the degree filter).
  std::vector<DegreeRequirement> req(tmpl.num_nodes());
  if (degree_filter) {
    for (const InstanceEdge& e : q.active_edges()) {
      ++req[e.from].out_deg;
      ++req[e.to].in_deg;
    }
  }

  space.per_node_.resize(tmpl.num_nodes());
  for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
    LabelId label = tmpl.node_label(u);
    const std::vector<BoundLiteral>& lits = q.literals_of(u);
    bool filter = degree_filter && q.is_active(u) && req[u].effective();

    if (use_index && lits.empty() && !filter) {
      // Unconstrained node: alias the Graph-owned label set and bitset
      // (non-owning shared_ptr; the Graph outlives every candidate space).
      space.per_node_[u].nodes = std::shared_ptr<const NodeSet>(
          std::shared_ptr<const NodeSet>(), &g.NodesWithLabel(label));
      space.per_node_[u].bits = std::shared_ptr<const NodeBitset>(
          std::shared_ptr<const NodeBitset>(), &g.LabelBitset(label));
      continue;
    }

    NodeSet set;
    if (use_index) {
      if (lits.empty()) {
        const NodeSet& labelled = g.NodesWithLabel(label);
        set.assign(labelled.begin(), labelled.end());
      } else {
        IntersectSlices(g, label, lits, &set, stats);
      }
      if (filter) FilterByDegree(g, req[u], &set);
    } else {
      // Reference path: scan every labelled node and test the conjunction.
      for (NodeId v : g.NodesWithLabel(label)) {
        if (filter &&
            (g.out_degree(v) < req[u].out_deg || g.in_degree(v) < req[u].in_deg)) {
          continue;
        }
        if (NodeSatisfies(g, v, label, lits)) set.push_back(v);
      }
    }
    space.per_node_[u] = MakeEntry(std::move(set), g.num_nodes());
  }
  return space;
}

CandidateSpace CandidateSpace::DeriveRefined(const Graph& g,
                                             const QueryInstance& child,
                                             const CandidateSpace& parent,
                                             uint32_t changed_var,
                                             bool use_index, MatchStats* stats) {
  const QueryTemplate& tmpl = child.tmpl();
  FAIRSQG_CHECK(parent.per_node_.size() == tmpl.num_nodes())
      << "candidate space arity mismatch";
  CandidateSpace space;
  space.per_node_ = parent.per_node_;  // Share every entry by pointer.
  if (changed_var >= tmpl.num_range_vars()) {
    return space;  // Edge-variable step: no literal changed.
  }
  const LiteralTemplate& l = tmpl.literals()[tmpl.literal_of_var(changed_var)];
  QNodeId u = l.node;
  LabelId label = tmpl.node_label(u);
  const std::vector<BoundLiteral>& lits = child.literals_of(u);

  NodeSet set;
  if (use_index) {
    // Start from the parent's (superset) candidates and re-apply the full
    // conjunction through index slices: sandwich-pruned contexts may be
    // stale in more than the changed literal, so every literal of `u` is
    // re-checked — exactly like the reference path, but against contiguous
    // slices instead of per-node attribute probes.
    set = parent.of(u);
    NodeSet scratch, merged;
    for (const BoundLiteral& bl : lits) {
      if (set.empty()) break;
      const AttrRangeIndex* idx = g.RangeIndex(label, bl.attr);
      if (idx == nullptr) {
        set.clear();
        break;
      }
      if (stats != nullptr) ++stats->index_slices;
      std::span<const NodeId> s = idx->SliceFor(bl.op, bl.value);
      if (s.empty()) {
        set.clear();
        break;
      }
      if (s.size() <= kSliceSortBudget * set.size() + 64) {
        scratch.assign(s.begin(), s.end());
        std::sort(scratch.begin(), scratch.end());
        IntersectSorted(set, scratch, &merged);
        set.swap(merged);
      } else {
        FilterByLiteral(g, bl, &set);
      }
    }
  } else {
    for (NodeId v : parent.of(u)) {  // Refinement shrinks: parent is a superset.
      if (NodeSatisfies(g, v, label, lits)) set.push_back(v);
    }
  }
  space.per_node_[u] = MakeEntry(std::move(set), g.num_nodes());
  return space;
}

bool CandidateSpace::HasEmptyActive(const QueryInstance& q) const {
  for (QNodeId u : q.active_nodes()) {
    if (per_node_[u].nodes->empty()) return true;
  }
  return false;
}

}  // namespace fairsqg
