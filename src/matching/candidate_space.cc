#include "matching/candidate_space.h"

#include "common/logging.h"

namespace fairsqg {

bool NodeSatisfies(const Graph& g, NodeId v, LabelId label,
                   const std::vector<BoundLiteral>& literals) {
  if (g.node_label(v) != label) return false;
  for (const BoundLiteral& l : literals) {
    const AttrValue* value = g.GetAttr(v, l.attr);
    if (value == nullptr || !value->Compare(l.op, l.value)) return false;
  }
  return true;
}

CandidateSpace CandidateSpace::Build(const Graph& g, const QueryInstance& q,
                                     bool degree_filter) {
  CandidateSpace space;
  const QueryTemplate& tmpl = q.tmpl();

  // Active out/in degree per query node (for the degree filter).
  std::vector<size_t> out_deg(tmpl.num_nodes(), 0);
  std::vector<size_t> in_deg(tmpl.num_nodes(), 0);
  if (degree_filter) {
    for (const InstanceEdge& e : q.active_edges()) {
      ++out_deg[e.from];
      ++in_deg[e.to];
    }
  }

  space.per_node_.resize(tmpl.num_nodes());
  for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
    LabelId label = tmpl.node_label(u);
    auto set = std::make_shared<NodeSet>();
    const std::vector<BoundLiteral>& lits = q.literals_of(u);
    bool filter = degree_filter && q.is_active(u);
    for (NodeId v : g.NodesWithLabel(label)) {
      if (filter && (g.out_degree(v) < out_deg[u] || g.in_degree(v) < in_deg[u])) {
        continue;
      }
      if (NodeSatisfies(g, v, label, lits)) set->push_back(v);
    }
    space.per_node_[u] = std::move(set);
  }
  return space;
}

CandidateSpace CandidateSpace::DeriveRefined(const Graph& g,
                                             const QueryInstance& child,
                                             const CandidateSpace& parent,
                                             uint32_t changed_var) {
  const QueryTemplate& tmpl = child.tmpl();
  FAIRSQG_CHECK(parent.per_node_.size() == tmpl.num_nodes())
      << "candidate space arity mismatch";
  CandidateSpace space;
  space.per_node_ = parent.per_node_;  // Share every set by pointer.
  if (changed_var >= tmpl.num_range_vars()) {
    return space;  // Edge-variable step: no literal changed.
  }
  const LiteralTemplate& l = tmpl.literals()[tmpl.literal_of_var(changed_var)];
  QNodeId u = l.node;
  LabelId label = tmpl.node_label(u);
  auto set = std::make_shared<NodeSet>();
  const std::vector<BoundLiteral>& lits = child.literals_of(u);
  for (NodeId v : parent.of(u)) {  // Refinement shrinks: parent is a superset.
    if (NodeSatisfies(g, v, label, lits)) set->push_back(v);
  }
  space.per_node_[u] = std::move(set);
  return space;
}

bool CandidateSpace::HasEmptyActive(const QueryInstance& q) const {
  for (QNodeId u : q.active_nodes()) {
    if (per_node_[u]->empty()) return true;
  }
  return false;
}

}  // namespace fairsqg
