#ifndef FAIRSQG_MATCHING_BRUTE_FORCE_H_
#define FAIRSQG_MATCHING_BRUTE_FORCE_H_

#include "matching/candidate_space.h"

namespace fairsqg {

/// \brief Reference implementation of output-node matching.
///
/// Enumerates every injective assignment of data nodes to the active query
/// nodes and checks all labels, literals, and edges directly. Exponential;
/// only for cross-validating SubgraphMatcher in tests and for tiny graphs.
NodeSet BruteForceMatchOutput(const Graph& g, const QueryInstance& q);

}  // namespace fairsqg

#endif  // FAIRSQG_MATCHING_BRUTE_FORCE_H_
