#ifndef FAIRSQG_MATCHING_MATCH_STATS_H_
#define FAIRSQG_MATCHING_MATCH_STATS_H_

#include <cstdint>

namespace fairsqg {

/// Counters accumulated across MatchOutput calls and candidate builds.
struct MatchStats {
  uint64_t instances_matched = 0;
  uint64_t output_candidates_tested = 0;
  uint64_t backtrack_steps = 0;

  /// AttrRangeIndex slices taken while building candidate sets (one per
  /// bound literal resolved through the index fast path).
  uint64_t index_slices = 0;
  /// O(1) candidate-membership bit tests in the backtracking inner loop
  /// (each replaces a sorted-set binary search).
  uint64_t bitset_probes = 0;

  /// Bounded matches that tripped the RunContext (deadline/cancel) or the
  /// per-match step budget; their partial match sets were discarded.
  uint64_t aborted_matches = 0;

  void Reset() { *this = MatchStats(); }
};

}  // namespace fairsqg

#endif  // FAIRSQG_MATCHING_MATCH_STATS_H_
