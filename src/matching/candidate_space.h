#ifndef FAIRSQG_MATCHING_CANDIDATE_SPACE_H_
#define FAIRSQG_MATCHING_CANDIDATE_SPACE_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "query/instance.h"

namespace fairsqg {

/// \brief Per-query-node candidate sets: for each template node `u`, the
/// data nodes with `u`'s label satisfying all of `u`'s bound literals.
///
/// Candidate sets are shared copy-on-write between a parent instance and
/// its lattice children, because a one-variable refinement only shrinks the
/// candidates of the literal's node (Lemma 2): DeriveRefined reuses every
/// other node's set by pointer.
class CandidateSpace {
 public:
  CandidateSpace() = default;

  /// Builds candidates for every template node of `q` from scratch.
  /// With `degree_filter` (valid under isomorphism semantics only), a
  /// candidate for an active query node must have at least the node's
  /// active out- and in-degrees: injectivity forces distinct data edges
  /// per query edge, so lower-degree nodes can never host an embedding.
  static CandidateSpace Build(const Graph& g, const QueryInstance& q,
                              bool degree_filter = false);

  /// Derives the space of a child instance that refines `parent_instance`'s
  /// space at one range variable: only that literal's node is re-filtered,
  /// starting from the parent's (superset) candidates. Edge-variable steps
  /// leave all candidate sets untouched.
  ///
  /// `changed_var` uses the lattice encoding (range vars first).
  static CandidateSpace DeriveRefined(const Graph& g, const QueryInstance& child,
                                      const CandidateSpace& parent,
                                      uint32_t changed_var);

  /// Candidates of query node `u`; never null after Build/Derive.
  const NodeSet& of(QNodeId u) const { return *per_node_[u]; }

  size_t num_nodes() const { return per_node_.size(); }

  /// True if some *active* node of `q` has no candidates (no match exists).
  bool HasEmptyActive(const QueryInstance& q) const;

 private:
  std::vector<std::shared_ptr<const NodeSet>> per_node_;
};

/// True iff data node `v` carries `label` and satisfies every literal in
/// `literals` (conjunction; missing attributes never satisfy a predicate).
bool NodeSatisfies(const Graph& g, NodeId v, LabelId label,
                   const std::vector<BoundLiteral>& literals);

}  // namespace fairsqg

#endif  // FAIRSQG_MATCHING_CANDIDATE_SPACE_H_
