#ifndef FAIRSQG_MATCHING_CANDIDATE_SPACE_H_
#define FAIRSQG_MATCHING_CANDIDATE_SPACE_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "matching/match_stats.h"
#include "query/instance.h"

namespace fairsqg {

/// \brief Per-query-node candidate sets: for each template node `u`, the
/// data nodes with `u`'s label satisfying all of `u`'s bound literals.
///
/// Each node stores the candidates twice: as a sorted id vector (for
/// ordered iteration and merge-joins) and as a dense NodeBitset (for the
/// matcher's O(1) membership probes). Both views are shared copy-on-write
/// between a parent instance and its lattice children, because a
/// one-variable refinement only shrinks the candidates of the literal's
/// node (Lemma 2): DeriveRefined reuses every other node's entry by
/// pointer, and an edge-variable step copies nothing at all.
///
/// Construction is selectivity-adaptive when `use_index` is set:
///  - a node with no bound literals (and no effective degree filter)
///    aliases the Graph-owned label set and label bitset — zero copies;
///  - selective literals resolve through AttrRangeIndex slices, sorting the
///    smallest slice and intersecting the rest by galloping merge or a
///    direct per-node predicate test, whichever is cheaper;
///  - unselective literals fall back to bitmap filtering: one AND per
///    literal slice over dense bitsets, then set-bit extraction (which
///    yields id-sorted output without a sort).
class CandidateSpace {
 public:
  CandidateSpace() = default;

  /// Builds candidates for every template node of `q` from scratch.
  /// With `degree_filter` (valid under isomorphism semantics only), a
  /// candidate for an active query node must have at least the node's
  /// active out- and in-degrees: injectivity forces distinct data edges
  /// per query edge, so lower-degree nodes can never host an embedding.
  /// `use_index=false` forces the reference label-scan path (NodeSatisfies
  /// per node); `stats`, when non-null, accrues `index_slices`.
  static CandidateSpace Build(const Graph& g, const QueryInstance& q,
                              bool degree_filter = false,
                              bool use_index = true,
                              MatchStats* stats = nullptr);

  /// Derives the space of a child instance that refines `parent_instance`'s
  /// space at one range variable: only that literal's node is re-filtered,
  /// starting from the parent's (superset) candidates. Edge-variable steps
  /// leave all candidate sets untouched.
  ///
  /// `changed_var` uses the lattice encoding (range vars first).
  static CandidateSpace DeriveRefined(const Graph& g, const QueryInstance& child,
                                      const CandidateSpace& parent,
                                      uint32_t changed_var,
                                      bool use_index = true,
                                      MatchStats* stats = nullptr);

  /// Candidates of query node `u`, ascending; never null after Build/Derive.
  const NodeSet& of(QNodeId u) const { return *per_node_[u].nodes; }

  /// Characteristic bitset of `of(u)` for O(1) membership probes.
  const NodeBitset& bits(QNodeId u) const { return *per_node_[u].bits; }

  /// True iff this space and `other` share node `u`'s candidate storage by
  /// pointer (the copy-on-write contract; used by tests).
  bool SharesEntryWith(const CandidateSpace& other, QNodeId u) const {
    return per_node_[u].nodes == other.per_node_[u].nodes &&
           per_node_[u].bits == other.per_node_[u].bits;
  }

  size_t num_nodes() const { return per_node_.size(); }

  /// True if some *active* node of `q` has no candidates (no match exists).
  bool HasEmptyActive(const QueryInstance& q) const;

 private:
  struct Entry {
    std::shared_ptr<const NodeSet> nodes;
    std::shared_ptr<const NodeBitset> bits;
  };

  static Entry MakeEntry(NodeSet set, size_t num_graph_nodes);

  std::vector<Entry> per_node_;
};

/// True iff data node `v` carries `label` and satisfies every literal in
/// `literals` (conjunction; missing attributes never satisfy a predicate).
bool NodeSatisfies(const Graph& g, NodeId v, LabelId label,
                   const std::vector<BoundLiteral>& literals);

}  // namespace fairsqg

#endif  // FAIRSQG_MATCHING_CANDIDATE_SPACE_H_
