#include "rpq/automaton.h"

#include <deque>

#include "common/logging.h"

namespace fairsqg {

NfaState Nfa::AddState() {
  transitions_.emplace_back();
  return static_cast<NfaState>(transitions_.size() - 1);
}

void Nfa::AddTransition(NfaState from, NfaState to, LabelId label, bool inverse) {
  transitions_[from].push_back({to, label, inverse});
}

std::pair<NfaState, NfaState> Nfa::BuildFragment(const RegexNode& node) {
  switch (node.kind) {
    case RegexNode::Kind::kLabel: {
      NfaState in = AddState();
      NfaState out = AddState();
      AddTransition(in, out, node.label, node.inverse);
      return {in, out};
    }
    case RegexNode::Kind::kConcat: {
      auto [lin, lout] = BuildFragment(*node.children[0]);
      auto [rin, rout] = BuildFragment(*node.children[1]);
      AddTransition(lout, rin, kInvalidLabel, false);
      return {lin, rout};
    }
    case RegexNode::Kind::kAlternate: {
      NfaState in = AddState();
      NfaState out = AddState();
      auto [lin, lout] = BuildFragment(*node.children[0]);
      auto [rin, rout] = BuildFragment(*node.children[1]);
      AddTransition(in, lin, kInvalidLabel, false);
      AddTransition(in, rin, kInvalidLabel, false);
      AddTransition(lout, out, kInvalidLabel, false);
      AddTransition(rout, out, kInvalidLabel, false);
      return {in, out};
    }
    case RegexNode::Kind::kStar: {
      NfaState in = AddState();
      NfaState out = AddState();
      auto [cin, cout] = BuildFragment(*node.children[0]);
      AddTransition(in, cin, kInvalidLabel, false);
      AddTransition(in, out, kInvalidLabel, false);
      AddTransition(cout, cin, kInvalidLabel, false);
      AddTransition(cout, out, kInvalidLabel, false);
      return {in, out};
    }
    case RegexNode::Kind::kPlus: {
      auto [cin, cout] = BuildFragment(*node.children[0]);
      NfaState out = AddState();
      AddTransition(cout, out, kInvalidLabel, false);
      AddTransition(cout, cin, kInvalidLabel, false);
      return {cin, out};
    }
    case RegexNode::Kind::kOptional: {
      NfaState in = AddState();
      NfaState out = AddState();
      auto [cin, cout] = BuildFragment(*node.children[0]);
      AddTransition(in, cin, kInvalidLabel, false);
      AddTransition(in, out, kInvalidLabel, false);
      AddTransition(cout, out, kInvalidLabel, false);
      return {in, out};
    }
  }
  FAIRSQG_CHECK(false) << "unknown regex node kind";
  return {0, 0};
}

Nfa Nfa::Build(const RegexNode& root) {
  Nfa nfa;
  auto [in, out] = nfa.BuildFragment(root);
  nfa.start_ = in;
  nfa.accept_ = out;
  return nfa;
}

void Nfa::EpsilonClose(std::vector<bool>* states) const {
  FAIRSQG_CHECK(states->size() == num_states());
  std::deque<NfaState> queue;
  for (NfaState s = 0; s < num_states(); ++s) {
    if ((*states)[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    NfaState s = queue.front();
    queue.pop_front();
    for (const Transition& t : transitions_[s]) {
      if (t.is_epsilon() && !(*states)[t.to]) {
        (*states)[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
}

}  // namespace fairsqg
