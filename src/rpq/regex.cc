#include "rpq/regex.h"

#include <cctype>

namespace fairsqg {

namespace {

/// Recursive-descent parser over the grammar in regex.h.
class Parser {
 public:
  Parser(std::string_view text, Schema* schema) : text_(text), schema_(schema) {}

  Result<std::unique_ptr<RegexNode>> Parse() {
    FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> expr, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("unexpected trailing input");
    }
    return expr;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::InvalidArgument("path regex, position " +
                                   std::to_string(pos_) + ": " + why);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  Result<std::unique_ptr<RegexNode>> ParseExpr() {
    FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> left, ParseTerm());
    while (Consume('|')) {
      FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> right, ParseTerm());
      auto node = std::make_unique<RegexNode>();
      node->kind = RegexNode::Kind::kAlternate;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  bool AtomAhead() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return IsLabelChar(c) || c == '(' || c == '^';
  }

  Result<std::unique_ptr<RegexNode>> ParseTerm() {
    FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> left, ParseFactor());
    for (;;) {
      if (Consume('/')) {
        // Explicit concatenation.
      } else if (!AtomAhead()) {
        break;
      }
      FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> right, ParseFactor());
      auto node = std::make_unique<RegexNode>();
      node->kind = RegexNode::Kind::kConcat;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<RegexNode>> ParseFactor() {
    FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> atom, ParseAtom());
    SkipSpace();
    if (pos_ < text_.size()) {
      RegexNode::Kind kind;
      bool quantified = true;
      switch (text_[pos_]) {
        case '*':
          kind = RegexNode::Kind::kStar;
          break;
        case '+':
          kind = RegexNode::Kind::kPlus;
          break;
        case '?':
          kind = RegexNode::Kind::kOptional;
          break;
        default:
          quantified = false;
          kind = RegexNode::Kind::kStar;
          break;
      }
      if (quantified) {
        ++pos_;
        auto node = std::make_unique<RegexNode>();
        node->kind = kind;
        node->children.push_back(std::move(atom));
        return node;
      }
    }
    return atom;
  }

  Result<std::unique_ptr<RegexNode>> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected a label or '('");
    if (Consume('(')) {
      FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> expr, ParseExpr());
      if (!Consume(')')) return Fail("expected ')'");
      return expr;
    }
    bool inverse = Consume('^');
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Fail("expected an edge label");
    auto node = std::make_unique<RegexNode>();
    node->kind = RegexNode::Kind::kLabel;
    node->label = schema_->InternEdgeLabel(text_.substr(start, pos_ - start));
    node->inverse = inverse;
    return node;
  }

  std::string_view text_;
  Schema* schema_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathRegex> ParsePathRegex(std::string_view text, Schema* schema) {
  if (schema == nullptr) return Status::InvalidArgument("schema must be set");
  Parser parser(text, schema);
  FAIRSQG_ASSIGN_OR_RETURN(std::unique_ptr<RegexNode> root, parser.Parse());
  PathRegex out;
  out.text = RegexToString(*root, *schema);
  out.root = std::move(root);
  return out;
}

std::string RegexToString(const RegexNode& node, const Schema& schema) {
  switch (node.kind) {
    case RegexNode::Kind::kLabel:
      return (node.inverse ? "^" : "") + schema.EdgeLabelName(node.label);
    case RegexNode::Kind::kConcat:
      return RegexToString(*node.children[0], schema) + "/" +
             RegexToString(*node.children[1], schema);
    case RegexNode::Kind::kAlternate:
      return "(" + RegexToString(*node.children[0], schema) + "|" +
             RegexToString(*node.children[1], schema) + ")";
    case RegexNode::Kind::kStar:
      return "(" + RegexToString(*node.children[0], schema) + ")*";
    case RegexNode::Kind::kPlus:
      return "(" + RegexToString(*node.children[0], schema) + ")+";
    case RegexNode::Kind::kOptional:
      return "(" + RegexToString(*node.children[0], schema) + ")?";
  }
  return "?";
}

}  // namespace fairsqg
