#ifndef FAIRSQG_RPQ_RPQ_ENGINE_H_
#define FAIRSQG_RPQ_RPQ_ENGINE_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "rpq/automaton.h"

namespace fairsqg {

/// \brief Regular-path-query evaluation over attributed graphs: BFS on the
/// product of the data graph and the expression's NFA.
///
/// RPQs are the query class the paper's benchmark baseline [4] generates
/// for and the extension its conclusion names. Combined with the library's
/// measures, RPQ answers can be scored for diversity and group coverage
/// exactly like subgraph-query answers (see EvaluateRpqAnswer in
/// core/... examples and the rpq tests).
class RpqEngine {
 public:
  explicit RpqEngine(const Graph& g) : g_(&g) {}

  /// Nodes reachable from `source` along a path matching `regex`.
  /// Includes `source` itself only if the empty path matches.
  NodeSet ReachableFrom(const PathRegex& regex, NodeId source) const;

  /// Union of ReachableFrom over all `sources` (deduplicated, sorted).
  /// Shares one product-BFS, so it is much cheaper than per-source calls.
  NodeSet ReachableFromAny(const PathRegex& regex, const NodeSet& sources) const;

  /// All (source, target) pairs with source label `source_label` (or any
  /// node when kInvalidLabel) matching the expression; stops after
  /// `max_pairs` results (0 = unlimited). Sorted lexicographically.
  std::vector<std::pair<NodeId, NodeId>> EvaluateAll(
      const PathRegex& regex, LabelId source_label = kInvalidLabel,
      size_t max_pairs = 0) const;

 private:
  /// Product BFS from `sources` all starting in the NFA start state;
  /// returns the set of data nodes observed in the accept state.
  NodeSet ProductBfs(const Nfa& nfa, const NodeSet& sources) const;

  const Graph* g_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_RPQ_RPQ_ENGINE_H_
