#ifndef FAIRSQG_RPQ_REGEX_H_
#define FAIRSQG_RPQ_REGEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/schema.h"

namespace fairsqg {

/// \brief AST of a regular path expression over edge labels — the query
/// class the paper names as a future extension (Section VI) and the one
/// its benchmark-generation baseline [4] targets.
///
/// Grammar (2RPQ: labels may be traversed backwards with '^'):
/// \code
///   expr   := term ('|' term)*
///   term   := factor factor*            (concatenation by juxtaposition
///   factor := atom ('*' | '+' | '?')?    or explicit '/')
///   atom   := label | '^' label | '(' expr ')'
///   label  := [A-Za-z0-9_-]+
/// \endcode
struct RegexNode {
  enum class Kind { kLabel, kConcat, kAlternate, kStar, kPlus, kOptional };

  Kind kind = Kind::kLabel;
  /// For kLabel: the edge label and traversal direction.
  LabelId label = kInvalidLabel;
  bool inverse = false;
  /// Children: 2 for kConcat/kAlternate (left, right), 1 for the unary
  /// quantifiers.
  std::vector<std::unique_ptr<RegexNode>> children;
};

/// A parsed regular path expression plus its rendering.
struct PathRegex {
  std::unique_ptr<RegexNode> root;
  std::string text;
};

/// \brief Parses `text` into a PathRegex, interning labels into `schema`.
/// Whitespace between tokens is ignored.
Result<PathRegex> ParsePathRegex(std::string_view text, Schema* schema);

/// Renders the AST back to a normalized expression string.
std::string RegexToString(const RegexNode& node, const Schema& schema);

}  // namespace fairsqg

#endif  // FAIRSQG_RPQ_REGEX_H_
