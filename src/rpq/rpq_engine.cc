#include "rpq/rpq_engine.h"

#include <algorithm>
#include <deque>

namespace fairsqg {

NodeSet RpqEngine::ProductBfs(const Nfa& nfa, const NodeSet& sources) const {
  const size_t num_states = nfa.num_states();
  // visited[v * num_states + s]: product node (v, s) reached.
  std::vector<bool> visited(g_->num_nodes() * num_states, false);
  std::deque<std::pair<NodeId, NfaState>> queue;

  auto visit = [&](NodeId v, NfaState s) {
    size_t idx = static_cast<size_t>(v) * num_states + s;
    if (!visited[idx]) {
      visited[idx] = true;
      queue.emplace_back(v, s);
    }
  };

  for (NodeId v : sources) {
    if (v < g_->num_nodes()) visit(v, nfa.start());
  }
  while (!queue.empty()) {
    auto [v, s] = queue.front();
    queue.pop_front();
    for (const Nfa::Transition& t : nfa.transitions_from(s)) {
      if (t.is_epsilon()) {
        visit(v, t.to);
        continue;
      }
      auto adjacency = t.inverse ? g_->InEdges(v) : g_->OutEdges(v);
      for (const AdjEntry& e : adjacency) {
        if (e.edge_label == t.label) visit(e.neighbor, t.to);
      }
    }
  }

  NodeSet out;
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (visited[static_cast<size_t>(v) * num_states + nfa.accept()]) {
      out.push_back(v);
    }
  }
  return out;
}

NodeSet RpqEngine::ReachableFrom(const PathRegex& regex, NodeId source) const {
  return ReachableFromAny(regex, {source});
}

NodeSet RpqEngine::ReachableFromAny(const PathRegex& regex,
                                    const NodeSet& sources) const {
  Nfa nfa = Nfa::Build(*regex.root);
  return ProductBfs(nfa, sources);
}

std::vector<std::pair<NodeId, NodeId>> RpqEngine::EvaluateAll(
    const PathRegex& regex, LabelId source_label, size_t max_pairs) const {
  Nfa nfa = Nfa::Build(*regex.root);
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (source_label != kInvalidLabel && g_->node_label(v) != source_label) {
      continue;
    }
    for (NodeId target : ProductBfs(nfa, {v})) {
      out.emplace_back(v, target);
      if (max_pairs > 0 && out.size() >= max_pairs) return out;
    }
  }
  return out;
}

}  // namespace fairsqg
