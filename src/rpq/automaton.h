#ifndef FAIRSQG_RPQ_AUTOMATON_H_
#define FAIRSQG_RPQ_AUTOMATON_H_

#include <cstdint>
#include <vector>

#include "rpq/regex.h"

namespace fairsqg {

/// State index in an Nfa.
using NfaState = uint32_t;

/// \brief Nondeterministic finite automaton over edge-label transitions,
/// built from a PathRegex by Thompson's construction.
///
/// A transition consumes one data edge with the given label, traversed
/// forward or (inverse) backward; epsilon transitions consume nothing.
class Nfa {
 public:
  struct Transition {
    NfaState to;
    LabelId label;   // kInvalidLabel for epsilon.
    bool inverse;    // Traverse the data edge target->source.

    bool is_epsilon() const { return label == kInvalidLabel; }
  };

  /// Thompson construction; the result has exactly one start and one
  /// accept state.
  static Nfa Build(const RegexNode& root);

  size_t num_states() const { return transitions_.size(); }
  NfaState start() const { return start_; }
  NfaState accept() const { return accept_; }
  const std::vector<Transition>& transitions_from(NfaState s) const {
    return transitions_[s];
  }

  /// Expands `states` (a membership bitmap) to its epsilon closure in
  /// place; `worklist` is scratch space.
  void EpsilonClose(std::vector<bool>* states) const;

 private:
  NfaState AddState();
  void AddTransition(NfaState from, NfaState to, LabelId label, bool inverse);
  /// Recursive Thompson step; returns (entry, exit) states of the fragment.
  std::pair<NfaState, NfaState> BuildFragment(const RegexNode& node);

  std::vector<std::vector<Transition>> transitions_;
  NfaState start_ = 0;
  NfaState accept_ = 0;
};

}  // namespace fairsqg

#endif  // FAIRSQG_RPQ_AUTOMATON_H_
