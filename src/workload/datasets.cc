#include "workload/datasets.h"

#include <cmath>

#include "workload/citation_generator.h"
#include "workload/movie_kg_generator.h"
#include "workload/social_net_generator.h"

namespace fairsqg {

namespace {

size_t Scaled(size_t base, double scale) {
  size_t v = static_cast<size_t>(std::llround(static_cast<double>(base) * scale));
  return v > 0 ? v : 1;
}

Dataset Finish(const std::string& name, std::shared_ptr<Schema> schema, Graph graph,
               const char* output_label, const char* group_attr,
               size_t max_groups) {
  LabelId label = schema->NodeLabelId(output_label);
  AttrId attr = schema->AttrIdOf(group_attr);
  return Dataset{name, std::move(schema), std::move(graph), label, attr,
                 max_groups};
}

}  // namespace

Result<Dataset> MakeDataset(const std::string& name, double scale, uint64_t seed) {
  if (scale <= 0) return Status::InvalidArgument("scale must be positive");
  auto schema = std::make_shared<Schema>();

  if (name == "dbp") {
    MovieKgParams p;
    p.num_movies = Scaled(p.num_movies, scale);
    p.num_directors = Scaled(p.num_directors, scale);
    p.num_actors = Scaled(p.num_actors, scale);
    p.num_studios = Scaled(p.num_studios, scale);
    p.seed = seed;
    FAIRSQG_ASSIGN_OR_RETURN(Graph g, GenerateMovieKg(p, schema));
    return Finish(name, std::move(schema), std::move(g), "movie", "genre", 5);
  }
  if (name == "lki") {
    SocialNetParams p;
    p.num_users = Scaled(p.num_users, scale);
    p.num_directors = Scaled(p.num_directors, scale);
    p.num_orgs = Scaled(p.num_orgs, scale);
    p.seed = seed;
    FAIRSQG_ASSIGN_OR_RETURN(Graph g, GenerateSocialNetwork(p, schema));
    return Finish(name, std::move(schema), std::move(g), "director", "gender", 2);
  }
  if (name == "cite") {
    CitationParams p;
    p.num_papers = Scaled(p.num_papers, scale);
    p.num_authors = Scaled(p.num_authors, scale);
    p.seed = seed;
    FAIRSQG_ASSIGN_OR_RETURN(Graph g, GenerateCitationGraph(p, schema));
    return Finish(name, std::move(schema), std::move(g), "paper", "topic", 4);
  }
  return Status::InvalidArgument("unknown dataset '" + name +
                                 "'; expected dbp, lki, or cite");
}

}  // namespace fairsqg
