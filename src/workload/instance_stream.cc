#include "workload/instance_stream.h"

namespace fairsqg {

InstanceStream::InstanceStream(const QueryTemplate& tmpl,
                               const VariableDomains& domains, uint64_t seed,
                               bool dedup)
    : tmpl_(&tmpl),
      domains_(&domains),
      rng_(seed),
      dedup_(dedup),
      space_size_(domains.InstanceSpaceSize(tmpl)) {}

bool InstanceStream::Next(Instantiation* out) {
  if (dedup_ && seen_.size() >= space_size_) return false;
  for (;;) {
    std::vector<int32_t> range(tmpl_->num_range_vars());
    for (RangeVarId x = 0; x < tmpl_->num_range_vars(); ++x) {
      // Uniform over {wildcard, 0, ..., |dom|-1}.
      range[x] = static_cast<int32_t>(
                     rng_.NextBounded(domains_->size(x) + 1)) - 1;
    }
    std::vector<uint8_t> edge(tmpl_->num_edge_vars());
    for (EdgeVarId x = 0; x < tmpl_->num_edge_vars(); ++x) {
      edge[x] = static_cast<uint8_t>(rng_.NextBounded(2));
    }
    Instantiation inst(std::move(range), std::move(edge));
    if (dedup_ && !seen_.insert(inst).second) continue;
    *out = std::move(inst);
    ++emitted_;
    return true;
  }
}

}  // namespace fairsqg
