#include "workload/social_net_generator.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace fairsqg {

namespace {

const char* kMajors[] = {
    "computer-science", "electrical-eng", "mechanical-eng", "mathematics",
    "physics",          "economics",      "business",       "statistics",
    "biology",          "chemistry",      "design",         "psychology",
    "marketing",        "finance",        "accounting",     "philosophy",
    "linguistics",      "civil-eng",      "chemical-eng",   "data-science",
    "law",              "medicine",       "history",        "music"};

const char* kSectors[] = {"IT", "finance", "health", "retail",
                          "manufacturing", "education", "media", "energy"};

// Employee-count ladder (the Fig. 1 predicate `employees >= x` ranges over
// these buckets).
const int64_t kEmployeeBuckets[] = {10,   25,   50,   100,  250,  500,
                                    1000, 2500, 5000, 10000, 25000, 50000};

/// Skewed years of experience in [0, 30]: most people are early-career.
int64_t SampleYearsOfExp(Rng* rng) {
  return static_cast<int64_t>(rng->NextZipf(31, 0.6));
}

void FillPerson(GraphBuilder* b, Rng* rng, NodeId v, double female_ratio) {
  b->SetAttr(v, "yearsOfExp", AttrValue(SampleYearsOfExp(rng)));
  b->SetAttr(v, "major",
             AttrValue(std::string(kMajors[rng->NextZipf(24, 1.05)])));
  b->SetAttr(v, "gender", AttrValue(std::string(
                              rng->NextBernoulli(female_ratio) ? "female" : "male")));
  b->SetAttr(v, "salaryBand",
             AttrValue(static_cast<int64_t>(1 + rng->NextBounded(10))));
}

}  // namespace

Result<Graph> GenerateSocialNetwork(const SocialNetParams& params,
                                    std::shared_ptr<Schema> schema) {
  if (params.num_users == 0 || params.num_directors == 0 || params.num_orgs == 0) {
    return Status::InvalidArgument("social network needs users, directors, orgs");
  }
  Rng rng(params.seed);
  GraphBuilder b(std::move(schema));

  std::vector<NodeId> users;
  users.reserve(params.num_users);
  for (size_t i = 0; i < params.num_users; ++i) {
    NodeId v = b.AddNode("user");
    FillPerson(&b, &rng, v, params.female_ratio);
    users.push_back(v);
  }
  std::vector<NodeId> directors;
  directors.reserve(params.num_directors);
  for (size_t i = 0; i < params.num_directors; ++i) {
    NodeId v = b.AddNode("director");
    FillPerson(&b, &rng, v, params.female_ratio);
    // Directors skew senior.
    b.SetAttr(v, "yearsOfExp",
              AttrValue(static_cast<int64_t>(5 + rng.NextZipf(26, 0.5))));
    directors.push_back(v);
  }
  std::vector<NodeId> orgs;
  orgs.reserve(params.num_orgs);
  for (size_t i = 0; i < params.num_orgs; ++i) {
    NodeId v = b.AddNode("org");
    b.SetAttr(v, "employees",
              AttrValue(kEmployeeBuckets[rng.NextZipf(12, 0.8)]));
    b.SetAttr(v, "sector", AttrValue(std::string(kSectors[rng.NextZipf(8, 0.9)])));
    orgs.push_back(v);
  }

  // Everyone works at exactly one org; org popularity is Zipf.
  auto work_org = [&]() { return orgs[rng.NextZipf(orgs.size(), 1.0)]; };
  for (NodeId u : users) b.AddEdge(u, work_org(), "worksAt");
  for (NodeId d : directors) b.AddEdge(d, work_org(), "worksAt");

  // Recommendations: preferential attachment — targets repeat-sampled from
  // a growing pool so popular people accumulate endorsements. Half of the
  // target pool mass starts on directors so the talent-search template has
  // matches.
  std::vector<NodeId> pool;
  pool.reserve(users.size() * 2);
  for (NodeId d : directors) {
    pool.push_back(d);
    pool.push_back(d);
  }
  for (NodeId u : users) pool.push_back(u);
  size_t num_rec = static_cast<size_t>(
      params.avg_recommendations *
      static_cast<double>(users.size() + directors.size()));
  for (size_t i = 0; i < num_rec; ++i) {
    NodeId from = users[rng.NextBounded(users.size())];
    NodeId to = pool[rng.NextBounded(pool.size())];
    if (from == to) continue;
    b.AddEdge(from, to, "recommend");
    pool.push_back(to);  // Rich get richer.
  }

  // coReview noise among users.
  for (size_t i = 0; i < users.size(); ++i) {
    if (rng.NextBernoulli(0.5)) {
      NodeId other = users[rng.NextBounded(users.size())];
      if (other != users[i]) b.AddEdge(users[i], other, "coReview");
    }
  }

  return std::move(b).Build();
}

}  // namespace fairsqg
