#ifndef FAIRSQG_WORKLOAD_INSTANCE_STREAM_H_
#define FAIRSQG_WORKLOAD_INSTANCE_STREAM_H_

#include <unordered_set>

#include "common/random.h"
#include "query/instantiation.h"

namespace fairsqg {

/// \brief A stream of randomly instantiated query instances (Section IV-C:
/// "simulate instance streams by randomly instantiating fixed query
/// templates"), feeding OnlineQGen.
///
/// Each range variable draws uniformly from {wildcard} ∪ its domain, each
/// edge variable from {0, 1}. With dedup enabled, the stream ends once the
/// whole space I(Q) has been emitted.
class InstanceStream {
 public:
  InstanceStream(const QueryTemplate& tmpl, const VariableDomains& domains,
                 uint64_t seed, bool dedup = false);

  /// Emits the next instantiation; false only when dedup is on and the
  /// instance space is exhausted.
  bool Next(Instantiation* out);

  size_t emitted() const { return emitted_; }

 private:
  const QueryTemplate* tmpl_;
  const VariableDomains* domains_;
  Rng rng_;
  bool dedup_;
  size_t space_size_;
  size_t emitted_ = 0;
  std::unordered_set<Instantiation, Instantiation::Hasher> seen_;
};

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_INSTANCE_STREAM_H_
