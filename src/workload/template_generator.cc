#include "workload/template_generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace fairsqg {

namespace {

struct SampledEdge {
  NodeId from;
  NodeId to;
  LabelId label;

  bool operator<(const SampledEdge& o) const {
    if (from != o.from) return from < o.from;
    if (to != o.to) return to < o.to;
    return label < o.label;
  }
};

/// One attempt: grow a connected subgraph with `num_edges` edges from `seed`.
bool GrowSubgraph(const Graph& g, Rng* rng, NodeId seed, size_t num_edges,
                  std::vector<NodeId>* nodes, std::set<SampledEdge>* edges) {
  nodes->clear();
  edges->clear();
  nodes->push_back(seed);
  size_t stall = 0;
  while (edges->size() < num_edges && stall < 50) {
    NodeId pivot = (*nodes)[rng->NextBounded(nodes->size())];
    size_t out_deg = g.out_degree(pivot);
    size_t in_deg = g.in_degree(pivot);
    if (out_deg + in_deg == 0) {
      ++stall;
      continue;
    }
    size_t pick = rng->NextBounded(out_deg + in_deg);
    SampledEdge e;
    NodeId other;
    if (pick < out_deg) {
      const AdjEntry& adj = g.OutEdges(pivot)[pick];
      e = {pivot, adj.neighbor, adj.edge_label};
      other = adj.neighbor;
    } else {
      const AdjEntry& adj = g.InEdges(pivot)[pick - out_deg];
      e = {adj.neighbor, pivot, adj.edge_label};
      other = adj.neighbor;
    }
    if (other == pivot || !edges->insert(e).second) {
      ++stall;
      continue;
    }
    stall = 0;
    if (std::find(nodes->begin(), nodes->end(), other) == nodes->end()) {
      nodes->push_back(other);
    }
  }
  return edges->size() == num_edges;
}

}  // namespace

Result<QueryTemplate> GenerateTemplate(const Graph& g, const TemplateSpec& spec) {
  if (spec.output_label == kInvalidLabel) {
    return Status::InvalidArgument("output_label must be set");
  }
  if (spec.num_edge_vars > spec.num_edges) {
    return Status::InvalidArgument("num_edge_vars exceeds num_edges");
  }
  const NodeSet& seeds = g.NodesWithLabel(spec.output_label);
  if (seeds.empty()) {
    return Status::NotFound("no node carries the output label");
  }

  Rng rng(spec.seed);
  for (size_t attempt = 0; attempt < spec.max_attempts; ++attempt) {
    NodeId seed = seeds[rng.NextBounded(seeds.size())];
    std::vector<NodeId> nodes;
    std::set<SampledEdge> edges;
    if (spec.num_edges > 0 &&
        !GrowSubgraph(g, &rng, seed, spec.num_edges, &nodes, &edges)) {
      continue;
    }

    // Choose which sampled edges carry Boolean variables.
    std::vector<SampledEdge> edge_list(edges.begin(), edges.end());
    std::vector<uint64_t> var_edges =
        rng.SampleWithoutReplacement(edge_list.size(), spec.num_edge_vars);
    std::set<uint64_t> var_edge_set(var_edges.begin(), var_edges.end());

    // Candidate (node, attr) pairs for range literals: numeric attributes
    // whose per-label domain has at least two values.
    struct RangeSite {
      size_t node_index;
      AttrId attr;
    };
    std::vector<RangeSite> sites;
    for (size_t i = 0; i < nodes.size(); ++i) {
      LabelId label = g.node_label(nodes[i]);
      for (const AttrEntry& a : g.attrs(nodes[i])) {
        if (!a.value.is_numeric()) continue;
        if (g.ActiveDomain(label, a.attr).size() < 2) continue;
        sites.push_back({i, a.attr});
      }
    }
    // Deduplicate sites by (node, attr).
    std::sort(sites.begin(), sites.end(), [](const RangeSite& a, const RangeSite& b) {
      if (a.node_index != b.node_index) return a.node_index < b.node_index;
      return a.attr < b.attr;
    });
    sites.erase(std::unique(sites.begin(), sites.end(),
                            [](const RangeSite& a, const RangeSite& b) {
                              return a.node_index == b.node_index &&
                                     a.attr == b.attr;
                            }),
                sites.end());
    if (sites.size() < spec.num_range_vars) continue;  // Resample.

    std::vector<uint64_t> chosen =
        rng.SampleWithoutReplacement(sites.size(), spec.num_range_vars);

    // Lift to a template.
    QueryTemplate tmpl(g.schema_ptr());
    std::map<NodeId, QNodeId> q_of;
    for (NodeId v : nodes) q_of[v] = tmpl.AddNode(g.node_label(v));
    tmpl.SetOutputNode(q_of[seed]);
    for (size_t i = 0; i < edge_list.size(); ++i) {
      const SampledEdge& e = edge_list[i];
      if (var_edge_set.count(i) > 0) {
        tmpl.AddVariableEdge(q_of[e.from], q_of[e.to], e.label);
      } else {
        tmpl.AddEdge(q_of[e.from], q_of[e.to], e.label);
      }
    }
    for (uint64_t s : chosen) {
      const RangeSite& site = sites[s];
      CompareOp op = rng.NextBernoulli(spec.lower_bound_prob) ? CompareOp::kGe
                                                              : CompareOp::kLe;
      tmpl.AddRangeLiteral(q_of[nodes[site.node_index]], site.attr, op);
    }
    Status valid = tmpl.Validate();
    if (!valid.ok()) continue;
    return tmpl;
  }
  return Status::FailedPrecondition(
      "could not sample a template matching the spec; graph too sparse?");
}

}  // namespace fairsqg
