#ifndef FAIRSQG_WORKLOAD_SOCIAL_NET_GENERATOR_H_
#define FAIRSQG_WORKLOAD_SOCIAL_NET_GENERATOR_H_

#include <memory>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// Parameters of the LKI-like professional social network.
struct SocialNetParams {
  size_t num_users = 5000;      ///< Label "user".
  size_t num_directors = 600;   ///< Label "director" (talent-search targets).
  size_t num_orgs = 250;        ///< Label "org".
  double female_ratio = 0.45;   ///< Synthetic gender skew (paper uses [14]).
  double avg_recommendations = 4.0;
  uint64_t seed = 42;
};

/// \brief Generates the LKI substitute: a professional network for the
/// Fig. 1 talent-search scenario.
///
/// Users and directors carry yearsOfExp (0-30, skewed), major (Zipf over 24
/// majors), gender ("male"/"female"), and salaryBand; organizations carry
/// employees (from a fixed bucket ladder, Zipf popularity) and sector.
/// Edges: every person worksAt one org (Zipf-popular), recommend edges form
/// a preferential-attachment graph from persons to persons/directors, and
/// coReview edges add symmetric noise. Deterministic per seed.
Result<Graph> GenerateSocialNetwork(const SocialNetParams& params,
                                    std::shared_ptr<Schema> schema);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_SOCIAL_NET_GENERATOR_H_
