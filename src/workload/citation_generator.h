#ifndef FAIRSQG_WORKLOAD_CITATION_GENERATOR_H_
#define FAIRSQG_WORKLOAD_CITATION_GENERATOR_H_

#include <memory>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// Parameters of the Cite-like academic graph.
struct CitationParams {
  size_t num_papers = 7000;
  size_t num_authors = 2500;
  double avg_citations = 5.0;  ///< cites edges per paper.
  double avg_authors = 2.5;    ///< authoredBy edges per paper.
  uint64_t seed = 42;
};

/// \brief Generates the Cite substitute: a citation/authorship graph for
/// diversified, fair academic recommendation.
///
/// Papers carry numberOfCitations (power-law, consistent with the in-degree
/// skew), year, venueRank and topic (8 areas); authors carry hIndex and
/// affiliationRank. Relations: cites (paper -> earlier paper, preferential)
/// and authoredBy (paper -> author, Zipf-prolific). Deterministic per seed.
Result<Graph> GenerateCitationGraph(const CitationParams& params,
                                    std::shared_ptr<Schema> schema);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_CITATION_GENERATOR_H_
