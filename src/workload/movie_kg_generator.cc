#include "workload/movie_kg_generator.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace fairsqg {

namespace {

const char* kGenres[] = {"action",  "romance",   "horror",  "comedy",
                         "drama",   "thriller",  "scifi",   "animation",
                         "fantasy", "documentary", "crime", "western"};

const char* kCountries[] = {"usa",    "uk",    "france", "india", "japan",
                            "korea",  "china", "germany", "italy", "brazil"};

}  // namespace

Result<Graph> GenerateMovieKg(const MovieKgParams& params,
                              std::shared_ptr<Schema> schema) {
  if (params.num_movies == 0 || params.num_directors == 0 ||
      params.num_actors == 0 || params.num_studios == 0) {
    return Status::InvalidArgument("movie KG needs all node populations");
  }
  Rng rng(params.seed);
  GraphBuilder b(std::move(schema));

  std::vector<NodeId> movies;
  movies.reserve(params.num_movies);
  for (size_t i = 0; i < params.num_movies; ++i) {
    NodeId v = b.AddNode("movie");
    // One-decimal ratings in [3.0, 9.5]; mid ratings most common.
    int64_t tenth = 30 + rng.NextInRange(0, 65);
    int64_t tenth2 = 30 + rng.NextInRange(0, 65);
    b.SetAttr(v, "rating", AttrValue(static_cast<double>((tenth + tenth2) / 2) / 10.0));
    b.SetAttr(v, "year", AttrValue(1950 + rng.NextInRange(0, 73)));
    b.SetAttr(v, "votes",
              AttrValue(static_cast<int64_t>((rng.NextZipf(1000, 1.1) + 1) * 100)));
    b.SetAttr(v, "genre", AttrValue(std::string(kGenres[rng.NextZipf(12, 1.15)])));
    b.SetAttr(v, "country",
              AttrValue(std::string(kCountries[rng.NextZipf(10, 0.9)])));
    movies.push_back(v);
  }

  std::vector<NodeId> directors;
  directors.reserve(params.num_directors);
  for (size_t i = 0; i < params.num_directors; ++i) {
    NodeId v = b.AddNode("director");
    b.SetAttr(v, "awardsWon", AttrValue(static_cast<int64_t>(rng.NextZipf(8, 1.0))));
    b.SetAttr(v, "country",
              AttrValue(std::string(kCountries[rng.NextZipf(10, 0.9)])));
    directors.push_back(v);
  }

  std::vector<NodeId> actors;
  actors.reserve(params.num_actors);
  for (size_t i = 0; i < params.num_actors; ++i) {
    NodeId v = b.AddNode("actor");
    b.SetAttr(v, "awardsWon", AttrValue(static_cast<int64_t>(rng.NextZipf(6, 1.2))));
    b.SetAttr(v, "country",
              AttrValue(std::string(kCountries[rng.NextZipf(10, 0.9)])));
    actors.push_back(v);
  }

  std::vector<NodeId> studios;
  studios.reserve(params.num_studios);
  for (size_t i = 0; i < params.num_studios; ++i) {
    NodeId v = b.AddNode("studio");
    b.SetAttr(v, "founded", AttrValue(1910 + rng.NextInRange(0, 100)));
    b.SetAttr(v, "size", AttrValue(static_cast<int64_t>(10 + rng.NextZipf(500, 0.9))));
    studios.push_back(v);
  }

  // Every movie has a director (Zipf-prolific), a producing studio, and a
  // Zipf-popular cast.
  for (NodeId m : movies) {
    NodeId d = directors[rng.NextZipf(directors.size(), 0.8)];
    b.AddEdge(d, m, "directed");
    b.AddEdge(m, studios[rng.NextZipf(studios.size(), 0.9)], "producedBy");
    size_t cast = 1 + rng.NextBounded(static_cast<uint64_t>(2 * params.avg_cast));
    for (size_t i = 0; i < cast; ++i) {
      NodeId a = actors[rng.NextZipf(actors.size(), 0.9)];
      b.AddEdge(m, a, "starring");
      if (rng.NextBernoulli(0.15)) b.AddEdge(d, a, "collaboratedWith");
    }
  }

  return std::move(b).Build();
}

}  // namespace fairsqg
