#ifndef FAIRSQG_WORKLOAD_DATASETS_H_
#define FAIRSQG_WORKLOAD_DATASETS_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// \brief A named benchmark dataset: the synthetic stand-in for one of the
/// paper's real-life graphs (Table II), plus the conventions the paper's
/// scenarios use on it (output label, grouping attribute).
struct Dataset {
  std::string name;
  std::shared_ptr<Schema> schema;
  Graph graph;
  /// Output-node label of the dataset's canonical search scenario.
  LabelId output_label = kInvalidLabel;
  /// Categorical attribute the paper induces groups from.
  AttrId group_attr = kInvalidAttr;
  /// Upper bound on |P| used in the paper for this dataset.
  size_t max_groups = 2;
};

/// \brief Builds a dataset by paper name: "dbp" (movie KG, genre groups),
/// "lki" (talent network, gender groups), or "cite" (citation graph, topic
/// groups). `scale` multiplies every node population (1.0 ~ 10-15k nodes);
/// generation is deterministic per (name, scale, seed).
Result<Dataset> MakeDataset(const std::string& name, double scale = 1.0,
                            uint64_t seed = 42);

/// Names accepted by MakeDataset.
inline const char* kDatasetNames[] = {"dbp", "lki", "cite"};

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_DATASETS_H_
