#ifndef FAIRSQG_WORKLOAD_TEMPLATE_GENERATOR_H_
#define FAIRSQG_WORKLOAD_TEMPLATE_GENERATOR_H_

#include <memory>

#include "common/result.h"
#include "graph/graph.h"
#include "query/query_template.h"

namespace fairsqg {

/// Controls of the template generator (Section V: "a generator to produce
/// query templates with practical search conditions, controlled by the
/// number of variables |X|, query size |Q(u_o)| and topologies").
struct TemplateSpec {
  /// Label of the designated output node u_o.
  LabelId output_label = kInvalidLabel;
  /// Query size |Q(u_o)|: number of query edges.
  size_t num_edges = 3;
  /// |X_L|: range variables on numeric attributes of sampled nodes.
  size_t num_range_vars = 2;
  /// |X_E|: edges carrying Boolean variables (must be <= num_edges).
  size_t num_edge_vars = 1;
  /// Probability a range literal is a lower bound (>=) vs upper bound (<=).
  double lower_bound_prob = 0.7;
  uint64_t seed = 1;
  /// Resampling attempts before giving up.
  size_t max_attempts = 200;
};

/// \brief Samples a query template from the data graph.
///
/// Grows a connected subgraph from a random node of the output label by
/// random incident-edge expansion, lifts it to a template (node labels,
/// edge labels, directions preserved), marks `num_edge_vars` random edges
/// as Boolean variables, and parameterizes `num_range_vars` literals on
/// numeric attributes of the sampled nodes. Because the sampled subgraph
/// embeds in G, the most relaxed instance is guaranteed at least one match.
Result<QueryTemplate> GenerateTemplate(const Graph& g, const TemplateSpec& spec);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_TEMPLATE_GENERATOR_H_
