#include "workload/workload_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "query/template_io.h"

namespace fairsqg {

Workload MakeWorkload(const QueryTemplate& tmpl,
                      const std::vector<EvaluatedPtr>& result) {
  Workload w{tmpl, {}, {}};
  for (const EvaluatedPtr& e : result) {
    w.instances.push_back(e->inst);
    w.quality.push_back(
        {e->matches.size(), e->obj.diversity, e->obj.coverage});
  }
  return w;
}

Status WriteWorkloadText(const Workload& workload, std::ostream& out) {
  FAIRSQG_RETURN_NOT_OK(WriteTemplateText(workload.tmpl, out));
  for (size_t i = 0; i < workload.instances.size(); ++i) {
    const Instantiation& inst = workload.instances[i];
    out << "instance";
    for (RangeVarId x = 0; x < inst.num_range_vars(); ++x) {
      out << " x" << x << "=";
      if (inst.is_wildcard(x)) {
        out << "_";
      } else {
        out << inst.range_binding(x);
      }
    }
    for (EdgeVarId x = 0; x < inst.num_edge_vars(); ++x) {
      out << " e" << x << "=" << static_cast<int>(inst.edge_binding(x));
    }
    if (i < workload.quality.size()) {
      const Workload::Quality& q = workload.quality[i];
      out << " matches=" << q.matches << " delta=" << q.diversity
          << " f=" << q.coverage;
    }
    out << "\n";
  }
  if (!out.good()) return Status::IoError("workload write failed");
  return Status::OK();
}

Status WriteWorkloadFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return WriteWorkloadText(workload, out);
}

Result<Workload> ReadWorkloadText(std::istream& in,
                                  std::shared_ptr<Schema> schema) {
  // Split the stream: template lines until the first `instance` line.
  std::ostringstream template_part;
  std::vector<std::string> instance_lines;
  std::string line;
  while (std::getline(in, line)) {
    if (StartsWith(StripWhitespace(line), "instance")) {
      instance_lines.push_back(line);
    } else {
      template_part << line << "\n";
    }
  }
  std::istringstream template_in(template_part.str());
  FAIRSQG_ASSIGN_OR_RETURN(QueryTemplate tmpl,
                           ReadTemplateText(template_in, std::move(schema)));

  Workload w{std::move(tmpl), {}, {}};
  for (const std::string& text : instance_lines) {
    std::vector<int32_t> range(w.tmpl.num_range_vars(), kWildcardBinding);
    std::vector<uint8_t> edge(w.tmpl.num_edge_vars(), 0);
    Workload::Quality quality;
    for (std::string_view tok : SplitString(StripWhitespace(text), ' ')) {
      if (tok.empty() || tok == "instance") continue;
      size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("bad instance token: '" +
                                       std::string(tok) + "'");
      }
      std::string_view key = tok.substr(0, eq);
      std::string_view value = tok.substr(eq + 1);
      if (key.size() >= 2 && key[0] == 'x') {
        FAIRSQG_ASSIGN_OR_RETURN(int64_t x, ParseInt64(key.substr(1)));
        if (x < 0 || x >= static_cast<int64_t>(range.size())) {
          return Status::InvalidArgument("range variable out of bounds in '" +
                                         std::string(tok) + "'");
        }
        if (value == "_") {
          range[x] = kWildcardBinding;
        } else {
          FAIRSQG_ASSIGN_OR_RETURN(int64_t idx, ParseInt64(value));
          range[x] = static_cast<int32_t>(idx);
        }
      } else if (key.size() >= 2 && key[0] == 'e' && key != "delta" &&
                 key[1] >= '0' && key[1] <= '9') {
        FAIRSQG_ASSIGN_OR_RETURN(int64_t x, ParseInt64(key.substr(1)));
        if (x < 0 || x >= static_cast<int64_t>(edge.size())) {
          return Status::InvalidArgument("edge variable out of bounds in '" +
                                         std::string(tok) + "'");
        }
        FAIRSQG_ASSIGN_OR_RETURN(int64_t b, ParseInt64(value));
        if (b != 0 && b != 1) {
          return Status::InvalidArgument("edge binding must be 0/1");
        }
        edge[x] = static_cast<uint8_t>(b);
      } else if (key == "matches") {
        FAIRSQG_ASSIGN_OR_RETURN(int64_t m, ParseInt64(value));
        quality.matches = static_cast<size_t>(m);
      } else if (key == "delta") {
        FAIRSQG_ASSIGN_OR_RETURN(quality.diversity, ParseDouble(value));
      } else if (key == "f") {
        FAIRSQG_ASSIGN_OR_RETURN(quality.coverage, ParseDouble(value));
      } else {
        return Status::InvalidArgument("unknown instance key '" +
                                       std::string(key) + "'");
      }
    }
    w.instances.emplace_back(std::move(range), std::move(edge));
    w.quality.push_back(quality);
  }
  return w;
}

Result<Workload> ReadWorkloadFile(const std::string& path,
                                  std::shared_ptr<Schema> schema) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return ReadWorkloadText(in, std::move(schema));
}

}  // namespace fairsqg
