#ifndef FAIRSQG_WORKLOAD_SCENARIO_H_
#define FAIRSQG_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/config.h"
#include "core/groups.h"
#include "query/domains.h"
#include "query/query_template.h"
#include "workload/datasets.h"

namespace fairsqg {

/// Knobs of a full experiment setup, mirroring the parameter columns of the
/// paper's Table II and the per-figure settings of Section V.
struct ScenarioOptions {
  std::string dataset = "dbp";
  double scale = 1.0;
  uint64_t seed = 42;

  /// |Q(u_o)| in edges, |X_L|, |X_E| (Table II: |Q| 3-5, |X| 3-5).
  size_t num_edges = 3;
  size_t num_range_vars = 2;
  size_t num_edge_vars = 1;

  /// |P| groups with equal-opportunity split of C.
  size_t num_groups = 2;
  size_t total_coverage = 40;  ///< C (paper uses 100-800 at 1M-5M nodes).

  /// When in (0, 1], ignore total_coverage and calibrate the per-group
  /// target c to the template's own match sizes:
  ///   c = m + coverage_fraction * (M - m),
  /// with m (M) the minimum per-group coverage of the most refined (most
  /// relaxed) instance. This puts the feasibility border inside the
  /// lattice and spreads f over (0, C] — the paper achieves the same by
  /// hand-tuning C per dataset. -1 disables calibration.
  double coverage_fraction = -1.0;

  /// Domain coarsening cap per range variable (controls |I(Q)|; the
  /// paper's largest spaces are 800-1400 instances).
  size_t max_domain_values = 8;

  uint64_t template_seed = 1;
  /// Template re-draws until the most relaxed instance is feasible.
  size_t max_template_attempts = 40;
};

/// \brief Everything one experiment needs, with stable addresses for
/// QGenConfig's non-owning pointers.
struct Scenario {
  Dataset dataset;
  std::unique_ptr<QueryTemplate> tmpl;
  std::unique_ptr<VariableDomains> domains;
  std::unique_ptr<GroupSet> groups;

  /// A ready-to-run configuration over this scenario's members.
  QGenConfig MakeConfig(double epsilon = 0.01) const {
    QGenConfig config;
    config.graph = &dataset.graph;
    config.tmpl = tmpl.get();
    config.domains = domains.get();
    config.groups = groups.get();
    config.epsilon = epsilon;
    return config;
  }
};

/// \brief Builds dataset + groups + template + coarsened domains, redrawing
/// templates until the most relaxed instance is feasible (the paper
/// "ensure[s] the existence of feasible query instances" the same way).
Result<Scenario> MakeScenario(const ScenarioOptions& options);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_SCENARIO_H_
