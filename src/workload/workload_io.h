#ifndef FAIRSQG_WORKLOAD_WORKLOAD_IO_H_
#define FAIRSQG_WORKLOAD_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/evaluated.h"
#include "query/domains.h"
#include "query/query_template.h"

namespace fairsqg {

/// \brief A generated query workload: a template plus the selected
/// instances with their recorded quality — what Section IV-C's benchmark
/// scenario ships to a query benchmark ([5], gMark-style usage).
struct Workload {
  QueryTemplate tmpl;
  /// Bindings of each selected instance, in result order.
  std::vector<Instantiation> instances;
  /// Recorded measures parallel to `instances` (match count, δ, f).
  struct Quality {
    size_t matches = 0;
    double diversity = 0;
    double coverage = 0;
  };
  std::vector<Quality> quality;
};

/// \brief Serializes a workload: the template (template_io format) followed
/// by one `instance` line per query:
/// \code
///   instance x0=2 x1=_ e0=1 matches=112 delta=3.25 f=9
/// \endcode
/// Range bindings are domain *indexes* (or `_`), so the workload replays
/// against the same graph + coarsening settings.
Status WriteWorkloadText(const Workload& workload, std::ostream& out);
Status WriteWorkloadFile(const Workload& workload, const std::string& path);

Result<Workload> ReadWorkloadText(std::istream& in,
                                  std::shared_ptr<Schema> schema);
Result<Workload> ReadWorkloadFile(const std::string& path,
                                  std::shared_ptr<Schema> schema);

/// Convenience: bundles a generation result into a Workload.
Workload MakeWorkload(const QueryTemplate& tmpl,
                      const std::vector<EvaluatedPtr>& result);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_WORKLOAD_IO_H_
