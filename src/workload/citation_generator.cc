#include "workload/citation_generator.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace fairsqg {

namespace {

const char* kTopics[] = {"machine-learning", "databases",  "networking",
                         "security",         "systems",    "theory",
                         "graphics",         "hci"};

}  // namespace

Result<Graph> GenerateCitationGraph(const CitationParams& params,
                                    std::shared_ptr<Schema> schema) {
  if (params.num_papers == 0 || params.num_authors == 0) {
    return Status::InvalidArgument("citation graph needs papers and authors");
  }
  Rng rng(params.seed);
  GraphBuilder b(std::move(schema));

  std::vector<NodeId> papers;
  papers.reserve(params.num_papers);
  // Papers are created in chronological order; citations point backwards.
  for (size_t i = 0; i < params.num_papers; ++i) {
    NodeId v = b.AddNode("paper");
    int64_t year =
        1990 + static_cast<int64_t>((i * 33) / params.num_papers) +
        rng.NextInRange(0, 1);
    b.SetAttr(v, "year", AttrValue(year));
    b.SetAttr(v, "topic", AttrValue(std::string(kTopics[rng.NextZipf(8, 0.8)])));
    b.SetAttr(v, "venueRank", AttrValue(static_cast<int64_t>(1 + rng.NextZipf(5, 0.7))));
    papers.push_back(v);
  }

  std::vector<NodeId> authors;
  authors.reserve(params.num_authors);
  for (size_t i = 0; i < params.num_authors; ++i) {
    NodeId v = b.AddNode("author");
    b.SetAttr(v, "hIndex", AttrValue(static_cast<int64_t>(rng.NextZipf(60, 1.0))));
    b.SetAttr(v, "affiliationRank",
              AttrValue(static_cast<int64_t>(1 + rng.NextZipf(100, 0.8))));
    authors.push_back(v);
  }

  // Preferential-attachment citations to earlier papers; count in-degree to
  // derive a consistent numberOfCitations attribute.
  std::vector<int64_t> in_citations(params.num_papers, 0);
  std::vector<size_t> target_pool;  // Indexes into `papers`.
  target_pool.reserve(params.num_papers * 4);
  for (size_t i = 1; i < params.num_papers; ++i) {
    target_pool.push_back(i - 1);
    size_t cites = rng.NextBounded(
        static_cast<uint64_t>(2 * params.avg_citations) + 1);
    for (size_t c = 0; c < cites; ++c) {
      size_t target = target_pool[rng.NextBounded(target_pool.size())];
      if (target == i) continue;
      b.AddEdge(papers[i], papers[target], "cites");
      ++in_citations[target];
      target_pool.push_back(target);  // Rich get richer.
    }
  }
  for (size_t i = 0; i < params.num_papers; ++i) {
    b.SetAttr(papers[i], "numberOfCitations", AttrValue(in_citations[i]));
  }

  // Authorship: Zipf-prolific authors.
  for (size_t i = 0; i < params.num_papers; ++i) {
    size_t n_auth = 1 + rng.NextBounded(
        static_cast<uint64_t>(2 * params.avg_authors));
    for (size_t a = 0; a < n_auth; ++a) {
      b.AddEdge(papers[i], authors[rng.NextZipf(authors.size(), 0.9)],
                "authoredBy");
    }
  }

  return std::move(b).Build();
}

}  // namespace fairsqg
