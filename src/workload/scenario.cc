#include "workload/scenario.h"

#include <algorithm>
#include <cmath>

#include "matching/subgraph_matcher.h"
#include "workload/template_generator.h"

namespace fairsqg {

namespace {

/// Minimum per-group coverage of `matches`; 0 when any group is missed.
size_t MinGroupCoverage(const GroupSet& groups, const NodeSet& matches) {
  std::vector<size_t> counts = groups.CoverageCounts(matches);
  size_t m = counts.empty() ? 0 : counts[0];
  for (size_t c : counts) m = std::min(m, c);
  return m;
}

bool Feasible(const GroupSet& groups, const NodeSet& matches) {
  std::vector<size_t> counts = groups.CoverageCounts(matches);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < groups.constraint(i)) return false;
  }
  return true;
}

}  // namespace

Result<Scenario> MakeScenario(const ScenarioOptions& options) {
  FAIRSQG_ASSIGN_OR_RETURN(
      Dataset dataset, MakeDataset(options.dataset, options.scale, options.seed));
  Scenario s{std::move(dataset), nullptr, nullptr, nullptr};

  if (options.num_groups == 0) {
    return Status::InvalidArgument("need at least one group");
  }
  const bool calibrate =
      options.coverage_fraction > 0 && options.coverage_fraction <= 1.0;
  size_t per_group = options.total_coverage / options.num_groups;
  if (!calibrate && per_group == 0) {
    return Status::InvalidArgument("total_coverage below num_groups");
  }
  // Group node sets; constraints are provisional when calibrating.
  FAIRSQG_ASSIGN_OR_RETURN(
      GroupSet base_groups,
      GroupSet::FromCategoricalAttr(s.dataset.graph, s.dataset.output_label,
                                    s.dataset.group_attr, options.num_groups,
                                    calibrate ? 0 : per_group));

  // Redraw templates until the most relaxed instance is feasible; by
  // Lemma 2 an infeasible root makes the whole instance space infeasible.
  SubgraphMatcher matcher(s.dataset.graph);
  for (size_t attempt = 0; attempt < options.max_template_attempts; ++attempt) {
    TemplateSpec spec;
    spec.output_label = s.dataset.output_label;
    spec.num_edges = options.num_edges;
    spec.num_range_vars = options.num_range_vars;
    spec.num_edge_vars = options.num_edge_vars;
    spec.seed = options.template_seed + attempt * 7919;
    Result<QueryTemplate> tmpl_or = GenerateTemplate(s.dataset.graph, spec);
    if (!tmpl_or.ok()) continue;
    QueryTemplate tmpl = std::move(tmpl_or).ValueOrDie();

    FAIRSQG_ASSIGN_OR_RETURN(VariableDomains full,
                             VariableDomains::Build(s.dataset.graph, tmpl));
    VariableDomains domains = full.Coarsened(options.max_domain_values);

    QueryInstance root = QueryInstance::Materialize(
        tmpl, domains, Instantiation::MostRelaxed(tmpl));
    NodeSet root_matches = matcher.MatchOutput(root);

    GroupSet groups = base_groups;
    if (calibrate) {
      QueryInstance bottom = QueryInstance::Materialize(
          tmpl, domains, Instantiation::MostRefined(tmpl, domains));
      NodeSet bottom_matches = matcher.MatchOutput(bottom);
      size_t m = MinGroupCoverage(groups, bottom_matches);
      size_t big = MinGroupCoverage(groups, root_matches);
      if (big < 2) continue;  // Too few matches for a meaningful target.
      double c_target = static_cast<double>(m) +
                        options.coverage_fraction *
                            static_cast<double>(big - std::min(m, big));
      size_t c = std::max<size_t>(1, static_cast<size_t>(std::llround(c_target)));
      std::vector<NodeSet> sets;
      std::vector<size_t> constraints;
      bool ok = true;
      for (size_t i = 0; i < groups.num_groups(); ++i) {
        if (c > groups.group(i).size()) {
          ok = false;
          break;
        }
        sets.push_back(groups.group(i));
        constraints.push_back(c);
      }
      if (!ok) continue;
      Result<GroupSet> rebuilt = GroupSet::Create(
          s.dataset.graph.num_nodes(), std::move(sets), std::move(constraints));
      if (!rebuilt.ok()) continue;
      for (size_t i = 0; i < groups.num_groups(); ++i) {
        rebuilt->set_name(i, groups.name(i));
      }
      groups = std::move(rebuilt).ValueOrDie();
    }

    if (!Feasible(groups, root_matches)) continue;

    s.tmpl = std::make_unique<QueryTemplate>(std::move(tmpl));
    s.domains = std::make_unique<VariableDomains>(std::move(domains));
    s.groups = std::make_unique<GroupSet>(std::move(groups));
    return s;
  }
  return Status::FailedPrecondition(
      "no feasible template found for dataset '" + options.dataset +
      "'; lower total_coverage or template size");
}

}  // namespace fairsqg
