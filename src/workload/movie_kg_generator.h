#ifndef FAIRSQG_WORKLOAD_MOVIE_KG_GENERATOR_H_
#define FAIRSQG_WORKLOAD_MOVIE_KG_GENERATOR_H_

#include <memory>

#include "common/result.h"
#include "graph/graph.h"

namespace fairsqg {

/// Parameters of the DBP-like movie knowledge graph.
struct MovieKgParams {
  size_t num_movies = 6000;
  size_t num_directors = 1200;
  size_t num_actors = 3000;
  size_t num_studios = 200;
  double avg_cast = 3.0;  ///< starring edges per movie.
  uint64_t seed = 42;
};

/// \brief Generates the DBP substitute: a movie knowledge graph for the
/// Fig. 12 movie-search case study and the genre/country group scenarios.
///
/// Movies carry rating (3.0-9.5, one decimal), year, votes (Zipf), genre
/// (12 values) and country (10 values); directors/actors carry
/// awardsWon and country; studios carry founded/size. Relations: directed
/// (director -> movie), starring (movie -> actor), producedBy (movie ->
/// studio), collaboratedWith (director -> actor). Deterministic per seed.
Result<Graph> GenerateMovieKg(const MovieKgParams& params,
                              std::shared_ptr<Schema> schema);

}  // namespace fairsqg

#endif  // FAIRSQG_WORKLOAD_MOVIE_KG_GENERATOR_H_
