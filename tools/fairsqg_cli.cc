// fairsqg — command-line front end for the FairSQG library.
//
// Subcommands:
//   fairsqg dataset  --name dbp --scale 0.1 --seed 42 --out graph.g
//   fairsqg stats    graph.g
//   fairsqg template --graph graph.g --output-label movie --edges 3
//                    --range-vars 2 --edge-vars 1 --seed 1 --out search.qt
//   fairsqg generate --graph graph.g --template search.qt --group-attr genre
//                    --groups 2 --coverage 10 --algorithm biqgen --eps 0.05
//
// `generate` prints the suggested ε-Pareto query instances with their
// match counts, diversity, coverage, and per-group coverage.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/match_cache.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "graph/csv_loader.h"
#include "rpq/rpq_engine.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "query/template_io.h"
#include "workload/datasets.h"
#include "workload/template_generator.h"

namespace fairsqg {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdDataset(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("name", "dbp", "dataset: dbp | lki | cite");
  flags.DefineDouble("scale", 0.1, "node-population multiplier");
  flags.DefineInt64("seed", 42, "generator seed");
  flags.DefineString("out", "graph.g", "output graph file");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  Result<Dataset> d =
      MakeDataset(flags.GetString("name"), flags.GetDouble("scale"),
                  static_cast<uint64_t>(flags.GetInt64("seed")));
  if (!d.ok()) return Fail(d.status());
  if (Status s = WriteGraphFile(d->graph, flags.GetString("out")); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s: %zu nodes, %zu edges (output label '%s')\n",
              flags.GetString("out").c_str(), d->graph.num_nodes(),
              d->graph.num_edges(),
              d->schema->NodeLabelName(d->output_label).c_str());
  return 0;
}

Result<Graph> LoadGraphAuto(const std::string& path, const std::string& nodes_csv,
                            const std::string& edges_csv) {
  if (!nodes_csv.empty() || !edges_csv.empty()) {
    if (nodes_csv.empty() || edges_csv.empty()) {
      return Status::InvalidArgument("--nodes-csv and --edges-csv go together");
    }
    return LoadCsvGraphFiles(nodes_csv, edges_csv);
  }
  return ReadGraphFile(path);
}

int CmdStats(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("nodes-csv", "", "node CSV (alternative to graph file)");
  flags.DefineString("edges-csv", "", "edge CSV");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  std::string path =
      flags.positional().empty() ? "graph.g" : flags.positional()[0];
  Result<Graph> g = LoadGraphAuto(path, flags.GetString("nodes-csv"),
                                  flags.GetString("edges-csv"));
  if (!g.ok()) return Fail(g.status());
  GraphStats stats = ComputeGraphStats(*g);
  std::printf("%s\n", FormatStatsRow(path, stats).c_str());
  std::printf("labels:");
  for (size_t i = 0; i < stats.label_histogram.size() && i < 10; ++i) {
    std::printf(" %s=%zu", stats.label_histogram[i].first.c_str(),
                stats.label_histogram[i].second);
  }
  std::printf("\n");
  return 0;
}

int CmdTemplate(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("graph", "graph.g", "input graph file");
  flags.DefineString("output-label", "", "label of the output node u_o");
  flags.DefineInt64("edges", 3, "|Q(u_o)| in edges");
  flags.DefineInt64("range-vars", 2, "|X_L|");
  flags.DefineInt64("edge-vars", 1, "|X_E|");
  flags.DefineInt64("seed", 1, "sampler seed");
  flags.DefineString("out", "template.qt", "output template file");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  Result<Graph> g = ReadGraphFile(flags.GetString("graph"));
  if (!g.ok()) return Fail(g.status());
  TemplateSpec spec;
  spec.output_label = g->schema().NodeLabelId(flags.GetString("output-label"));
  if (spec.output_label == kInvalidLabel) {
    return Fail(Status::InvalidArgument("unknown --output-label '" +
                                        flags.GetString("output-label") + "'"));
  }
  spec.num_edges = static_cast<size_t>(flags.GetInt64("edges"));
  spec.num_range_vars = static_cast<size_t>(flags.GetInt64("range-vars"));
  spec.num_edge_vars = static_cast<size_t>(flags.GetInt64("edge-vars"));
  spec.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  Result<QueryTemplate> tmpl = GenerateTemplate(*g, spec);
  if (!tmpl.ok()) return Fail(tmpl.status());
  if (Status s = WriteTemplateFile(*tmpl, flags.GetString("out")); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s:\n%s", flags.GetString("out").c_str(),
              tmpl->ToString().c_str());
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("graph", "graph.g", "input graph file");
  flags.DefineString("template", "template.qt", "input template file");
  flags.DefineString("group-attr", "", "categorical attribute defining groups");
  flags.DefineInt64("groups", 2, "number of groups |P|");
  flags.DefineInt64("coverage", 10, "coverage target c per group");
  flags.DefineString("algorithm", "biqgen",
                     "biqgen | rfqgen | enum | kungs | parallel");
  flags.DefineDouble("eps", 0.05, "epsilon tolerance");
  flags.DefineInt64("max-domain", 8, "domain coarsening cap per variable");
  flags.DefineDouble("lambda", 0.5, "diversity relevance/dissimilarity balance");
  flags.DefineBool("candidate-index", true,
                   "resolve candidates via attribute range indexes");
  flags.DefineBool("sweep-verify", false,
                   "batch-verify range-variable chains in one matcher pass");
  flags.DefineInt64("match-cache-mb", 64,
                    "match-set cache budget in MiB (0 disables the cache)");
  flags.DefineInt64("match-cache-shards", 16,
                    "lock shards of the match-set cache");
  flags.DefineInt64("deadline-ms", 0,
                    "wall-clock budget in milliseconds (0 = unlimited)");
  flags.DefineInt64("match-step-limit", 0,
                    "backtracking steps allowed per match (0 = unlimited)");
  flags.DefineString("on-deadline", "partial",
                     "deadline behaviour: partial (best-so-far archive) | "
                     "fail (non-zero exit)");
  flags.DefineString("metrics-json", "",
                     "write a fairsqg.run_report JSON (stats + metric "
                     "counters + trace spans) to this path");
  flags.DefineString("trace-out", "",
                     "write a chrome://tracing span dump to this path");
  flags.DefineString("trace-detail", "off",
                     "span granularity: off | phase | full");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  obs::TraceDetail trace_detail = obs::TraceDetail::kOff;
  if (!obs::ParseTraceDetail(flags.GetString("trace-detail"), &trace_detail)) {
    return Fail(Status::InvalidArgument("unknown --trace-detail '" +
                                        flags.GetString("trace-detail") +
                                        "' (off | phase | full)"));
  }
  const std::string& metrics_json_path = flags.GetString("metrics-json");
  const std::string& trace_out_path = flags.GetString("trace-out");
  // --trace-out without an explicit detail level implies phase spans;
  // otherwise the dump would be empty.
  if (!trace_out_path.empty() && trace_detail == obs::TraceDetail::kOff) {
    trace_detail = obs::TraceDetail::kPhase;
  }
  if (trace_detail != obs::TraceDetail::kOff) {
    obs::Tracer::Global().Enable(trace_detail);
  }
  if (!metrics_json_path.empty()) {
    obs::MetricsRegistry::Global().Reset();
    obs::MetricsRegistry::Global().set_enabled(true);
  }

  Result<Graph> g = ReadGraphFile(flags.GetString("graph"));
  if (!g.ok()) return Fail(g.status());
  Result<QueryTemplate> tmpl =
      ReadTemplateFile(flags.GetString("template"), g->schema_ptr());
  if (!tmpl.ok()) return Fail(tmpl.status());

  Result<VariableDomains> full = VariableDomains::Build(*g, *tmpl);
  if (!full.ok()) return Fail(full.status());
  VariableDomains domains =
      full->Coarsened(static_cast<size_t>(flags.GetInt64("max-domain")));

  LabelId output_label = tmpl->node_label(tmpl->output_node());
  AttrId group_attr = g->schema().AttrIdOf(flags.GetString("group-attr"));
  if (group_attr == kInvalidAttr) {
    return Fail(Status::InvalidArgument("unknown --group-attr '" +
                                        flags.GetString("group-attr") + "'"));
  }
  Result<GroupSet> groups = GroupSet::FromCategoricalAttr(
      *g, output_label, group_attr, static_cast<size_t>(flags.GetInt64("groups")),
      static_cast<size_t>(flags.GetInt64("coverage")));
  if (!groups.ok()) return Fail(groups.status());

  QGenConfig config;
  config.graph = &*g;
  config.tmpl = &*tmpl;
  config.domains = &domains;
  config.groups = &*groups;
  config.epsilon = flags.GetDouble("eps");
  config.diversity.lambda = flags.GetDouble("lambda");
  config.use_candidate_index = flags.GetBool("candidate-index");
  config.use_sweep_verify = flags.GetBool("sweep-verify");
  std::unique_ptr<MatchSetCache> cache;
  if (flags.GetInt64("match-cache-mb") > 0) {
    MatchSetCache::Options cache_options;
    cache_options.capacity_bytes =
        static_cast<size_t>(flags.GetInt64("match-cache-mb")) << 20;
    cache_options.num_shards =
        static_cast<size_t>(flags.GetInt64("match-cache-shards"));
    Result<std::unique_ptr<MatchSetCache>> made =
        MatchSetCache::Create(cache_options);
    if (!made.ok()) return Fail(made.status());
    cache = std::move(*made);
    config.match_cache = cache.get();
  }

  RunContext run_context;
  if (flags.GetInt64("deadline-ms") > 0 ||
      flags.GetInt64("match-step-limit") > 0) {
    if (flags.GetInt64("deadline-ms") > 0) {
      run_context.SetDeadlineAfterMillis(
          static_cast<double>(flags.GetInt64("deadline-ms")));
    }
    if (flags.GetInt64("match-step-limit") > 0) {
      run_context.set_match_step_limit(
          static_cast<uint64_t>(flags.GetInt64("match-step-limit")));
    }
    const std::string& on_deadline = flags.GetString("on-deadline");
    if (on_deadline == "partial") {
      run_context.set_on_expiry(ExpiryPolicy::kPartial);
    } else if (on_deadline == "fail") {
      run_context.set_on_expiry(ExpiryPolicy::kFail);
    } else {
      return Fail(Status::InvalidArgument("unknown --on-deadline '" +
                                          on_deadline + "' (partial | fail)"));
    }
    config.run_context = &run_context;
  }

  const std::string& algo = flags.GetString("algorithm");
  Result<QGenResult> result = Status::InvalidArgument("unreachable");
  if (algo == "biqgen") {
    result = BiQGen::Run(config);
  } else if (algo == "rfqgen") {
    result = RfQGen::Run(config);
  } else if (algo == "enum") {
    result = EnumQGen::Run(config);
  } else if (algo == "kungs") {
    result = Kungs::Run(config);
  } else if (algo == "parallel") {
    result = ParallelQGen::Run(config);
  } else {
    return Fail(Status::InvalidArgument("unknown --algorithm '" + algo + "'"));
  }
  if (!result.ok()) return Fail(result.status());

  if (!metrics_json_path.empty() || !trace_out_path.empty()) {
    std::vector<obs::SpanRecord> spans;
    uint64_t dropped = 0;
    if (trace_detail != obs::TraceDetail::kOff) {
      spans = obs::Tracer::Global().Snapshot();
      dropped = obs::Tracer::Global().dropped();
      obs::Tracer::Global().Disable();
    }
    if (!metrics_json_path.empty()) {
      obs::RunReport report;
      report.SetAlgorithm(algo);
      report.SetGenStats(result->stats);
      report.AttachMetrics(obs::MetricsRegistry::Global().Snapshot());
      obs::MetricsRegistry::Global().set_enabled(false);
      if (trace_detail != obs::TraceDetail::kOff) {
        report.AttachTrace(spans, trace_detail, dropped);
      }
      if (Status s = report.WriteFile(metrics_json_path); !s.ok()) {
        return Fail(s);
      }
      std::fprintf(stderr, "wrote run report: %s\n",
                   metrics_json_path.c_str());
    }
    if (!trace_out_path.empty()) {
      if (Status s = obs::WriteChromeTrace(spans, trace_out_path); !s.ok()) {
        return Fail(s);
      }
      std::fprintf(stderr, "wrote trace: %s\n", trace_out_path.c_str());
    }
  }

  std::printf("%s: %zu suggested queries (%zu verified, %.2fs)\n", algo.c_str(),
              result->pareto.size(), result->stats.verified,
              result->stats.total_seconds);
  if (result->stats.deadline_exceeded || result->stats.aborted_matches > 0 ||
      result->stats.timed_out_instances > 0) {
    std::fprintf(stderr,
                 "degraded run: deadline_exceeded=%s aborted_matches=%zu "
                 "timed_out_instances=%zu (archive is the verified-prefix "
                 "epsilon-Pareto set; every retained instance is fully "
                 "verified)\n",
                 result->stats.deadline_exceeded ? "true" : "false",
                 result->stats.aborted_matches,
                 result->stats.timed_out_instances);
  }
  if (cache != nullptr) {
    MatchSetCache::CacheStats cs = cache->GetStats();
    std::printf("match cache: %zu hits, %zu misses, %zu entries (%.1f MiB)\n",
                static_cast<size_t>(cs.hits), static_cast<size_t>(cs.misses),
                cs.entries, static_cast<double>(cs.bytes) / (1 << 20));
  }
  for (const EvaluatedPtr& q : result->pareto) {
    std::printf("  %s -> %zu matches, delta=%.3f, f=%.1f (",
                q->inst.ToString(*tmpl, domains).c_str(), q->matches.size(),
                q->obj.diversity, q->obj.coverage);
    for (size_t i = 0; i < q->group_coverage.size(); ++i) {
      std::printf("%s%s=%zu", i > 0 ? ", " : "", groups->name(i).c_str(),
                  q->group_coverage[i]);
    }
    std::printf(")\n");
  }
  return 0;
}

// fairsqg rpq --graph graph.g --expr "cites/(cites)*" --source-label paper
//             [--limit 20]
int CmdRpq(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("graph", "graph.g", "input graph file");
  flags.DefineString("expr", "", "regular path expression over edge labels");
  flags.DefineString("source-label", "", "restrict sources to this node label");
  flags.DefineInt64("limit", 20, "max (source, target) pairs to print");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  Result<Graph> g = ReadGraphFile(flags.GetString("graph"));
  if (!g.ok()) return Fail(g.status());
  // Parsing may intern new edge labels; use the graph's schema.
  Result<PathRegex> regex =
      ParsePathRegex(flags.GetString("expr"),
                     const_cast<Schema*>(&g->schema()));
  if (!regex.ok()) return Fail(regex.status());
  LabelId source_label = kInvalidLabel;
  if (!flags.GetString("source-label").empty()) {
    source_label = g->schema().NodeLabelId(flags.GetString("source-label"));
    if (source_label == kInvalidLabel) {
      return Fail(Status::InvalidArgument("unknown --source-label"));
    }
  }
  RpqEngine engine(*g);
  auto pairs = engine.EvaluateAll(
      *regex, source_label, static_cast<size_t>(flags.GetInt64("limit")));
  std::printf("%s: %zu pairs (capped at %lld)\n", regex->text.c_str(),
              pairs.size(), static_cast<long long>(flags.GetInt64("limit")));
  for (const auto& [from, to] : pairs) {
    std::printf("  %u (%s) -> %u (%s)\n", from,
                g->schema().NodeLabelName(g->node_label(from)).c_str(), to,
                g->schema().NodeLabelName(g->node_label(to)).c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fairsqg <dataset|stats|template|generate|rpq> [flags]\n");
    return 2;
  }
  std::string cmd = argv[1];
  // Shift argv so subcommand flags parse from argv[1].
  argc -= 1;
  argv += 1;
  if (cmd == "dataset") return CmdDataset(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "template") return CmdTemplate(argc, argv);
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "rpq") return CmdRpq(argc, argv);
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace fairsqg

int main(int argc, char** argv) { return fairsqg::Main(argc, argv); }
