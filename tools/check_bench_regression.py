#!/usr/bin/env python3
"""Compare a freshly produced BENCH_*.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE CURRENT [--max-ratio 2.0]
                              [--min-seconds 0.05]

Fails (exit 1) when any wall-clock field in CURRENT exceeds the baseline's
value by more than --max-ratio, or when the two files have incompatible
schema_version stamps. Timings below --min-seconds in the baseline are
skipped: at that magnitude runner noise dwarfs any real regression.

Both files must be RunReport-shaped snapshots ("kind":
"fairsqg.run_report", bench schema v3+): the discriminator is checked
before any comparison so a stray non-bench JSON fails loudly.

Only *_s / *_seconds / *_ms fields are compared — counters, speedup ratios,
and structural fields are ignored, so a faster machine never fails and a
changed scenario fails loudly via schema_version rather than spuriously via
timings. Fields under an embedded "stats" object are also skipped: those
are the single-run GenStats snapshot a row carries for observability, not
the median timings the regression gate is meant to police.
"""

RUN_REPORT_KIND = "fairsqg.run_report"

import argparse
import json
import sys


def walk(node, path=""):
    """Yields (dotted_path, value) for every leaf in a parsed JSON tree.

    List elements are keyed by a "name" field when present so benchmark
    rows pair up by identity, not position.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            tag = value.get("name", str(i)) if isinstance(value, dict) else str(i)
            yield from walk(value, f"{path}[{tag}]")
    else:
        yield path, node


def is_timing(path):
    if ".stats." in path:  # Embedded single-run GenStats snapshot.
        return False
    leaf = path.rsplit(".", 1)[-1]
    return leaf.endswith(("_s", "_seconds", "_ms")) or leaf in ("seconds", "ms")


def in_seconds(path, value):
    return value / 1000.0 if path.rsplit(".", 1)[-1].endswith("_ms") else value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current > baseline * ratio")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="skip baseline timings below this many seconds")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    for label, doc in (("baseline", baseline), ("current", current)):
        kind = doc.get("kind")
        if kind != RUN_REPORT_KIND:
            print(f"FAIL: {label} is not a {RUN_REPORT_KIND} snapshot "
                  f"(kind={kind!r}); regenerate it with a schema-v3+ bench")
            return 1

    base_schema = baseline.get("schema_version")
    cur_schema = current.get("schema_version")
    if base_schema != cur_schema:
        print(f"FAIL: schema_version mismatch: baseline={base_schema} "
              f"current={cur_schema}; regenerate the committed baseline")
        return 1

    base_values = dict(walk(baseline))
    failures = []
    compared = skipped = 0
    for path, value in walk(current):
        if not is_timing(path) or not isinstance(value, (int, float)):
            continue
        base = base_values.get(path)
        if not isinstance(base, (int, float)):
            continue
        if in_seconds(path, base) < args.min_seconds:
            skipped += 1
            continue
        compared += 1
        if value > base * args.max_ratio:
            failures.append((path, base, value))

    label = f"{args.current} vs {args.baseline}"
    for path, base, value in failures:
        print(f"FAIL: {path}: {value:g} > {args.max_ratio:g}x baseline "
              f"{base:g}")
    if failures:
        print(f"{label}: {len(failures)} regression(s) across {compared} "
              f"compared timing(s)")
        return 1
    print(f"{label}: OK ({compared} timing(s) within {args.max_ratio:g}x, "
          f"{skipped} below the {args.min_seconds:g}s noise floor)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
