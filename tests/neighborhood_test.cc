#include "graph/neighborhood.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

// Path graph 0 -> 1 -> 2 -> 3 -> 4 plus an isolated node 5.
Graph MakePath() {
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddNode("n");
  for (NodeId i = 0; i < 4; ++i) b.AddEdge(i, i + 1, "e");
  return std::move(b).Build().ValueOrDie();
}

TEST(NeighborhoodTest, ZeroHopsIsSeedsOnly) {
  Graph g = MakePath();
  NodeSet n = DHopNeighborhood(g, {2}, 0);
  EXPECT_EQ(n, NodeSet({2}));
}

TEST(NeighborhoodTest, OneHopUndirected) {
  Graph g = MakePath();
  // BFS ignores direction: node 2 reaches 1 (in) and 3 (out).
  NodeSet n = DHopNeighborhood(g, {2}, 1);
  EXPECT_EQ(n, NodeSet({1, 2, 3}));
}

TEST(NeighborhoodTest, TwoHops) {
  Graph g = MakePath();
  NodeSet n = DHopNeighborhood(g, {2}, 2);
  EXPECT_EQ(n, NodeSet({0, 1, 2, 3, 4}));
}

TEST(NeighborhoodTest, IsolatedNodeNeverReached) {
  Graph g = MakePath();
  NodeSet n = DHopNeighborhood(g, {0}, 10);
  EXPECT_EQ(n, NodeSet({0, 1, 2, 3, 4}));
}

TEST(NeighborhoodTest, MultipleSeeds) {
  Graph g = MakePath();
  NodeSet n = DHopNeighborhood(g, {0, 5}, 1);
  EXPECT_EQ(n, NodeSet({0, 1, 5}));
}

TEST(NeighborhoodTest, EmptySeeds) {
  Graph g = MakePath();
  EXPECT_TRUE(DHopNeighborhood(g, {}, 3).empty());
}

TEST(NeighborhoodTest, MaskMatchesSet) {
  Graph g = MakePath();
  NodeSet seeds = {1};
  std::vector<bool> mask = DHopMask(g, seeds, 2);
  NodeSet from_mask;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mask[v]) from_mask.push_back(v);
  }
  EXPECT_EQ(from_mask, DHopNeighborhood(g, seeds, 2));
}

TEST(NeighborhoodTest, OutOfRangeSeedIgnored) {
  Graph g = MakePath();
  NodeSet n = DHopNeighborhood(g, {999}, 1);
  EXPECT_TRUE(n.empty());
}

}  // namespace
}  // namespace fairsqg
