#include "query/instantiation.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  Fixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    for (int exp : {5, 10, 12, 20}) {
      NodeId v = b.AddNode("user");
      b.SetAttr(v, "yearsOfExp", AttrValue(int64_t{exp}));
    }
    for (int emp : {100, 500, 1000}) {
      NodeId v = b.AddNode("org");
      b.SetAttr(v, "employees", AttrValue(int64_t{emp}));
    }
    NodeId u = b.AddNode("user");
    b.SetAttr(u, "yearsOfExp", AttrValue(int64_t{10}));  // Duplicate value.
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    QNodeId u = tmpl.AddNode("user");
    QNodeId o = tmpl.AddNode("org");
    tmpl.AddRangeLiteral(u, "yearsOfExp", CompareOp::kGe);   // x0, ascending
    tmpl.AddRangeLiteral(o, "employees", CompareOp::kLe);    // x1, descending
    tmpl.AddEdge(u, o, "worksAt");
    tmpl.AddVariableEdge(o, u, "recommends");                // e0
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }
};

TEST(VariableDomainsTest, OrderedRelaxedToRefined) {
  Fixture f;
  // x0: yearsOfExp >= v, ascending: 5, 10, 12, 20.
  ASSERT_EQ(f.domains.size(0), 4u);
  EXPECT_EQ(f.domains.value(0, 0).as_int(), 5);
  EXPECT_EQ(f.domains.value(0, 3).as_int(), 20);
  // x1: employees <= v, descending: 1000, 500, 100.
  ASSERT_EQ(f.domains.size(1), 3u);
  EXPECT_EQ(f.domains.value(1, 0).as_int(), 1000);
  EXPECT_EQ(f.domains.value(1, 2).as_int(), 100);
}

TEST(VariableDomainsTest, InstanceSpaceSize) {
  Fixture f;
  // (4+1) * (3+1) * 2^1 = 40.
  EXPECT_EQ(f.domains.InstanceSpaceSize(f.tmpl), 40u);
}

TEST(InstantiationTest, MostRelaxedIsAllWildcardsNoEdges) {
  Fixture f;
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  EXPECT_TRUE(root.is_wildcard(0));
  EXPECT_TRUE(root.is_wildcard(1));
  EXPECT_EQ(root.edge_binding(0), 0);
}

TEST(InstantiationTest, MostRefinedUsesLastIndexAndAllEdges) {
  Fixture f;
  Instantiation bottom = Instantiation::MostRefined(f.tmpl, f.domains);
  EXPECT_EQ(bottom.range_binding(0), 3);
  EXPECT_EQ(bottom.range_binding(1), 2);
  EXPECT_EQ(bottom.edge_binding(0), 1);
}

TEST(InstantiationTest, EverythingRefinesRoot) {
  Fixture f;
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  Instantiation bottom = Instantiation::MostRefined(f.tmpl, f.domains);
  Instantiation mid({1, kWildcardBinding}, {1});
  EXPECT_TRUE(root.Refines(root));
  EXPECT_TRUE(bottom.Refines(root));
  EXPECT_TRUE(mid.Refines(root));
  EXPECT_FALSE(root.Refines(bottom));
  EXPECT_TRUE(bottom.Refines(mid));
  EXPECT_FALSE(mid.Refines(bottom));
}

TEST(InstantiationTest, WildcardDoesNotRefineBoundVariable) {
  Instantiation bound({2, 0}, {});
  Instantiation wild({kWildcardBinding, 0}, {});
  EXPECT_FALSE(wild.Refines(bound));
  EXPECT_TRUE(bound.Refines(wild));
}

TEST(InstantiationTest, IncomparablePair) {
  Instantiation a({2, 0}, {0});
  Instantiation b({0, 2}, {0});
  EXPECT_FALSE(a.Refines(b));
  EXPECT_FALSE(b.Refines(a));
}

TEST(InstantiationTest, EdgeBindingRefinement) {
  Instantiation off({}, {0, 0});
  Instantiation one({}, {1, 0});
  Instantiation both({}, {1, 1});
  EXPECT_TRUE(one.Refines(off));
  EXPECT_TRUE(both.Refines(one));
  EXPECT_TRUE(both.Refines(off));
  EXPECT_FALSE(off.Refines(one));
}

TEST(InstantiationTest, RefinementIsTransitiveOnRandomTriples) {
  // Property check: sampled triples a <= b <= c imply a <= c.
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto random_inst = [&]() {
      std::vector<int32_t> r(3);
      for (auto& v : r) v = static_cast<int32_t>(rng.NextInRange(-1, 4));
      std::vector<uint8_t> e(2);
      for (auto& v : e) v = static_cast<uint8_t>(rng.NextBounded(2));
      return Instantiation(std::move(r), std::move(e));
    };
    Instantiation a = random_inst();
    Instantiation b = random_inst();
    Instantiation c = random_inst();
    if (b.Refines(a) && c.Refines(b)) {
      EXPECT_TRUE(c.Refines(a));
    }
    // Antisymmetry: mutual refinement implies equality.
    if (a.Refines(b) && b.Refines(a)) {
      EXPECT_EQ(a, b);
    }
  }
}

TEST(InstantiationTest, StrictRefinementExcludesEquality) {
  Instantiation a({1}, {});
  EXPECT_FALSE(a.StrictlyRefines(a));
  Instantiation b({0}, {});
  EXPECT_TRUE(a.StrictlyRefines(b));
}

TEST(InstantiationTest, HashDistinguishesBindings) {
  std::unordered_set<uint64_t> hashes;
  for (int32_t r0 : {-1, 0, 1, 2}) {
    for (int32_t r1 : {-1, 0, 1}) {
      for (uint8_t e : {0, 1}) {
        hashes.insert(Instantiation({r0, r1}, {e}).Hash());
      }
    }
  }
  EXPECT_EQ(hashes.size(), 24u);  // All distinct for this small space.
}

TEST(InstantiationTest, ToStringShowsValuesAndWildcards) {
  Fixture f;
  Instantiation i({1, kWildcardBinding}, {1});
  std::string s = i.ToString(f.tmpl, f.domains);
  EXPECT_NE(s.find("x0=10"), std::string::npos);
  EXPECT_NE(s.find("x1=_"), std::string::npos);
  EXPECT_NE(s.find("e0=1"), std::string::npos);
}

}  // namespace
}  // namespace fairsqg
