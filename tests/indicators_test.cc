#include "core/indicators.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

EvaluatedPtr MakePoint(double diversity, double coverage) {
  auto e = std::make_shared<EvaluatedInstance>();
  e->obj = {diversity, coverage};
  e->feasible = true;
  return e;
}

TEST(EpsilonIndicatorTest, PerfectForSupersetSolution) {
  std::vector<EvaluatedPtr> ref = {MakePoint(1, 5), MakePoint(5, 1),
                                   MakePoint(3, 3)};
  auto r = EpsilonIndicator(ref, ref, 0.1);
  EXPECT_DOUBLE_EQ(r.eps_m, 0.0);
  EXPECT_DOUBLE_EQ(r.indicator, 1.0);
}

TEST(EpsilonIndicatorTest, ParetoSubsetIsPerfect) {
  std::vector<EvaluatedPtr> ref = {MakePoint(1, 5), MakePoint(5, 1),
                                   MakePoint(1, 1)};
  std::vector<EvaluatedPtr> sol = {MakePoint(1, 5), MakePoint(5, 1)};
  auto r = EpsilonIndicator(sol, ref, 0.1);
  EXPECT_DOUBLE_EQ(r.eps_m, 0.0);
  EXPECT_DOUBLE_EQ(r.indicator, 1.0);
}

TEST(EpsilonIndicatorTest, KnownGap) {
  // Solution {(3,3)} vs reference point (7,3): needs (1+e)(1+3) >= 8,
  // i.e. e = 1.0.
  std::vector<EvaluatedPtr> ref = {MakePoint(7, 3)};
  std::vector<EvaluatedPtr> sol = {MakePoint(3, 3)};
  auto r = EpsilonIndicator(sol, ref, 2.0);
  EXPECT_NEAR(r.eps_m, 1.0, 1e-12);
  EXPECT_NEAR(r.indicator, 0.5, 1e-12);
}

TEST(EpsilonIndicatorTest, IndicatorClampedToZero) {
  std::vector<EvaluatedPtr> ref = {MakePoint(7, 3)};
  std::vector<EvaluatedPtr> sol = {MakePoint(3, 3)};
  auto r = EpsilonIndicator(sol, ref, 0.01);  // eps_m = 1.0 >> 0.01.
  EXPECT_DOUBLE_EQ(r.indicator, 0.0);
}

TEST(EpsilonIndicatorTest, BestCoveringMemberChosenPerPoint) {
  std::vector<EvaluatedPtr> ref = {MakePoint(10, 1), MakePoint(1, 10)};
  std::vector<EvaluatedPtr> sol = {MakePoint(10, 1), MakePoint(1, 10)};
  auto r = EpsilonIndicator(sol, ref, 0.5);
  EXPECT_DOUBLE_EQ(r.eps_m, 0.0);
}

TEST(EpsilonIndicatorTest, EmptySolutionScoresZero) {
  std::vector<EvaluatedPtr> ref = {MakePoint(1, 1)};
  auto r = EpsilonIndicator({}, ref, 0.1);
  EXPECT_DOUBLE_EQ(r.indicator, 0.0);
  EXPECT_TRUE(std::isinf(r.eps_m));
}

TEST(EpsilonIndicatorTest, EmptyReferenceScoresOne) {
  std::vector<EvaluatedPtr> sol = {MakePoint(1, 1)};
  EXPECT_DOUBLE_EQ(EpsilonIndicator(sol, {}, 0.1).indicator, 1.0);
  EXPECT_DOUBLE_EQ(EpsilonIndicator({}, {}, 0.1).indicator, 1.0);
}

TEST(RIndicatorTest, WeightsShiftPreference) {
  std::vector<EvaluatedPtr> sol = {MakePoint(8, 2)};
  // delta_max = 10, f_max = 10 -> d* = 0.8, f* = 0.2.
  EXPECT_NEAR(RIndicator(sol, 0.0, 10, 10), 0.8, 1e-12);
  EXPECT_NEAR(RIndicator(sol, 1.0, 10, 10), 0.2, 1e-12);
  EXPECT_NEAR(RIndicator(sol, 0.5, 10, 10), 0.5, 1e-12);
}

TEST(RIndicatorTest, TakesBestPerObjectiveAcrossMembers) {
  std::vector<EvaluatedPtr> sol = {MakePoint(8, 1), MakePoint(2, 9)};
  // d* = 0.8 from the first member, f* = 0.9 from the second.
  EXPECT_NEAR(RIndicator(sol, 0.5, 10, 10), 0.85, 1e-12);
}

TEST(RIndicatorTest, ZeroNormalizersHandled) {
  std::vector<EvaluatedPtr> sol = {MakePoint(1, 1)};
  EXPECT_DOUBLE_EQ(RIndicator(sol, 0.5, 0, 0), 0.0);
}

TEST(MaxObjectivesTest, Basics) {
  std::vector<EvaluatedPtr> v = {MakePoint(3, 7), MakePoint(5, 2)};
  Objectives best = MaxObjectives(v);
  EXPECT_DOUBLE_EQ(best.diversity, 5);
  EXPECT_DOUBLE_EQ(best.coverage, 7);
  Objectives none = MaxObjectives({});
  EXPECT_DOUBLE_EQ(none.diversity, 0);
}

}  // namespace
}  // namespace fairsqg
