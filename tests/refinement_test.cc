#include "query/refinement.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  Fixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    for (int exp : {5, 10, 20}) {
      NodeId v = b.AddNode("user");
      b.SetAttr(v, "yearsOfExp", AttrValue(int64_t{exp}));
    }
    NodeId o = b.AddNode("org");
    b.AddEdge(0, o, "worksAt");
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    QNodeId u = tmpl.AddNode("user");
    QNodeId o = tmpl.AddNode("org");
    tmpl.AddRangeLiteral(u, "yearsOfExp", CompareOp::kGe);  // x0: {5,10,20}
    tmpl.AddEdge(u, o, "worksAt");
    tmpl.AddVariableEdge(o, u, "recommends");  // e0
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }
};

TEST(LatticeNeighborsTest, RefineChildrenFromRoot) {
  Fixture f;
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, root,
                                               RefinementHints::None(f.tmpl));
  // One step on x0 (wildcard -> index 0) and one on e0 (0 -> 1).
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0].var_index, 0u);
  EXPECT_EQ(kids[0].inst.range_binding(0), 0);
  EXPECT_EQ(kids[1].var_index, 1u);
  EXPECT_EQ(kids[1].inst.edge_binding(0), 1);
  for (const auto& k : kids) {
    EXPECT_TRUE(k.inst.StrictlyRefines(root));
  }
}

TEST(LatticeNeighborsTest, RefineStopsAtDomainEnd) {
  Fixture f;
  Instantiation bottom = Instantiation::MostRefined(f.tmpl, f.domains);
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, bottom,
                                               RefinementHints::None(f.tmpl));
  EXPECT_TRUE(kids.empty());
}

TEST(LatticeNeighborsTest, RelaxChildrenFromBottom) {
  Fixture f;
  Instantiation bottom = Instantiation::MostRefined(f.tmpl, f.domains);
  auto kids = LatticeNeighbors::RelaxChildren(f.tmpl, f.domains, bottom);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0].inst.range_binding(0), 1);  // 2 -> 1.
  EXPECT_EQ(kids[1].inst.edge_binding(0), 0);
  for (const auto& k : kids) {
    EXPECT_TRUE(bottom.StrictlyRefines(k.inst));
  }
}

TEST(LatticeNeighborsTest, RelaxReachesWildcard) {
  Fixture f;
  Instantiation i({0}, {0});
  auto kids = LatticeNeighbors::RelaxChildren(f.tmpl, f.domains, i);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_TRUE(kids[0].inst.is_wildcard(0));
}

TEST(LatticeNeighborsTest, RelaxStopsAtRoot) {
  Fixture f;
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  EXPECT_TRUE(LatticeNeighbors::RelaxChildren(f.tmpl, f.domains, root).empty());
}

TEST(LatticeNeighborsTest, HintsSkipUselessValues) {
  Fixture f;
  RefinementHints hints = RefinementHints::None(f.tmpl);
  hints.restrict_range[0] = true;
  hints.allowed_range_indexes[0] = {2};  // Only index 2 is still useful.
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, root, hints);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0].inst.range_binding(0), 2);  // Jumped straight to 2.
}

TEST(LatticeNeighborsTest, HintsEmptyAllowedBlocksVariable) {
  Fixture f;
  RefinementHints hints = RefinementHints::None(f.tmpl);
  hints.restrict_range[0] = true;  // With empty allowed list.
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, root, hints);
  ASSERT_EQ(kids.size(), 1u);  // Only the edge variable step remains.
  EXPECT_EQ(kids[0].var_index, 1u);
}

TEST(LatticeNeighborsTest, HintsFixEdgeToZero) {
  Fixture f;
  RefinementHints hints = RefinementHints::None(f.tmpl);
  hints.edge_fixed_zero[0] = true;
  Instantiation root = Instantiation::MostRelaxed(f.tmpl);
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, root, hints);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0].var_index, 0u);  // Only the range variable step.
}

TEST(LatticeNeighborsTest, RefineRelaxAreInverse) {
  Fixture f;
  Instantiation mid({1}, {0});
  auto kids = LatticeNeighbors::RefineChildren(f.tmpl, f.domains, mid,
                                               RefinementHints::None(f.tmpl));
  for (const auto& k : kids) {
    auto back = LatticeNeighbors::RelaxChildren(f.tmpl, f.domains, k.inst);
    bool found = false;
    for (const auto& b : back) {
      if (b.inst == mid) found = true;
    }
    EXPECT_TRUE(found) << "relaxing a refinement step must recover the parent";
  }
}

}  // namespace
}  // namespace fairsqg
