#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(13);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = rng.NextZipf(100, 1.2);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // Rank 0 should dominate the tail decisively.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(1);
  EXPECT_EQ(rng.NextZipf(1, 1.5), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (uint64_t k : {0ull, 3ull, 50ull, 100ull}) {
    std::vector<uint64_t> s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (uint64_t x : s) EXPECT_LT(x, 100u);
  }
}

}  // namespace
}  // namespace fairsqg
