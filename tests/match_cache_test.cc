#include "core/match_cache.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

NodeSet Nodes(std::initializer_list<NodeId> ids) { return NodeSet(ids); }

TEST(MatchSetCacheTest, LookupReturnsInsertedSet) {
  MatchSetCache cache;
  NodeSet out;
  EXPECT_FALSE(cache.Lookup("k1", &out));
  cache.Insert("k1", Nodes({3, 7, 9}));
  ASSERT_TRUE(cache.Lookup("k1", &out));
  EXPECT_EQ(out, Nodes({3, 7, 9}));
  EXPECT_FALSE(cache.Lookup("k2", &out));
  MatchSetCache::CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(MatchSetCacheTest, CreateRejectsZeroByteBudget) {
  MatchSetCache::Options options;
  options.capacity_bytes = 0;
  Result<std::unique_ptr<MatchSetCache>> cache = MatchSetCache::Create(options);
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cache.status().message().find("capacity_bytes"), std::string::npos);
}

TEST(MatchSetCacheTest, CreateRejectsZeroShards) {
  MatchSetCache::Options options;
  options.num_shards = 0;
  Result<std::unique_ptr<MatchSetCache>> cache = MatchSetCache::Create(options);
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cache.status().message().find("num_shards"), std::string::npos);
}

TEST(MatchSetCacheTest, CreateAcceptsValidOptions) {
  MatchSetCache::Options options;
  options.capacity_bytes = 1 << 20;
  options.num_shards = 3;  // Rounded up to the next power of two.
  Result<std::unique_ptr<MatchSetCache>> cache = MatchSetCache::Create(options);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ((*cache)->num_shards(), 4u);
  NodeSet out;
  (*cache)->Insert("k", Nodes({1, 2}));
  EXPECT_TRUE((*cache)->Lookup("k", &out));
}

MatchSetCache::Options TinyOptions(size_t capacity_bytes) {
  MatchSetCache::Options options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = 1;  // Single shard: eviction order is observable.
  return options;
}

TEST(MatchSetCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // Each entry costs key(2) + 1 node id(4) + overhead(64) = 70 bytes; a
  // 150-byte budget holds two entries.
  MatchSetCache cache(TinyOptions(150));
  cache.Insert("k1", Nodes({1}));
  cache.Insert("k2", Nodes({2}));
  NodeSet out;
  ASSERT_TRUE(cache.Lookup("k1", &out));  // k1 now most recent.
  cache.Insert("k3", Nodes({3}));         // Evicts k2, the LRU entry.
  EXPECT_TRUE(cache.Lookup("k1", &out));
  EXPECT_FALSE(cache.Lookup("k2", &out));
  EXPECT_TRUE(cache.Lookup("k3", &out));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_LE(cache.GetStats().bytes, 150u);
}

TEST(MatchSetCacheTest, OversizedEntriesAreNotAdmitted) {
  MatchSetCache cache(TinyOptions(80));
  cache.Insert("big", Nodes({1, 2, 3, 4, 5, 6, 7, 8}));  // 64+3+32 > 80.
  NodeSet out;
  EXPECT_FALSE(cache.Lookup("big", &out));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(MatchSetCacheTest, ReinsertRefreshesRecencyWithoutDuplicating) {
  MatchSetCache cache(TinyOptions(150));
  cache.Insert("k1", Nodes({1}));
  cache.Insert("k2", Nodes({2}));
  cache.Insert("k1", Nodes({1}));  // Refresh, not duplicate.
  EXPECT_EQ(cache.GetStats().entries, 2u);
  cache.Insert("k3", Nodes({3}));  // Now k2 is LRU.
  NodeSet out;
  EXPECT_TRUE(cache.Lookup("k1", &out));
  EXPECT_FALSE(cache.Lookup("k2", &out));
}

TEST(MatchSetCacheTest, KeySeparatesBindingsAndEdges) {
  SmallScenario s;
  auto key = [&](int32_t x0, int32_t x1, uint8_t e0) {
    QueryInstance q = QueryInstance::Materialize(
        *s.tmpl, *s.domains, Instantiation({x0, x1}, {e0}));
    return MatchSetCache::KeyFor(q);
  };
  EXPECT_EQ(key(0, 1, 0), key(0, 1, 0));
  EXPECT_NE(key(0, 1, 0), key(1, 1, 0));  // Different range binding.
  EXPECT_NE(key(0, 1, 0), key(0, 2, 0));
  EXPECT_NE(key(0, 1, 0), key(0, 1, 1));  // Different edge assignment.
  EXPECT_NE(key(kWildcardBinding, 1, 0), key(0, 1, 0));  // Wildcard drop.
}

/// Byte-identical comparison of two result sets: same instantiations in
/// the same order, same match sets, same objective values.
void ExpectIdenticalResults(const QGenResult& a, const QGenResult& b) {
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i]->inst, b.pareto[i]->inst) << "entry " << i;
    EXPECT_EQ(a.pareto[i]->matches, b.pareto[i]->matches) << "entry " << i;
    EXPECT_DOUBLE_EQ(a.pareto[i]->obj.diversity, b.pareto[i]->obj.diversity);
    EXPECT_DOUBLE_EQ(a.pareto[i]->obj.coverage, b.pareto[i]->obj.coverage);
    EXPECT_EQ(a.pareto[i]->feasible, b.pareto[i]->feasible);
  }
  EXPECT_EQ(a.stats.verified, b.stats.verified);
  EXPECT_EQ(a.stats.feasible, b.stats.feasible);
}

template <typename RunFn>
void CheckCacheTransparency(RunFn run) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult off = run(config).ValueOrDie();
  EXPECT_EQ(off.stats.cache_hits + off.stats.cache_misses, 0u);

  MatchSetCache cache;
  config.match_cache = &cache;
  QGenResult on = run(config).ValueOrDie();
  ExpectIdenticalResults(off, on);
  EXPECT_EQ(on.stats.cache_hits + on.stats.cache_misses, on.stats.verified);

  // A second run against the warm cache answers every lookup from memory
  // and still produces byte-identical results.
  QGenResult warm = run(config).ValueOrDie();
  ExpectIdenticalResults(off, warm);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.verified);
}

TEST(MatchCacheEquivalenceTest, EnumQGenIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency([](const QGenConfig& c) { return EnumQGen::Run(c); });
}

TEST(MatchCacheEquivalenceTest, BiQGenIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency([](const QGenConfig& c) { return BiQGen::Run(c); });
}

TEST(MatchCacheEquivalenceTest, RfQGenIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency([](const QGenConfig& c) { return RfQGen::Run(c); });
}

TEST(MatchCacheEquivalenceTest, KungsIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency([](const QGenConfig& c) { return Kungs::Run(c); });
}

TEST(MatchCacheEquivalenceTest, ParallelQGenIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency(
      [](const QGenConfig& c) { return ParallelQGen::Run(c, 4); });
}

TEST(MatchCacheEquivalenceTest, ParallelBiQGenIdenticalWithCacheOnOrOff) {
  CheckCacheTransparency(
      [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); });
}

TEST(MatchCacheEquivalenceTest, ScanAndIndexCandidatePathsAgree) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  config.use_candidate_index = true;
  QGenResult indexed = BiQGen::Run(config).ValueOrDie();
  config.use_candidate_index = false;
  QGenResult scanned = BiQGen::Run(config).ValueOrDie();
  ExpectIdenticalResults(indexed, scanned);
}

}  // namespace
}  // namespace fairsqg
