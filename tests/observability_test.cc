// Observability inertness and metrics-invariant coverage (DESIGN.md §13).
//
// The contract under test: the metrics registry and tracer are *write-only*
// side channels. Enabling them — at any detail level, for any generator,
// serial or parallel, with or without the match-set cache or sweep
// verification — must not change a single archive byte. The differential
// tests below rerun every generator with observability off and on and
// require exact equality of the result (members, match sets, objective
// coordinates, stats counters).
//
// The invariant tests pin the registry's counters to the GenStats the
// algorithms maintain independently, under randomized cancellation: the
// two bookkeeping paths never share code, so agreement is strong evidence
// both are right.

#include <functional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "core/bi_qgen.h"
#include "core/cbm.h"
#include "core/enum_qgen.h"
#include "core/kungs.h"
#include "core/match_cache.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

struct NamedRunner {
  const char* name;
  std::function<Result<QGenResult>(const QGenConfig&)> run;
};

std::vector<NamedRunner> AllRunners() {
  return {
      {"EnumQGen", [](const QGenConfig& c) { return EnumQGen::Run(c); }},
      {"RfQGen", [](const QGenConfig& c) { return RfQGen::Run(c); }},
      {"BiQGen", [](const QGenConfig& c) { return BiQGen::Run(c); }},
      {"BiQGen/parallel",
       [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); }},
      {"ParallelQGen",
       [](const QGenConfig& c) { return ParallelQGen::Run(c, 4); }},
      {"Kungs", [](const QGenConfig& c) { return Kungs::Run(c); }},
      {"Cbm", [](const QGenConfig& c) { return Cbm::Run(c, 6); }},
  };
}

/// Restores the process-global observability state on scope exit so a
/// failing assertion cannot leak an enabled tracer into later tests.
struct ObsGuard {
  ~ObsGuard() {
    obs::Tracer::Global().Disable();
    obs::MetricsRegistry::Global().set_enabled(false);
    obs::MetricsRegistry::Global().Reset();
  }
};

/// Exact archive equality: same members in the same (sorted) order, with
/// identical match sets, objective coordinates, and group coverage.
void ExpectSameArchive(const QGenResult& expected, const QGenResult& got,
                       const std::string& label) {
  ASSERT_EQ(expected.pareto.size(), got.pareto.size()) << label;
  for (size_t i = 0; i < expected.pareto.size(); ++i) {
    const EvaluatedPtr& a = expected.pareto[i];
    const EvaluatedPtr& b = got.pareto[i];
    EXPECT_EQ(a->inst, b->inst) << label << " member " << i;
    EXPECT_EQ(a->matches, b->matches) << label << " member " << i;
    EXPECT_EQ(a->group_coverage, b->group_coverage) << label << " member " << i;
    EXPECT_DOUBLE_EQ(a->obj.diversity, b->obj.diversity) << label;
    EXPECT_DOUBLE_EQ(a->obj.coverage, b->obj.coverage) << label;
    EXPECT_EQ(a->feasible, b->feasible) << label;
  }
  EXPECT_EQ(expected.stats.verified, got.stats.verified) << label;
  EXPECT_EQ(expected.stats.generated, got.stats.generated) << label;
  EXPECT_EQ(expected.stats.feasible, got.stats.feasible) << label;
}

uint64_t CounterOf(const obs::MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// --- Differential: tracing/metrics on must not change any archive byte ---

TEST(ObservabilityTest, ArchivesIdenticalAcrossDetailLevels) {
  SmallScenario s;
  ObsGuard guard;
  for (const NamedRunner& runner : AllRunners()) {
    obs::Tracer::Global().Disable();
    obs::MetricsRegistry::Global().set_enabled(false);
    QGenResult baseline = runner.run(s.Config(0.05)).ValueOrDie();

    for (obs::TraceDetail detail :
         {obs::TraceDetail::kPhase, obs::TraceDetail::kFull}) {
      obs::Tracer::Global().Enable(detail);
      obs::MetricsRegistry::Global().Reset();
      obs::MetricsRegistry::Global().set_enabled(true);
      QGenResult traced = runner.run(s.Config(0.05)).ValueOrDie();
      ExpectSameArchive(baseline, traced,
                        std::string(runner.name) + " detail=" +
                            obs::TraceDetailName(detail));
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);
    }
  }
}

TEST(ObservabilityTest, ArchivesIdenticalWithCacheAndSweep) {
  SmallScenario s;
  ObsGuard guard;
  struct Variant {
    const char* name;
    bool sweep;
    bool cache;
  };
  for (const Variant& v : {Variant{"sweep", true, false},
                           Variant{"cache", false, true},
                           Variant{"sweep+cache", true, true}}) {
    for (const NamedRunner& runner : AllRunners()) {
      auto configure = [&](MatchSetCache* cache) {
        QGenConfig c = s.Config(0.05);
        c.use_sweep_verify = v.sweep;
        if (v.cache) c.match_cache = cache;
        return c;
      };
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);
      MatchSetCache cold_cache;
      QGenResult baseline = runner.run(configure(&cold_cache)).ValueOrDie();

      obs::Tracer::Global().Enable(obs::TraceDetail::kFull);
      obs::MetricsRegistry::Global().Reset();
      obs::MetricsRegistry::Global().set_enabled(true);
      MatchSetCache traced_cache;
      QGenResult traced = runner.run(configure(&traced_cache)).ValueOrDie();
      ExpectSameArchive(baseline, traced,
                        std::string(runner.name) + " " + v.name);
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);
    }
  }
}

// --- Metrics invariants under randomized cancellation ---

TEST(ObservabilityTest, VerifyCountersMatchGenStatsUnderCancellation) {
  SmallScenario s;
  ObsGuard guard;
  // Fixed seed: arbitrary but reproducible cancellation points.
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<uint64_t> pick(1, 60);
  for (const NamedRunner& runner : AllRunners()) {
    for (int round = 0; round < 2; ++round) {
      uint64_t n = pick(rng);
      std::string label =
          std::string(runner.name) + " cancel@" + std::to_string(n);
      RunContext ctx;
      ctx.CancelAfterVerifications(n);
      ctx.set_on_expiry(ExpiryPolicy::kPartial);
      MatchSetCache cache;
      QGenConfig config = s.Config(0.05);
      config.run_context = &ctx;
      config.match_cache = &cache;

      obs::MetricsRegistry::Global().Reset();
      obs::MetricsRegistry::Global().set_enabled(true);
      QGenResult result = runner.run(config).ValueOrDie();
      obs::MetricsRegistry::Global().set_enabled(false);
      obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();

      // The registry's completion counter and GenStats.verified are
      // maintained by disjoint code paths (verifier-side FAIRSQG_COUNT vs
      // per-generator ++stats.verified); they must agree exactly, which
      // also proves no aborted instance was ever counted as verified.
      EXPECT_EQ(CounterOf(snap, "fairsqg.verify.completed"),
                result.stats.verified)
          << label;
      // Every cache consultation resolves to a hit or a miss — no third
      // outcome, no double counting.
      EXPECT_EQ(CounterOf(snap, "fairsqg.verify.cache_lookups"),
                CounterOf(snap, "fairsqg.verify.cache_hits") +
                    CounterOf(snap, "fairsqg.verify.cache_misses"))
          << label;
      // Lookups can only come from completed or aborted verifications, so
      // the cache traffic is bounded by the instances the verifier saw.
      EXPECT_LE(CounterOf(snap, "fairsqg.verify.cache_lookups"),
                CounterOf(snap, "fairsqg.verify.completed") +
                    CounterOf(snap, "fairsqg.verify.aborted_instances") +
                    CounterOf(snap, "fairsqg.verify.sweep_served"))
          << label;
    }
  }
}

TEST(ObservabilityTest, SweepCountersMatchGenStats) {
  SmallScenario s;
  ObsGuard guard;
  for (const NamedRunner& runner : AllRunners()) {
    QGenConfig config = s.Config(0.05);
    config.use_sweep_verify = true;

    obs::MetricsRegistry::Global().Reset();
    obs::MetricsRegistry::Global().set_enabled(true);
    QGenResult result = runner.run(config).ValueOrDie();
    obs::MetricsRegistry::Global().set_enabled(false);
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();

    // A chain sweeps at least one member beyond its head, so the instance
    // counter dominates the chain counter whenever any chain completed.
    uint64_t chains = CounterOf(snap, "fairsqg.sweep.chains");
    uint64_t instances = CounterOf(snap, "fairsqg.sweep.instances");
    EXPECT_GE(instances, chains) << runner.name;
    // Registry counters and the GenStats sweep counters are written at the
    // same sites; they must agree exactly.
    EXPECT_EQ(chains, result.stats.sweep_chains) << runner.name;
    EXPECT_EQ(instances, result.stats.sweep_instances) << runner.name;
    EXPECT_EQ(CounterOf(snap, "fairsqg.sweep.fallbacks"),
              result.stats.sweep_fallbacks)
        << runner.name;
  }
}

// --- Trace well-formedness (also the TSan clock-regression test) ---

TEST(ObservabilityTest, SpanDurationsNonNegativeAndTreeWellFormed) {
  SmallScenario s;
  ObsGuard guard;
  // Parallel runs exercise cross-thread span recording; full detail
  // exercises the per-instance verifier/matcher spans. All timestamps come
  // from the one monotonic clock (common/timer.h MonotonicNanos), so no
  // span may ever close before it opened — the regression this test pins
  // after the steady_clock unification.
  for (const NamedRunner& runner : AllRunners()) {
    obs::Tracer::Global().Enable(obs::TraceDetail::kFull);
    QGenConfig config = s.Config(0.05);
    config.use_sweep_verify = true;
    (void)runner.run(config).ValueOrDie();
    std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
    uint64_t dropped = obs::Tracer::Global().dropped();
    obs::Tracer::Global().Disable();

    ASSERT_FALSE(spans.empty()) << runner.name;
    std::set<uint64_t> ids;
    for (const obs::SpanRecord& rec : spans) {
      EXPECT_GE(rec.dur_ns, 0) << runner.name << " span " << rec.name;
      if (rec.instant) EXPECT_EQ(rec.dur_ns, 0) << runner.name;
      EXPECT_NE(rec.id, 0u) << runner.name;
      EXPECT_TRUE(ids.insert(rec.id).second)
          << runner.name << ": duplicate span id " << rec.id;
    }
    if (dropped == 0) {
      // With the full buffer retained, every parent reference must resolve
      // to a recorded span or the root sentinel. (Parents that were still
      // open when the snapshot was cut cannot occur: generators join their
      // workers before returning, closing every span.)
      for (const obs::SpanRecord& rec : spans) {
        EXPECT_TRUE(rec.parent == 0 || ids.count(rec.parent) == 1)
            << runner.name << ": span " << rec.name << " has dangling parent "
            << rec.parent;
      }
    }
  }
}

TEST(ObservabilityTest, DisabledTracerRecordsNothing) {
  SmallScenario s;
  ObsGuard guard;
  obs::Tracer::Global().Enable(obs::TraceDetail::kPhase);
  obs::Tracer::Global().Disable();
  uint64_t before = obs::Tracer::Global().total_recorded();
  (void)BiQGen::Run(s.Config(0.05)).ValueOrDie();
  EXPECT_EQ(obs::Tracer::Global().total_recorded(), before);
  // Same for the registry: counters stay zero while disabled.
  obs::MetricsRegistry::Global().Reset();
  (void)BiQGen::Run(s.Config(0.05)).ValueOrDie();
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

TEST(ObservabilityTest, PhaseDetailOmitsPerInstanceSpans) {
  SmallScenario s;
  ObsGuard guard;
  obs::Tracer::Global().Enable(obs::TraceDetail::kPhase);
  (void)EnumQGen::Run(s.Config(0.05)).ValueOrDie();
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  obs::Tracer::Global().Disable();
  ASSERT_FALSE(spans.empty());
  for (const obs::SpanRecord& rec : spans) {
    // "verify" / "match" / "evaluate" spans are kFull-only; at kPhase the
    // buffer holds only coarse phases, keeping overhead near zero.
    EXPECT_STRNE(rec.name, "verify") << "per-instance span at phase detail";
    EXPECT_STRNE(rec.name, "match") << "per-instance span at phase detail";
    EXPECT_STRNE(rec.name, "evaluate") << "per-instance span at phase detail";
  }
}

}  // namespace
}  // namespace fairsqg
