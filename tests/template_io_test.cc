#include "query/template_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

QueryTemplate MakeTemplate(std::shared_ptr<Schema> schema) {
  QueryTemplate t(schema);
  QNodeId dir = t.AddNode("director");
  QNodeId user = t.AddNode("user");
  QNodeId org = t.AddNode("org");
  t.SetOutputNode(dir);
  t.AddLiteral(dir, "domain", CompareOp::kEq, AttrValue(std::string("IT")));
  t.AddRangeLiteral(user, "yearsOfExp", CompareOp::kGe);
  t.AddRangeLiteral(org, "employees", CompareOp::kLe);
  t.AddLiteral(org, "founded", CompareOp::kGt, AttrValue(int64_t{1990}));
  t.AddEdge(user, dir, "recommend");
  t.AddVariableEdge(user, org, "worksAt");
  return t;
}

TEST(TemplateIoTest, RoundTripPreservesStructure) {
  auto schema = std::make_shared<Schema>();
  QueryTemplate t = MakeTemplate(schema);
  std::ostringstream out;
  ASSERT_TRUE(WriteTemplateText(t, out).ok());

  std::istringstream in(out.str());
  Result<QueryTemplate> r = ReadTemplateText(in, schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << out.str();
  const QueryTemplate& t2 = *r;

  EXPECT_EQ(t2.num_nodes(), t.num_nodes());
  EXPECT_EQ(t2.num_edges(), t.num_edges());
  EXPECT_EQ(t2.num_range_vars(), t.num_range_vars());
  EXPECT_EQ(t2.num_edge_vars(), t.num_edge_vars());
  EXPECT_EQ(t2.output_node(), t.output_node());
  for (QNodeId u = 0; u < t.num_nodes(); ++u) {
    EXPECT_EQ(t2.node_label(u), t.node_label(u));
  }
  for (size_t i = 0; i < t.num_edges(); ++i) {
    EXPECT_EQ(t2.edges()[i].from, t.edges()[i].from);
    EXPECT_EQ(t2.edges()[i].to, t.edges()[i].to);
    EXPECT_EQ(t2.edges()[i].label, t.edges()[i].label);
    EXPECT_EQ(t2.edges()[i].is_variable(), t.edges()[i].is_variable());
  }
  for (size_t i = 0; i < t.literals().size(); ++i) {
    const LiteralTemplate& a = t.literals()[i];
    const LiteralTemplate& b = t2.literals()[i];
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.attr, b.attr);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.is_variable(), b.is_variable());
    if (!a.is_variable()) {
      EXPECT_EQ(a.fixed_value, b.fixed_value);
    }
  }
}

TEST(TemplateIoTest, ParsesHandWrittenTemplate) {
  std::istringstream in(
      "# talent search\n"
      "template\n"
      "node u0 director\n"
      "node u1 user\n"
      "output u0\n"
      "edge u1 u0 recommend\n"
      "literal u1 yearsOfExp >= ?   # range variable\n"
      "literal u0 title = s:cto\n");
  Result<QueryTemplate> r = ReadTemplateText(in, std::make_shared<Schema>());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), 2u);
  EXPECT_EQ(r->num_range_vars(), 1u);
  EXPECT_EQ(r->literals().size(), 2u);
  EXPECT_TRUE(r->Validate().ok());
}

TEST(TemplateIoTest, TypedValuesParse) {
  std::istringstream in(
      "template\n"
      "node u0 movie\n"
      "literal u0 rating > d:7.5\n"
      "literal u0 year <= i:2000\n");
  Result<QueryTemplate> r = ReadTemplateText(in, std::make_shared<Schema>());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->literals()[0].fixed_value.is_double());
  EXPECT_TRUE(r->literals()[1].fixed_value.is_int());
}

TEST(TemplateIoTest, RejectsMissingHeader) {
  std::istringstream in("node u0 movie\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, RejectsNonDenseNodeIds) {
  std::istringstream in("template\nnode u1 movie\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, RejectsBadNodeRef) {
  std::istringstream in(
      "template\nnode u0 a\nnode u1 b\noutput u0\nedge u0 u7 e\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, RejectsBadOp) {
  std::istringstream in("template\nnode u0 a\nliteral u0 p != i:3\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, RejectsMissingOutputForMultiNode) {
  std::istringstream in("template\nnode u0 a\nnode u1 b\nedge u0 u1 e\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, RejectsInvalidatedTemplate) {
  // Disconnected template fails the final Validate().
  std::istringstream in("template\nnode u0 a\nnode u1 b\noutput u0\n");
  EXPECT_FALSE(ReadTemplateText(in, std::make_shared<Schema>()).ok());
}

TEST(TemplateIoTest, NullSchemaRejected) {
  std::istringstream in("template\nnode u0 a\n");
  EXPECT_FALSE(ReadTemplateText(in, nullptr).ok());
}

TEST(TemplateIoTest, FileRoundTrip) {
  auto schema = std::make_shared<Schema>();
  QueryTemplate t = MakeTemplate(schema);
  std::string path = testing::TempDir() + "/fairsqg_template_io_test.qt";
  ASSERT_TRUE(WriteTemplateFile(t, path).ok());
  Result<QueryTemplate> r = ReadTemplateFile(path, schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), t.num_nodes());
  EXPECT_TRUE(ReadTemplateFile("/nonexistent.qt", schema).status().IsIoError());
}

}  // namespace
}  // namespace fairsqg
