// End-to-end integration: dataset generation -> template sampling ->
// scenario assembly -> all algorithms -> indicators, across all three
// datasets, at a tiny scale. This is the full per-figure bench pipeline in
// miniature.

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/enumerate.h"
#include "core/indicators.h"
#include "core/kungs.h"
#include "core/online_qgen.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "workload/instance_stream.h"
#include "workload/scenario.h"

namespace fairsqg {
namespace {

class PipelineTest : public testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, FullPipelineOnEveryDataset) {
  ScenarioOptions options;
  options.dataset = GetParam();
  options.scale = 0.06;
  options.seed = 11;
  options.num_edges = 3;
  options.num_range_vars = 2;
  options.num_edge_vars = 1;
  options.num_groups = 2;
  options.coverage_fraction = 0.5;
  options.max_domain_values = 5;
  Result<Scenario> scenario_or = MakeScenario(options);
  ASSERT_TRUE(scenario_or.ok()) << scenario_or.status().ToString();
  Scenario s = std::move(scenario_or).ValueOrDie();
  QGenConfig config = s.MakeConfig(0.05);

  // Ground truth.
  InstanceVerifier verifier(config);
  GenStats stats;
  auto all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
  auto feasible = FeasibleOnly(all);
  ASSERT_FALSE(feasible.empty());

  // Exact baseline scores a perfect indicator.
  QGenResult kungs = Kungs::Run(config).ValueOrDie();
  auto kungs_ind = EpsilonIndicator(kungs.pareto, feasible, config.epsilon);
  EXPECT_DOUBLE_EQ(kungs_ind.indicator, 1.0) << GetParam();

  // Every approximate algorithm delivers an ε-Pareto set.
  for (auto [name, result] :
       {std::pair{"Enum", EnumQGen::Run(config).ValueOrDie()},
        std::pair{"Rf", RfQGen::Run(config).ValueOrDie()},
        std::pair{"Bi", BiQGen::Run(config).ValueOrDie()},
        std::pair{"Par", ParallelQGen::Run(config, 3).ValueOrDie()}}) {
    ASSERT_FALSE(result.pareto.empty()) << name << " on " << GetParam();
    for (const EvaluatedPtr& x : feasible) {
      bool covered = false;
      for (const EvaluatedPtr& m : result.pareto) {
        if (EpsilonDominates(m->obj, x->obj, config.epsilon + 1e-9)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << name << " on " << GetParam();
    }
    // No algorithm verifies more instances than the enumeration bound.
    EXPECT_LE(result.stats.verified, all.size()) << name;
  }

  // Online maintenance over a deduplicated stream of the whole space
  // keeps its size bound and ends with feasible members.
  OnlineConfig online;
  online.k = 5;
  online.window = 20;
  online.initial_epsilon = config.epsilon;
  OnlineQGen gen(config, online);
  InstanceStream stream(*s.tmpl, *s.domains, 3, /*dedup=*/true);
  Instantiation inst;
  while (stream.Next(&inst)) {
    gen.Process(inst);
    ASSERT_LE(gen.size(), online.k);
  }
  EXPECT_GT(gen.size(), 0u);
  for (const EvaluatedPtr& m : gen.Current()) EXPECT_TRUE(m->feasible);
  EXPECT_GE(gen.epsilon(), config.epsilon);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelineTest,
                         testing::Values("dbp", "lki", "cite"));

}  // namespace
}  // namespace fairsqg
