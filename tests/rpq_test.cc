#include "rpq/rpq_engine.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

// Path: 0 -a-> 1 -a-> 2 -b-> 3 -a-> 4, plus 1 -b-> 5 and 5 -b-> 3.
struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph = MakeGraph(schema);

  static Graph MakeGraph(std::shared_ptr<Schema> schema) {
    GraphBuilder b(std::move(schema));
    for (int i = 0; i < 6; ++i) b.AddNode("n");
    b.AddEdge(0, 1, "a");
    b.AddEdge(1, 2, "a");
    b.AddEdge(2, 3, "b");
    b.AddEdge(3, 4, "a");
    b.AddEdge(1, 5, "b");
    b.AddEdge(5, 3, "b");
    return std::move(b).Build().ValueOrDie();
  }

  PathRegex Parse(const std::string& text) {
    return ParsePathRegex(text, schema.get()).ValueOrDie();
  }
};

TEST(RegexParseTest, ParsesAndNormalizes) {
  auto schema = std::make_shared<Schema>();
  PathRegex r =
      ParsePathRegex(" a / (b | c)* / ^d ", schema.get()).ValueOrDie();
  EXPECT_EQ(r.text, "a/((b|c))*/^d");
}

TEST(RegexParseTest, JuxtapositionIsConcatenation) {
  auto schema = std::make_shared<Schema>();
  PathRegex r = ParsePathRegex("a b c", schema.get()).ValueOrDie();
  EXPECT_EQ(r.text, "a/b/c");
}

TEST(RegexParseTest, RejectsMalformedExpressions) {
  auto schema = std::make_shared<Schema>();
  for (const char* bad : {"", "(", "a|", "a)", "*", "a**b(", "^"}) {
    EXPECT_FALSE(ParsePathRegex(bad, schema.get()).ok()) << bad;
  }
  EXPECT_FALSE(ParsePathRegex("a", nullptr).ok());
}

TEST(RpqTest, SingleLabel) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a"), 0), NodeSet({1}));
  EXPECT_EQ(engine.ReachableFrom(f.Parse("b"), 1), NodeSet({5}));
}

TEST(RpqTest, Concatenation) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a/a"), 0), NodeSet({2}));
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a/b"), 0), NodeSet({5}));
}

TEST(RpqTest, Alternation) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a|b"), 1), NodeSet({2, 5}));
}

TEST(RpqTest, KleeneStarIncludesEmptyPath) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a*"), 0), NodeSet({0, 1, 2}));
}

TEST(RpqTest, PlusExcludesEmptyPath) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a+"), 0), NodeSet({1, 2}));
}

TEST(RpqTest, OptionalLabel) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a?"), 0), NodeSet({0, 1}));
}

TEST(RpqTest, MixedExpression) {
  Fixture f;
  RpqEngine engine(f.graph);
  // (a|b)* from 0 reaches everything on the a/b skeleton.
  EXPECT_EQ(engine.ReachableFrom(f.Parse("(a|b)*"), 0),
            NodeSet({0, 1, 2, 3, 4, 5}));
  // a/b/b: 0 -a-> 1 -b-> 5 -b-> 3.
  EXPECT_EQ(engine.ReachableFrom(f.Parse("a/b/b"), 0), NodeSet({3}));
}

TEST(RpqTest, InverseTraversal) {
  Fixture f;
  RpqEngine engine(f.graph);
  EXPECT_EQ(engine.ReachableFrom(f.Parse("^a"), 1), NodeSet({0}));
  // ^b/^a from 5: 5 <-b- 1 <-a- 0.
  EXPECT_EQ(engine.ReachableFrom(f.Parse("^b/^a"), 5), NodeSet({0}));
}

TEST(RpqTest, CycleSafety) {
  auto schema = std::make_shared<Schema>();
  GraphBuilder b(schema);
  b.AddNode("n");
  b.AddNode("n");
  b.AddEdge(0, 1, "a");
  b.AddEdge(1, 0, "a");
  Graph g = std::move(b).Build().ValueOrDie();
  RpqEngine engine(g);
  PathRegex r = ParsePathRegex("a+", schema.get()).ValueOrDie();
  EXPECT_EQ(engine.ReachableFrom(r, 0), NodeSet({0, 1}));  // Terminates.
}

TEST(RpqTest, ReachableFromAnyIsUnion) {
  Fixture f;
  RpqEngine engine(f.graph);
  PathRegex r = f.Parse("b");
  NodeSet joint = engine.ReachableFromAny(r, {1, 2});
  EXPECT_EQ(joint, NodeSet({3, 5}));
}

TEST(RpqTest, EvaluateAllWithSourceLabelAndCap) {
  Fixture f;
  RpqEngine engine(f.graph);
  auto pairs = engine.EvaluateAll(f.Parse("a"), f.schema->NodeLabelId("n"));
  EXPECT_EQ(pairs.size(), 3u);  // (0,1), (1,2), (3,4).
  auto capped = engine.EvaluateAll(f.Parse("a"), kInvalidLabel, 2);
  EXPECT_EQ(capped.size(), 2u);
}

}  // namespace
}  // namespace fairsqg
