// Cancellation / deadline / degraded-result coverage (DESIGN.md §11):
// every generator must stop cleanly when its RunContext expires and hand
// back a best-so-far archive whose members are all fully verified — a
// truncated run degrades to "the ε-Pareto set of the verified prefix",
// never to a corrupted or partially-verified result.

#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "core/bi_qgen.h"
#include "core/cbm.h"
#include "core/enum_qgen.h"
#include "core/enumerate.h"
#include "core/kungs.h"
#include "core/match_cache.h"
#include "core/online_qgen.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

struct NamedRunner {
  const char* name;
  std::function<Result<QGenResult>(const QGenConfig&)> run;
};

std::vector<NamedRunner> AllRunners() {
  return {
      {"EnumQGen", [](const QGenConfig& c) { return EnumQGen::Run(c); }},
      {"RfQGen", [](const QGenConfig& c) { return RfQGen::Run(c); }},
      {"BiQGen", [](const QGenConfig& c) { return BiQGen::Run(c); }},
      {"BiQGen/parallel",
       [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); }},
      {"ParallelQGen",
       [](const QGenConfig& c) { return ParallelQGen::Run(c, 4); }},
      {"Kungs", [](const QGenConfig& c) { return Kungs::Run(c); }},
      {"Cbm", [](const QGenConfig& c) { return Cbm::Run(c, 6); }},
  };
}

/// No archive member may (weakly) Pareto-dominate another: box archiving
/// keeps at most one representative per box and boxes are mutually
/// non-dominating, which rules out raw dominance between members too.
void ExpectParetoValid(const std::vector<EvaluatedPtr>& pareto,
                       const std::string& label) {
  for (size_t i = 0; i < pareto.size(); ++i) {
    for (size_t j = 0; j < pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(pareto[i]->obj, pareto[j]->obj))
          << label << ": member " << i << " dominates member " << j;
    }
  }
}

/// Every member of a (possibly truncated) archive must re-verify to the
/// exact same match set and coordinates under a fresh unbounded verifier:
/// cancellation may shrink the archive, never corrupt its entries.
void ExpectFullyVerified(const std::vector<EvaluatedPtr>& pareto,
                         const QGenConfig& bounded_config,
                         const std::string& label) {
  QGenConfig unbounded = bounded_config;
  unbounded.run_context = nullptr;
  unbounded.match_cache = nullptr;
  InstanceVerifier fresh(unbounded);
  for (const EvaluatedPtr& m : pareto) {
    EvaluatedPtr again = fresh.Verify(m->inst);
    ASSERT_NE(again, nullptr) << label;
    EXPECT_EQ(again->matches, m->matches) << label;
    EXPECT_DOUBLE_EQ(again->obj.diversity, m->obj.diversity) << label;
    EXPECT_DOUBLE_EQ(again->obj.coverage, m->obj.coverage) << label;
    EXPECT_EQ(again->feasible, m->feasible) << label;
  }
}

TEST(CancellationTest, EnumCancelAtNMatchesVerificationBudget) {
  SmallScenario s;
  for (size_t n : {1u, 5u, 17u, 40u}) {
    QGenConfig budget = s.Config(0.05);
    budget.max_verifications = n;
    QGenResult expected = EnumQGen::Run(budget).ValueOrDie();

    RunContext ctx;
    ctx.CancelAfterVerifications(n);
    QGenConfig cancelled = s.Config(0.05);
    cancelled.run_context = &ctx;
    QGenResult got = EnumQGen::Run(cancelled).ValueOrDie();

    // Cancelling after n verifications is exactly the same truncation as a
    // verification budget of n: bit-identical verified prefix and archive.
    EXPECT_EQ(got.stats.verified, n) << "n=" << n;
    EXPECT_EQ(got.stats.verified, expected.stats.verified);
    EXPECT_TRUE(got.stats.deadline_exceeded);
    ASSERT_EQ(got.pareto.size(), expected.pareto.size()) << "n=" << n;
    for (size_t i = 0; i < got.pareto.size(); ++i) {
      EXPECT_EQ(got.pareto[i]->inst, expected.pareto[i]->inst);
      EXPECT_DOUBLE_EQ(got.pareto[i]->obj.diversity,
                       expected.pareto[i]->obj.diversity);
      EXPECT_DOUBLE_EQ(got.pareto[i]->obj.coverage,
                       expected.pareto[i]->obj.coverage);
    }
  }
}

TEST(CancellationTest, RandomCancellationPointsYieldValidArchives) {
  SmallScenario s;
  // Fixed seed: the cancellation points are arbitrary but reproducible.
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<uint64_t> pick(1, 60);
  for (const NamedRunner& runner : AllRunners()) {
    for (int round = 0; round < 3; ++round) {
      uint64_t n = pick(rng);
      std::string label =
          std::string(runner.name) + " cancel@" + std::to_string(n);
      RunContext ctx;
      ctx.CancelAfterVerifications(n);
      QGenConfig config = s.Config(0.05);
      config.run_context = &ctx;
      Result<QGenResult> r = runner.run(config);
      ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString();
      EXPECT_LE(r->stats.verified, n) << label;
      if (ctx.Expired()) {
        EXPECT_TRUE(r->stats.deadline_exceeded) << label;
      }
      ExpectParetoValid(r->pareto, label);
      ExpectFullyVerified(r->pareto, config, label);
    }
  }
}

TEST(CancellationTest, SequentialBiCancelIsDeterministic) {
  SmallScenario s;
  QGenResult runs[2];
  for (QGenResult& out : runs) {
    RunContext ctx;
    ctx.CancelAfterVerifications(9);
    QGenConfig config = s.Config(0.05);
    config.run_context = &ctx;
    out = BiQGen::Run(config).ValueOrDie();
  }
  ASSERT_EQ(runs[0].pareto.size(), runs[1].pareto.size());
  for (size_t i = 0; i < runs[0].pareto.size(); ++i) {
    EXPECT_EQ(runs[0].pareto[i]->inst, runs[1].pareto[i]->inst);
  }
  EXPECT_EQ(runs[0].stats.verified, runs[1].stats.verified);
}

TEST(CancellationTest, ParallelBiCancelIsDeterministic) {
  SmallScenario s;
  // The coordinator alone polls the context (one poll per admitted batch
  // slot), so the set of verified instances is a deterministic prefix of
  // the batch schedule — two cancelled runs at the same thread count must
  // be bit-identical, exactly like the uncancelled determinism guarantee.
  QGenResult runs[2];
  for (QGenResult& out : runs) {
    RunContext ctx;
    ctx.CancelAfterVerifications(12);
    QGenConfig config = s.Config(0.05);
    config.run_context = &ctx;
    out = BiQGen::RunParallel(config, 4).ValueOrDie();
  }
  ASSERT_EQ(runs[0].pareto.size(), runs[1].pareto.size());
  for (size_t i = 0; i < runs[0].pareto.size(); ++i) {
    EXPECT_EQ(runs[0].pareto[i]->inst, runs[1].pareto[i]->inst);
    EXPECT_DOUBLE_EQ(runs[0].pareto[i]->obj.diversity,
                     runs[1].pareto[i]->obj.diversity);
    EXPECT_DOUBLE_EQ(runs[0].pareto[i]->obj.coverage,
                     runs[1].pareto[i]->obj.coverage);
  }
  EXPECT_EQ(runs[0].stats.verified, runs[1].stats.verified);
  EXPECT_EQ(runs[0].stats.feasible, runs[1].stats.feasible);
}

TEST(CancellationTest, ParallelQGenCancelDispatchesExactPrefix) {
  SmallScenario s;
  RunContext ctx;
  ctx.CancelAfterVerifications(10);
  QGenConfig config = s.Config(0.05);
  config.run_context = &ctx;
  QGenResult r = ParallelQGen::Run(config, 4).ValueOrDie();
  // The dispatcher polls once per instance under the enumeration lock, so
  // exactly the first 10 enumerated instances are dispatched and verified.
  EXPECT_EQ(r.stats.verified, 10u);
  EXPECT_TRUE(r.stats.deadline_exceeded);
  ExpectFullyVerified(r.pareto, config, "ParallelQGen cancel@10");
}

TEST(CancellationTest, FailPolicyReturnsDeadlineExceeded) {
  SmallScenario s;
  for (const NamedRunner& runner : AllRunners()) {
    RunContext ctx;
    ctx.CancelAfterVerifications(3);
    ctx.set_on_expiry(ExpiryPolicy::kFail);
    QGenConfig config = s.Config(0.05);
    config.run_context = &ctx;
    Result<QGenResult> r = runner.run(config);
    ASSERT_FALSE(r.ok()) << runner.name;
    EXPECT_TRUE(r.status().IsDeadlineExceeded())
        << runner.name << ": " << r.status().ToString();
  }
}

TEST(CancellationTest, PreExpiredDeadlineReturnsEmptyPartialResult) {
  SmallScenario s;
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(-1);
  QGenConfig config = s.Config(0.05);
  config.run_context = &ctx;
  for (const NamedRunner& runner : AllRunners()) {
    Result<QGenResult> r = runner.run(config);
    ASSERT_TRUE(r.ok()) << runner.name << ": " << r.status().ToString();
    EXPECT_TRUE(r->stats.deadline_exceeded) << runner.name;
    EXPECT_EQ(r->stats.verified, 0u) << runner.name;
    EXPECT_TRUE(r->pareto.empty()) << runner.name;
  }
}

TEST(CancellationTest, WallClockDeadlineSmoke) {
  SmallScenario s;
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(1);
  QGenConfig config = s.Config(0.05);
  config.run_context = &ctx;
  Result<QGenResult> r = EnumQGen::Run(config);
  // Whether or not the run beat the 1ms deadline, the result is valid and
  // every retained member is fully verified.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectParetoValid(r->pareto, "deadline smoke");
  ExpectFullyVerified(r->pareto, config, "deadline smoke");
}

TEST(CancellationTest, StepLimitAbortsAreCountedAndCacheTransparent) {
  SmallScenario s;
  auto run_with_limit = [&](MatchSetCache* cache) {
    RunContext ctx;
    ctx.set_match_step_limit(40);
    QGenConfig config = s.Config(0.05);
    config.run_context = &ctx;
    config.match_cache = cache;
    return EnumQGen::Run(config).ValueOrDie();
  };

  QGenResult plain = run_with_limit(nullptr);
  // A 40-step budget is far below what these searches need: aborts happen.
  EXPECT_GT(plain.stats.timed_out_instances, 0u);
  EXPECT_GE(plain.stats.aborted_matches, plain.stats.timed_out_instances);
  // Step-budget aborts do not by themselves end the run.
  EXPECT_FALSE(plain.stats.deadline_exceeded);
  ExpectParetoValid(plain.pareto, "step limit, no cache");

  MatchSetCache::Options options;
  options.capacity_bytes = 8u << 20;
  auto cache = MatchSetCache::Create(options).ValueOrDie();
  QGenResult cached = run_with_limit(cache.get());

  // Aborted searches are never inserted into the cache, so the cache stays
  // transparent even on a degraded run: byte-identical archive and counts.
  EXPECT_EQ(cached.stats.verified, plain.stats.verified);
  EXPECT_EQ(cached.stats.feasible, plain.stats.feasible);
  EXPECT_EQ(cached.stats.timed_out_instances, plain.stats.timed_out_instances);
  ASSERT_EQ(cached.pareto.size(), plain.pareto.size());
  for (size_t i = 0; i < plain.pareto.size(); ++i) {
    EXPECT_EQ(cached.pareto[i]->inst, plain.pareto[i]->inst);
    EXPECT_EQ(cached.pareto[i]->matches, plain.pareto[i]->matches);
    EXPECT_DOUBLE_EQ(cached.pareto[i]->obj.diversity,
                     plain.pareto[i]->obj.diversity);
    EXPECT_DOUBLE_EQ(cached.pareto[i]->obj.coverage,
                     plain.pareto[i]->obj.coverage);
  }
}

TEST(CancellationTest, OnlineQGenStopsProcessingOnCancel) {
  SmallScenario s;
  RunContext ctx;
  ctx.CancelAfterVerifications(3);
  QGenConfig config = s.Config(0.05);
  config.run_context = &ctx;
  OnlineConfig online;
  online.k = 5;
  OnlineQGen qgen(config, online);
  InstantiationEnumerator en(*s.tmpl, *s.domains);
  Instantiation inst;
  for (int i = 0; i < 10 && en.Next(&inst); ++i) {
    qgen.Process(inst);
  }
  EXPECT_LE(qgen.stats().verified, 3u);
  EXPECT_TRUE(qgen.stats().deadline_exceeded);
  QGenResult snap = qgen.Snapshot();
  ExpectParetoValid(snap.pareto, "online cancel@3");
  ExpectFullyVerified(snap.pareto, config, "online cancel@3");
}

}  // namespace
}  // namespace fairsqg
