#include "query/query_template.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

std::shared_ptr<Schema> MakeSchema() { return std::make_shared<Schema>(); }

TEST(QueryTemplateTest, BuildTalentSearchTemplate) {
  // The Fig. 1 template: director u_o recommended by users u1, u2 working
  // at an org u4, with range variables on yearsOfExp and employees.
  QueryTemplate t(MakeSchema());
  QNodeId uo = t.AddNode("director");
  QNodeId u1 = t.AddNode("user");
  QNodeId u2 = t.AddNode("user");
  QNodeId u4 = t.AddNode("org");
  t.SetOutputNode(uo);
  t.AddLiteral(uo, "domain", CompareOp::kEq, AttrValue(std::string("IT")));
  RangeVarId x1 = t.AddRangeLiteral(u1, "yearsOfExp", CompareOp::kGe);
  RangeVarId x2 = t.AddRangeLiteral(u2, "yearsOfExp", CompareOp::kGe);
  RangeVarId x3 = t.AddRangeLiteral(u4, "employees", CompareOp::kGe);
  t.AddEdge(u1, uo, "recommend");
  EdgeVarId e1 = t.AddVariableEdge(u2, uo, "recommend");
  t.AddEdge(u1, u4, "worksAt");
  EdgeVarId e2 = t.AddVariableEdge(u2, u4, "worksAt");

  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.num_edges(), 4u);
  EXPECT_EQ(t.num_range_vars(), 3u);
  EXPECT_EQ(t.num_edge_vars(), 2u);
  EXPECT_EQ(t.num_vars(), 5u);
  EXPECT_EQ(t.output_node(), uo);
  EXPECT_EQ(x1, 0u);
  EXPECT_EQ(x2, 1u);
  EXPECT_EQ(x3, 2u);
  EXPECT_EQ(e1, 0u);
  EXPECT_EQ(e2, 1u);
  EXPECT_TRUE(t.Validate().ok()) << t.Validate().ToString();
}

TEST(QueryTemplateTest, LiteralsOfNode) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("x");
  QNodeId b = t.AddNode("y");
  t.AddEdge(a, b, "e");
  t.AddLiteral(a, "p", CompareOp::kGe, AttrValue(int64_t{1}));
  t.AddRangeLiteral(a, "q", CompareOp::kLe);
  EXPECT_EQ(t.literals_of(a).size(), 2u);
  EXPECT_TRUE(t.literals_of(b).empty());
}

TEST(QueryTemplateTest, VariableBookkeeping) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("x");
  QNodeId b = t.AddNode("y");
  RangeVarId x = t.AddRangeLiteral(a, "p", CompareOp::kGt);
  EdgeVarId e = t.AddVariableEdge(a, b, "knows");
  EXPECT_EQ(t.literal_of_var(x), 0u);
  EXPECT_EQ(t.edge_of_var(e), 0u);
  EXPECT_TRUE(t.edges()[t.edge_of_var(e)].is_variable());
  EXPECT_TRUE(t.literals()[t.literal_of_var(x)].is_variable());
}

TEST(QueryTemplateTest, ValidateRejectsEmpty) {
  QueryTemplate t(MakeSchema());
  EXPECT_TRUE(t.Validate().IsInvalidArgument());
}

TEST(QueryTemplateTest, ValidateRejectsDisconnected) {
  QueryTemplate t(MakeSchema());
  t.AddNode("x");
  t.AddNode("y");  // No edge between them.
  EXPECT_TRUE(t.Validate().IsInvalidArgument());
}

TEST(QueryTemplateTest, ValidateRejectsSelfLoop) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("x");
  t.AddEdge(a, a, "e");
  EXPECT_TRUE(t.Validate().IsInvalidArgument());
}

TEST(QueryTemplateTest, ValidateRejectsEqualityRangeVariable) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("x");
  t.AddRangeLiteral(a, "p", CompareOp::kEq);
  EXPECT_TRUE(t.Validate().IsInvalidArgument());
}

TEST(QueryTemplateTest, SingleNodeTemplateIsValid) {
  QueryTemplate t(MakeSchema());
  t.AddNode("x");
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.Diameter(), 0);
}

TEST(QueryTemplateTest, DiameterOfPath) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("x");
  QNodeId b = t.AddNode("x");
  QNodeId c = t.AddNode("x");
  t.AddEdge(a, b, "e");
  t.AddVariableEdge(b, c, "e");  // Variable edges count for the diameter.
  EXPECT_EQ(t.Diameter(), 2);
}

TEST(QueryTemplateTest, DiameterOfStar) {
  QueryTemplate t(MakeSchema());
  QNodeId hub = t.AddNode("h");
  for (int i = 0; i < 3; ++i) {
    QNodeId leaf = t.AddNode("l");
    t.AddEdge(hub, leaf, "e");
  }
  EXPECT_EQ(t.Diameter(), 2);
}

TEST(QueryTemplateTest, ToStringMentionsVariables) {
  QueryTemplate t(MakeSchema());
  QNodeId a = t.AddNode("user");
  QNodeId b = t.AddNode("org");
  t.AddRangeLiteral(a, "yearsOfExp", CompareOp::kGe);
  t.AddVariableEdge(a, b, "worksAt");
  std::string s = t.ToString();
  EXPECT_NE(s.find("x0"), std::string::npos);
  EXPECT_NE(s.find("xe0"), std::string::npos);
  EXPECT_NE(s.find("yearsOfExp"), std::string::npos);
  EXPECT_NE(s.find("worksAt"), std::string::npos);
}

}  // namespace
}  // namespace fairsqg
