#include "core/measures.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

// Four movies: two identical action movies, one different romance, one with
// a missing genre; degrees 3, 2, 1, 0 via "directed" edges from a director.
struct Fixture {
  Graph graph = MakeGraph();
  LabelId movie;

  static Graph MakeGraph() {
    GraphBuilder b;
    NodeId m0 = b.AddNode("movie");
    b.SetAttr(m0, "genre", AttrValue(std::string("action")));
    b.SetAttr(m0, "rating", AttrValue(6.0));
    NodeId m1 = b.AddNode("movie");
    b.SetAttr(m1, "genre", AttrValue(std::string("action")));
    b.SetAttr(m1, "rating", AttrValue(6.0));
    NodeId m2 = b.AddNode("movie");
    b.SetAttr(m2, "genre", AttrValue(std::string("romance")));
    b.SetAttr(m2, "rating", AttrValue(9.0));
    NodeId m3 = b.AddNode("movie");
    b.SetAttr(m3, "rating", AttrValue(3.0));
    NodeId d0 = b.AddNode("director");
    NodeId d1 = b.AddNode("director");
    NodeId d2 = b.AddNode("director");
    b.AddEdge(d0, m0, "directed");
    b.AddEdge(d1, m0, "directed");
    b.AddEdge(d2, m0, "directed");
    b.AddEdge(d0, m1, "directed");
    b.AddEdge(d1, m1, "directed");
    b.AddEdge(d0, m2, "directed");
    return std::move(b).Build().ValueOrDie();
  }

  Fixture() { movie = graph.schema().NodeLabelId("movie"); }
};

TEST(DiversityTest, IdenticalNodesHaveZeroDistance) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  EXPECT_DOUBLE_EQ(eval.Distance(0, 1), 0.0);
}

TEST(DiversityTest, DistanceSymmetricAndBounded) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      double d = eval.Distance(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
      EXPECT_DOUBLE_EQ(d, eval.Distance(b, a));
    }
  }
  EXPECT_DOUBLE_EQ(eval.Distance(2, 2), 0.0);
}

TEST(DiversityTest, MissingAttributeCountsAsDifferent) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  // m3 lacks genre; m0 has it -> genre contributes 1; rating |6-3|/6 = 0.5.
  // Average over 2 attrs: 0.75.
  EXPECT_NEAR(eval.Distance(0, 3), 0.75, 1e-9);
}

TEST(DiversityTest, NumericDistanceNormalizedByRange) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  // genre differs by the normalized edit distance of the two strings;
  // rating |6-9|/range(6) = 0.5; the distance averages over both attrs.
  double genre_d = NormalizedEditDistance("action", "romance");
  EXPECT_NEAR(eval.Distance(0, 2), (genre_d + 0.5) / 2.0, 1e-9);
}

TEST(DiversityTest, RelevanceIsNormalizedDegree) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  EXPECT_DOUBLE_EQ(eval.Relevance(0), 1.0);        // degree 3 of max 3.
  EXPECT_NEAR(eval.Relevance(1), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(eval.Relevance(3), 0.0);
}

TEST(DiversityTest, LambdaZeroIsPureRelevance) {
  Fixture f;
  DiversityConfig cfg;
  cfg.lambda = 0.0;
  DiversityEvaluator eval(f.graph, f.movie, cfg);
  double expected = eval.Relevance(0) + eval.Relevance(2);
  EXPECT_NEAR(eval.Diversity({0, 2}), expected, 1e-9);
}

TEST(DiversityTest, LambdaOneIsPureDissimilarity) {
  Fixture f;
  DiversityConfig cfg;
  cfg.lambda = 1.0;
  DiversityEvaluator eval(f.graph, f.movie, cfg);
  // |V_movie| = 4 -> scale 2*1/(4-1) = 2/3.
  double expected = (2.0 / 3.0) * eval.Distance(0, 2);
  EXPECT_NEAR(eval.Diversity({0, 2}), expected, 1e-9);
}

TEST(DiversityTest, EmptyAndSingletonSets) {
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  EXPECT_DOUBLE_EQ(eval.Diversity({}), 0.0);
  EXPECT_GE(eval.Diversity({0}), 0.0);
}

TEST(DiversityTest, MonotoneUnderSupersets) {
  // Lemma 2's diversity direction: adding matches never lowers δ.
  Fixture f;
  DiversityEvaluator eval(f.graph, f.movie, DiversityConfig{});
  double d2 = eval.Diversity({0, 2});
  double d3 = eval.Diversity({0, 2, 3});
  double d4 = eval.Diversity({0, 1, 2, 3});
  EXPECT_LE(d2, d3);
  EXPECT_LE(d3, d4);
  EXPECT_LE(d4, eval.MaxDiversity());
}

TEST(DiversityTest, CustomRelevanceFn) {
  Fixture f;
  DiversityConfig cfg;
  cfg.lambda = 0.0;
  cfg.relevance = [](const Graph&, NodeId) { return 0.25; };
  DiversityEvaluator eval(f.graph, f.movie, cfg);
  EXPECT_NEAR(eval.Diversity({0, 1, 2, 3}), 1.0, 1e-9);
}

// A randomized movie graph for the incremental-equivalence tests: ~60
// movies with mixed numeric/categorical/missing attributes and skewed
// degrees, so fingerprints exercise every AttrDistance branch.
Graph MakeRandomMovieGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  const char* genres[] = {"action", "romance", "thriller", "noir", "scifi"};
  std::vector<NodeId> movies;
  for (int i = 0; i < 60; ++i) {
    NodeId m = b.AddNode("movie");
    if (rng.NextBernoulli(0.85)) {
      b.SetAttr(m, "genre",
                AttrValue(std::string(genres[rng.NextBounded(5)])));
    }
    if (rng.NextBernoulli(0.9)) {
      b.SetAttr(m, "rating", AttrValue(1.0 + 9.0 * rng.NextDouble()));
    }
    movies.push_back(m);
  }
  for (int i = 0; i < 25; ++i) {
    NodeId d = b.AddNode("director");
    size_t fan = 1 + rng.NextZipf(8, 1.2);
    for (size_t j = 0; j < fan; ++j) {
      b.AddEdge(d, movies[rng.NextBounded(movies.size())], "directed");
    }
  }
  return std::move(b).Build().ValueOrDie();
}

TEST(DiversityTest, IncrementalPartsMatchFullRecomputation) {
  // incVerify's coordinate updates must agree with the exact O(n²)
  // recomputation over random nested chains of match sets — including the
  // empty-set and single-node edges on both sides of the nesting.
  Graph g = MakeRandomMovieGraph(20260807);
  LabelId movie = g.schema().NodeLabelId("movie");
  DiversityEvaluator eval(g, movie, DiversityConfig{});
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    // Random parent set over the movies; sizes 0, 1 forced periodically.
    NodeSet parent;
    double keep = rng.NextDouble();
    for (NodeId v = 0; v < 60; ++v) {
      if (rng.NextBernoulli(keep)) parent.push_back(v);
    }
    if (trial % 10 == 0) parent.clear();
    if (trial % 10 == 1) parent.resize(std::min<size_t>(parent.size(), 1));
    // Random child ⊆ parent (refinement direction).
    NodeSet child;
    for (NodeId v : parent) {
      if (rng.NextBernoulli(0.6)) child.push_back(v);
    }
    if (trial % 7 == 0) child.clear();

    DiversityEvaluator::Parts parent_full = eval.ComputeParts(parent);
    DiversityEvaluator::Parts child_full = eval.ComputeParts(child);

    DiversityEvaluator::Parts refined =
        eval.RefineParts(parent_full, parent, child);
    EXPECT_NEAR(refined.relevance_sum, child_full.relevance_sum, 1e-9);
    EXPECT_NEAR(refined.pair_sum, child_full.pair_sum, 1e-9);
    EXPECT_NEAR(eval.Combine(refined), eval.Combine(child_full), 1e-9);

    // Relaxation runs the same pair upward: child is the smaller set.
    DiversityEvaluator::Parts relaxed =
        eval.RelaxParts(child_full, child, parent);
    EXPECT_NEAR(relaxed.relevance_sum, parent_full.relevance_sum, 1e-9);
    EXPECT_NEAR(relaxed.pair_sum, parent_full.pair_sum, 1e-9);
    EXPECT_NEAR(eval.Combine(relaxed), eval.Combine(parent_full), 1e-9);
  }
}

TEST(DiversityTest, SharedIndexMatchesSelfBuiltEvaluator) {
  // An evaluator over a prebuilt Index must produce bit-identical numbers
  // to one that ran its own precompute (satellite of DESIGN.md §12: the
  // index is shared read-only across parallel workers).
  Graph g = MakeRandomMovieGraph(7);
  LabelId movie = g.schema().NodeLabelId("movie");
  DiversityConfig cfg;
  cfg.lambda = 0.35;
  DiversityEvaluator own(g, movie, cfg);
  DiversityEvaluator shared(DiversityEvaluator::BuildIndex(g, movie, nullptr),
                            cfg);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    NodeSet set;
    for (NodeId v = 0; v < 60; ++v) {
      if (rng.NextBernoulli(0.3)) set.push_back(v);
    }
    EXPECT_DOUBLE_EQ(own.Diversity(set), shared.Diversity(set));
  }
  EXPECT_DOUBLE_EQ(own.MaxDiversity(), shared.MaxDiversity());
  EXPECT_EQ(own.output_label(), shared.output_label());
}

TEST(CoverageTest, ExactCoverageScoresMax) {
  GroupSet groups = GroupSet::Create(10, {{0, 1, 2}, {5, 6}}, {2, 1}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 1, 5});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 3.0);  // C = 3, zero error.
  EXPECT_EQ(r.per_group, (std::vector<size_t>{2, 1}));
}

TEST(CoverageTest, OverCoveragePenalized) {
  GroupSet groups = GroupSet::Create(10, {{0, 1, 2}, {5, 6}}, {1, 1}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 1, 2, 5});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 0.0);  // C=2, error |3-1| + |1-1| = 2.
}

TEST(CoverageTest, UnderCoverageInfeasible) {
  GroupSet groups = GroupSet::Create(10, {{0, 1, 2}, {5, 6}}, {2, 2}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 5, 6});
  EXPECT_FALSE(r.feasible);
}

TEST(CoverageTest, ValueClampedToZero) {
  GroupSet groups = GroupSet::Create(10, {{0, 1, 2, 3, 4}}, {1}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 1, 2, 3, 4});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 0.0);  // C=1, error 4 -> clamp.
  EXPECT_DOUBLE_EQ(eval.MaxCoverage(), 1.0);
}

TEST(CoverageTest, NonGroupNodesIgnored) {
  GroupSet groups = GroupSet::Create(10, {{0}, {1}}, {1, 1}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 1, 7, 8, 9});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
}

TEST(CoverageTest, CoverageMonotonicityForFeasiblePairs) {
  // Lemma 2 (2): if S' ⊆ S and both feasible, then f(S) <= f(S').
  Rng rng(7);
  GroupSet groups =
      GroupSet::Create(40, {{0, 1, 2, 3, 4, 5}, {10, 11, 12, 13}}, {2, 1})
          .ValueOrDie();
  CoverageEvaluator eval(groups);
  for (int trial = 0; trial < 500; ++trial) {
    NodeSet big;
    for (NodeId v = 0; v < 40; ++v) {
      if (rng.NextBernoulli(0.5)) big.push_back(v);
    }
    NodeSet small;
    for (NodeId v : big) {
      if (rng.NextBernoulli(0.7)) small.push_back(v);
    }
    CoverageResult rb = eval.Evaluate(big);
    CoverageResult rs = eval.Evaluate(small);
    if (rb.feasible && rs.feasible) {
      EXPECT_LE(rb.value, rs.value)
          << "superset must not score higher when both feasible";
    }
    if (!rb.feasible) {
      EXPECT_FALSE(rs.feasible) << "subset of infeasible set must be infeasible";
    }
  }
}

}  // namespace
}  // namespace fairsqg
