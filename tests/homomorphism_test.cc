#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "matching/subgraph_matcher.h"

namespace fairsqg {
namespace {

// A director recommended by "two users" where only one distinct user
// exists: homomorphism matches (both query users map to the same data
// user), isomorphism does not.
TEST(HomomorphismTest, NonInjectiveMappingOnlyUnderHomomorphism) {
  auto schema = std::make_shared<Schema>();
  GraphBuilder b(schema);
  NodeId user = b.AddNode("user");
  NodeId dir = b.AddNode("director");
  b.AddEdge(user, dir, "recommend");
  Graph g = std::move(b).Build().ValueOrDie();

  QueryTemplate t(schema);
  QNodeId u1 = t.AddNode("user");
  QNodeId u2 = t.AddNode("user");
  QNodeId d = t.AddNode("director");
  t.SetOutputNode(d);
  t.AddEdge(u1, d, "recommend");
  t.AddEdge(u2, d, "recommend");
  VariableDomains domains = VariableDomains::Build(g, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, domains,
                                               Instantiation::MostRelaxed(t));

  SubgraphMatcher iso(g, MatchSemantics::kIsomorphism);
  SubgraphMatcher hom(g, MatchSemantics::kHomomorphism);
  EXPECT_TRUE(iso.MatchOutput(q).empty());
  EXPECT_EQ(hom.MatchOutput(q), NodeSet({dir}));
}

// Homomorphism match sets always contain the isomorphism match sets.
class HomomorphismSupersetTest : public testing::TestWithParam<int> {};

TEST_P(HomomorphismSupersetTest, HomomorphismIsSupersetOfIsomorphism) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 17);
  auto schema = std::make_shared<Schema>();
  GraphBuilder b(schema);
  const char* labels[] = {"a", "b"};
  const int n = 12;
  for (int i = 0; i < n; ++i) b.AddNode(labels[rng.NextBounded(2)]);
  for (int i = 0; i < 28; ++i) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    if (from != to) b.AddEdge(from, to, "e");
  }
  Graph g = std::move(b).Build().ValueOrDie();

  QueryTemplate t(schema);
  int qn = 3;
  for (int i = 0; i < qn; ++i) t.AddNode(labels[rng.NextBounded(2)]);
  t.SetOutputNode(0);
  for (int i = 1; i < qn; ++i) {
    QNodeId other = static_cast<QNodeId>(rng.NextBounded(i));
    if (rng.NextBernoulli(0.5)) {
      t.AddEdge(static_cast<QNodeId>(i), other, "e");
    } else {
      t.AddEdge(other, static_cast<QNodeId>(i), "e");
    }
  }
  VariableDomains domains = VariableDomains::Build(g, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, domains,
                                               Instantiation::MostRelaxed(t));

  SubgraphMatcher iso(g, MatchSemantics::kIsomorphism);
  SubgraphMatcher hom(g, MatchSemantics::kHomomorphism);
  NodeSet iso_matches = iso.MatchOutput(q);
  NodeSet hom_matches = hom.MatchOutput(q);
  EXPECT_TRUE(std::includes(hom_matches.begin(), hom_matches.end(),
                            iso_matches.begin(), iso_matches.end()))
      << "homomorphism answers must contain isomorphism answers";
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomomorphismSupersetTest, testing::Range(0, 12));

}  // namespace
}  // namespace fairsqg
