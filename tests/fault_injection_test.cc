// Fault-injection coverage: with -DFAIRSQG_FAULT_INJECTION=ON, arm the
// compiled-in fault sites and check the stack degrades exactly as the
// design promises — cache faults stay invisible in results, reserve-hint
// faults change nothing, and a stalled matcher still honours deadlines.
// On a default build the sites compile to `(false)` and every test here
// skips; the suite exists to be run by the fault-injection CI job.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/run_context.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/match_cache.h"
#include "core/verifier.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::InjectionEnabled()) {
      GTEST_SKIP() << "built without FAIRSQG_FAULT_INJECTION";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }

  static void ExpectSameResult(const QGenResult& a, const QGenResult& b,
                               const std::string& label) {
    EXPECT_EQ(a.stats.verified, b.stats.verified) << label;
    EXPECT_EQ(a.stats.feasible, b.stats.feasible) << label;
    ASSERT_EQ(a.pareto.size(), b.pareto.size()) << label;
    for (size_t i = 0; i < a.pareto.size(); ++i) {
      EXPECT_EQ(a.pareto[i]->inst, b.pareto[i]->inst) << label;
      EXPECT_EQ(a.pareto[i]->matches, b.pareto[i]->matches) << label;
      EXPECT_DOUBLE_EQ(a.pareto[i]->obj.diversity, b.pareto[i]->obj.diversity)
          << label;
      EXPECT_DOUBLE_EQ(a.pareto[i]->obj.coverage, b.pareto[i]->obj.coverage)
          << label;
    }
  }
};

const char* const kSites[] = {"matcher.step", "cache.lookup", "cache.insert",
                              "cache.reserve", "verifier.reserve"};

TEST_F(FaultInjectionTest, FaultPointsAreReached) {
  SmallScenario s;
  // Arm every site with a no-op spec: hits are counted, nothing fires.
  for (const char* site : kSites) fault::Arm(site, fault::FaultSpec{});
  QGenConfig config = s.Config(0.05);
  MatchSetCache::Options options;
  auto cache = MatchSetCache::Create(options).ValueOrDie();
  config.match_cache = cache.get();
  // BiQGen exercises all verify paths: the relaxed path is the only caller
  // of the verifier.reserve hints.
  ASSERT_TRUE(BiQGen::Run(config).ok());
  for (const char* site : kSites) {
    EXPECT_GT(fault::HitCount(site), 0u) << site;
  }
}

TEST_F(FaultInjectionTest, CacheFaultsAreInvisibleInResults) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult baseline = EnumQGen::Run(config).ValueOrDie();

  // Every cache fault mode must leave the archive byte-identical to the
  // cacheless baseline: a failed lookup is a miss, a failed insert is a
  // refused admission, a failed reserve is just a missing allocation hint.
  struct Mode {
    const char* site;
    fault::FaultSpec spec;
  };
  fault::FaultSpec fail;
  fail.action = fault::FaultSpec::Action::kFail;
  fault::FaultSpec flaky = fail;
  flaky.trigger_after = 3;   // Let a few through, then start failing...
  flaky.max_fires = 20;      // ...and recover after 20 firings.
  for (const Mode& mode : {Mode{"cache.lookup", fail},
                           Mode{"cache.insert", fail},
                           Mode{"cache.reserve", fail},
                           Mode{"cache.lookup", flaky},
                           Mode{"cache.insert", flaky}}) {
    fault::DisarmAll();
    fault::Arm(mode.site, mode.spec);
    MatchSetCache::Options options;
    auto cache = MatchSetCache::Create(options).ValueOrDie();
    QGenConfig faulty = s.Config(0.05);
    faulty.match_cache = cache.get();
    QGenResult r = EnumQGen::Run(faulty).ValueOrDie();
    ExpectSameResult(baseline, r, mode.site);
  }
}

TEST_F(FaultInjectionTest, LookupFailForcesMisses) {
  SmallScenario s;
  fault::FaultSpec fail;
  fail.action = fault::FaultSpec::Action::kFail;
  fault::Arm("cache.lookup", fail);
  MatchSetCache::Options options;
  auto cache = MatchSetCache::Create(options).ValueOrDie();
  QGenConfig config = s.Config(0.05);
  config.match_cache = cache.get();
  QGenResult r = EnumQGen::Run(config).ValueOrDie();
  EXPECT_EQ(r.stats.cache_hits, 0u);
  EXPECT_GT(r.stats.cache_misses, 0u);
}

TEST_F(FaultInjectionTest, ReserveFaultChangesNothing) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult baseline = BiQGen::Run(config).ValueOrDie();
  fault::FaultSpec fail;
  fail.action = fault::FaultSpec::Action::kFail;
  fault::Arm("verifier.reserve", fail);
  QGenResult r = BiQGen::Run(config).ValueOrDie();
  ExpectSameResult(baseline, r, "verifier.reserve");
}

TEST_F(FaultInjectionTest, StalledMatcherStillHonoursDeadline) {
  SmallScenario s;
  fault::FaultSpec stall;
  stall.action = fault::FaultSpec::Action::kStall;
  stall.stall_micros = 200;
  fault::Arm("matcher.step", stall);

  RunContext ctx;
  ctx.SetDeadlineAfterMillis(30);
  QGenConfig config = s.Config(0.05);
  config.run_context = &ctx;
  QGenResult r = EnumQGen::Run(config).ValueOrDie();
  // A 200us stall per backtracking step makes full verification take
  // minutes; the deadline must cut the run short long before that and the
  // partial archive must stay internally consistent.
  EXPECT_TRUE(r.stats.deadline_exceeded);
  EXPECT_GT(r.stats.aborted_matches + r.stats.verified, 0u);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates(r.pareto[i]->obj, r.pareto[j]->obj));
      }
    }
  }
  // Members that survived are fully verified: re-check under no faults.
  fault::DisarmAll();
  QGenConfig clean = s.Config(0.05);
  InstanceVerifier fresh(clean);
  for (const EvaluatedPtr& m : r.pareto) {
    EvaluatedPtr again = fresh.Verify(m->inst);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->matches, m->matches);
  }
}

TEST_F(FaultInjectionTest, InsertFailKeepsCacheEmpty) {
  SmallScenario s;
  fault::FaultSpec fail;
  fail.action = fault::FaultSpec::Action::kFail;
  fault::Arm("cache.insert", fail);
  MatchSetCache::Options options;
  auto cache = MatchSetCache::Create(options).ValueOrDie();
  QGenConfig config = s.Config(0.05);
  config.match_cache = cache.get();
  ASSERT_TRUE(EnumQGen::Run(config).ok());
  EXPECT_GT(fault::HitCount("cache.insert"), 0u);
  MatchSetCache::CacheStats stats = cache->GetStats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// The windowing knobs live in the registry itself, so they are testable
// directly (Hit is the macro's implementation hook) and independently of
// whether the production call sites are compiled in.
TEST(FaultRegistryTest, TriggerAfterAndMaxFiresWindowTheFault) {
  fault::DisarmAll();
  fault::FaultSpec windowed;
  windowed.action = fault::FaultSpec::Action::kFail;
  windowed.trigger_after = 5;
  windowed.max_fires = 2;
  fault::Arm("test.site", windowed);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(fault::Hit("test.site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, false, true, true,
                                      false, false, false, false}));
  EXPECT_EQ(fault::HitCount("test.site"), 10u);
  // Unarmed sites never fire and are not tracked.
  EXPECT_FALSE(fault::Hit("other.site"));
  EXPECT_EQ(fault::HitCount("other.site"), 0u);
  fault::DisarmAll();
  EXPECT_FALSE(fault::Hit("test.site"));
}

}  // namespace
}  // namespace fairsqg
