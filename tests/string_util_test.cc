#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(SplitStringTest, BasicAndEmptyFields) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitStringTest, TrailingSeparator) {
  auto parts = SplitString("x,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi there \t\n"), "hi there");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64(" 42 "), 42);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("7"), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5zz").ok());
  EXPECT_FALSE(ParseDouble("nope").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(JoinStringsTest, Basics) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(EditDistanceTest, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("horror", "romance"), EditDistance("romance", "horror"));
}

TEST(NormalizedEditDistanceTest, RangeAndEndpoints) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  double d = NormalizedEditDistance("kitten", "sitting");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

}  // namespace
}  // namespace fairsqg
