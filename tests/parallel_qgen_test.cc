#include "core/parallel_qgen.h"

#include <gtest/gtest.h>

#include "core/enum_qgen.h"
#include "core/enumerate.h"
#include "core/indicators.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

TEST(ParallelQGenTest, MatchesSequentialEnumQGenCoverage) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult seq = EnumQGen::Run(config).ValueOrDie();
  QGenResult par = ParallelQGen::Run(config, 4).ValueOrDie();

  EXPECT_EQ(par.stats.verified, seq.stats.verified);
  EXPECT_EQ(par.stats.feasible, seq.stats.feasible);

  // Both must ε-cover the full feasible space; the member sets may differ
  // (arrival order differs) but the quality guarantee is identical.
  InstanceVerifier verifier(config);
  GenStats stats;
  auto all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
  auto feasible = FeasibleOnly(all);
  for (const auto& result : {seq, par}) {
    for (const EvaluatedPtr& x : feasible) {
      bool covered = false;
      for (const EvaluatedPtr& m : result.pareto) {
        if (EpsilonDominates(m->obj, x->obj, config.epsilon + 1e-9)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST(ParallelQGenTest, DeterministicResultAcrossThreadCounts) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult one = ParallelQGen::Run(config, 1).ValueOrDie();
  QGenResult eight = ParallelQGen::Run(config, 8).ValueOrDie();
  // Instance coordinates are deterministic, so best objectives agree.
  Objectives b1 = MaxObjectives(one.pareto);
  Objectives b8 = MaxObjectives(eight.pareto);
  EXPECT_DOUBLE_EQ(b1.diversity, b8.diversity);
  EXPECT_DOUBLE_EQ(b1.coverage, b8.coverage);
}

TEST(ParallelQGenTest, MoreThreadsThanInstances) {
  SmallScenario s;
  QGenConfig config = s.Config(0.2);
  QGenResult r = ParallelQGen::Run(config, 1000).ValueOrDie();
  EXPECT_GT(r.pareto.size(), 0u);
  EXPECT_EQ(r.stats.verified,
            s.domains->InstanceSpaceSize(*s.tmpl));
}

TEST(ParallelQGenTest, DefaultThreadCount) {
  SmallScenario s;
  QGenConfig config = s.Config(0.2);
  QGenResult r = ParallelQGen::Run(config).ValueOrDie();
  EXPECT_GT(r.pareto.size(), 0u);
}

TEST(ParallelQGenTest, InvalidConfigRejected) {
  QGenConfig empty;
  EXPECT_FALSE(ParallelQGen::Run(empty, 2).ok());
}

}  // namespace
}  // namespace fairsqg
