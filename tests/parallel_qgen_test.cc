#include "core/parallel_qgen.h"

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/enumerate.h"
#include "core/indicators.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

/// True when every member of `covered` is ε-dominated by some member of
/// `covering` (the slack absorbs floating-point noise).
bool EpsilonCovers(const std::vector<EvaluatedPtr>& covering,
                   const std::vector<EvaluatedPtr>& covered, double epsilon) {
  for (const EvaluatedPtr& x : covered) {
    bool ok = false;
    for (const EvaluatedPtr& m : covering) {
      if (EpsilonDominates(m->obj, x->obj, epsilon + 1e-9)) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

TEST(ParallelQGenTest, MatchesSequentialEnumQGenCoverage) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult seq = EnumQGen::Run(config).ValueOrDie();
  QGenResult par = ParallelQGen::Run(config, 4).ValueOrDie();

  EXPECT_EQ(par.stats.verified, seq.stats.verified);
  EXPECT_EQ(par.stats.feasible, seq.stats.feasible);

  // Both must ε-cover the full feasible space; the member sets may differ
  // (arrival order differs) but the quality guarantee is identical.
  InstanceVerifier verifier(config);
  GenStats stats;
  auto all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
  auto feasible = FeasibleOnly(all);
  EXPECT_TRUE(EpsilonCovers(seq.pareto, feasible, config.epsilon));
  EXPECT_TRUE(EpsilonCovers(par.pareto, feasible, config.epsilon));
}

TEST(ParallelQGenTest, ReportsBothVerifyTimeAxes) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult r = ParallelQGen::Run(config, 4).ValueOrDie();
  ASSERT_EQ(r.stats.per_worker_verify_seconds.size(), 4u);
  double sum = 0, mx = 0;
  for (double w : r.stats.per_worker_verify_seconds) {
    sum += w;
    mx = std::max(mx, w);
  }
  // CPU axis sums the workers, wall axis is the per-worker max.
  EXPECT_DOUBLE_EQ(r.stats.verify_cpu_seconds, sum);
  EXPECT_DOUBLE_EQ(r.stats.verify_wall_seconds, mx);
  EXPECT_GE(r.stats.verify_cpu_seconds, r.stats.verify_wall_seconds);
  EXPECT_GT(r.stats.enqueued, 0u);
}

TEST(ParallelQGenTest, RespectsVerificationBudget) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  config.max_verifications = 10;
  QGenResult r = ParallelQGen::Run(config, 4).ValueOrDie();
  EXPECT_LE(r.stats.verified, 10u);
  EXPECT_EQ(r.stats.generated, 10u);
}

TEST(ParallelQGenTest, DeterministicResultAcrossThreadCounts) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult one = ParallelQGen::Run(config, 1).ValueOrDie();
  QGenResult eight = ParallelQGen::Run(config, 8).ValueOrDie();
  // Instance coordinates are deterministic, so best objectives agree.
  Objectives b1 = MaxObjectives(one.pareto);
  Objectives b8 = MaxObjectives(eight.pareto);
  EXPECT_DOUBLE_EQ(b1.diversity, b8.diversity);
  EXPECT_DOUBLE_EQ(b1.coverage, b8.coverage);
}

TEST(ParallelQGenTest, MoreThreadsThanInstances) {
  SmallScenario s;
  QGenConfig config = s.Config(0.2);
  QGenResult r = ParallelQGen::Run(config, 1000).ValueOrDie();
  EXPECT_GT(r.pareto.size(), 0u);
  EXPECT_EQ(r.stats.verified,
            s.domains->InstanceSpaceSize(*s.tmpl));
}

TEST(ParallelQGenTest, DefaultThreadCount) {
  SmallScenario s;
  QGenConfig config = s.Config(0.2);
  QGenResult r = ParallelQGen::Run(config).ValueOrDie();
  EXPECT_GT(r.pareto.size(), 0u);
}

TEST(ParallelQGenTest, InvalidConfigRejected) {
  QGenConfig empty;
  EXPECT_FALSE(ParallelQGen::Run(empty, 2).ok());
}

// --- Parallel Bi-QGen (coordinator + work-stealing verification pool) ---

TEST(ParallelBiQGenTest, ArchiveMutuallyEpsilonCoversSequential) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult seq = BiQGen::Run(config).ValueOrDie();
  QGenResult par = BiQGen::RunParallel(config, 4).ValueOrDie();
  ASSERT_GT(seq.pareto.size(), 0u);
  ASSERT_GT(par.pareto.size(), 0u);
  // Exploration order differs (batched vs stepwise), but both archives
  // ε-cover the full feasible space — so each must ε-cover the other.
  EXPECT_TRUE(EpsilonCovers(par.pareto, seq.pareto, config.epsilon));
  EXPECT_TRUE(EpsilonCovers(seq.pareto, par.pareto, config.epsilon));
}

TEST(ParallelBiQGenTest, EpsilonCoversFullFeasibleSpace) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult par = BiQGen::RunParallel(config, 4).ValueOrDie();
  InstanceVerifier verifier(config);
  GenStats stats;
  auto all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
  EXPECT_TRUE(EpsilonCovers(par.pareto, FeasibleOnly(all), config.epsilon));
}

TEST(ParallelBiQGenTest, DeterministicForFixedThreadCount) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  // Batches are collected and folded in coordinator order, so two runs at
  // the same thread count are bit-identical regardless of scheduling.
  QGenResult a = BiQGen::RunParallel(config, 4).ValueOrDie();
  QGenResult b = BiQGen::RunParallel(config, 4).ValueOrDie();
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i]->inst, b.pareto[i]->inst);
    EXPECT_DOUBLE_EQ(a.pareto[i]->obj.diversity, b.pareto[i]->obj.diversity);
    EXPECT_DOUBLE_EQ(a.pareto[i]->obj.coverage, b.pareto[i]->obj.coverage);
  }
  EXPECT_EQ(a.stats.verified, b.stats.verified);
  EXPECT_EQ(a.stats.feasible, b.stats.feasible);
}

TEST(ParallelBiQGenTest, SingleThreadFallsBackToSequential) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult seq = BiQGen::Run(config).ValueOrDie();
  QGenResult one = BiQGen::RunParallel(config, 1).ValueOrDie();
  ASSERT_EQ(one.pareto.size(), seq.pareto.size());
  for (size_t i = 0; i < seq.pareto.size(); ++i) {
    EXPECT_EQ(one.pareto[i]->inst, seq.pareto[i]->inst);
  }
  EXPECT_EQ(one.stats.verified, seq.stats.verified);
}

TEST(ParallelBiQGenTest, RespectsVerificationBudget) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  config.max_verifications = 7;
  QGenResult r = BiQGen::RunParallel(config, 4).ValueOrDie();
  EXPECT_LE(r.stats.verified, 7u);
}

TEST(ParallelBiQGenTest, ReportsParallelStats) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  QGenResult r = BiQGen::RunParallel(config, 4).ValueOrDie();
  EXPECT_GT(r.stats.enqueued, 0u);
  ASSERT_EQ(r.stats.per_worker_verify_seconds.size(), 4u);
  EXPECT_GE(r.stats.verify_cpu_seconds, r.stats.verify_wall_seconds);
  // Dispatched work is verified work in the batched explorer.
  EXPECT_EQ(r.stats.enqueued, r.stats.verified);
}

}  // namespace
}  // namespace fairsqg
