#include "workload/workload_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/verifier.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

TEST(WorkloadIoTest, RoundTripGeneratedWorkload) {
  SmallScenario s;
  QGenConfig config = s.Config(0.1);
  QGenResult result = BiQGen::Run(config).ValueOrDie();
  ASSERT_FALSE(result.pareto.empty());

  Workload w = MakeWorkload(*s.tmpl, result.pareto);
  std::ostringstream out;
  ASSERT_TRUE(WriteWorkloadText(w, out).ok());

  std::istringstream in(out.str());
  Result<Workload> r = ReadWorkloadText(in, s.schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << out.str();

  ASSERT_EQ(r->instances.size(), w.instances.size());
  for (size_t i = 0; i < w.instances.size(); ++i) {
    EXPECT_EQ(r->instances[i], w.instances[i]) << "instance " << i;
    EXPECT_EQ(r->quality[i].matches, w.quality[i].matches);
    EXPECT_NEAR(r->quality[i].diversity, w.quality[i].diversity,
                1e-4 * (1 + w.quality[i].diversity));
    EXPECT_NEAR(r->quality[i].coverage, w.quality[i].coverage, 1e-6);
  }
  EXPECT_EQ(r->tmpl.num_range_vars(), s.tmpl->num_range_vars());
}

TEST(WorkloadIoTest, ReplayedInstancesReproduceMatches) {
  SmallScenario s;
  QGenConfig config = s.Config(0.1);
  QGenResult result = BiQGen::Run(config).ValueOrDie();
  Workload w = MakeWorkload(*s.tmpl, result.pareto);
  std::ostringstream out;
  ASSERT_TRUE(WriteWorkloadText(w, out).ok());
  std::istringstream in(out.str());
  Workload replay = ReadWorkloadText(in, s.schema).ValueOrDie();

  // Re-verifying a replayed instance against the same graph reproduces the
  // recorded match count (the whole point of a benchmark workload).
  QGenConfig replay_config = config;
  replay_config.tmpl = &replay.tmpl;
  InstanceVerifier verifier(replay_config);
  for (size_t i = 0; i < replay.instances.size(); ++i) {
    EvaluatedPtr e = verifier.Verify(replay.instances[i]);
    EXPECT_EQ(e->matches.size(), replay.quality[i].matches) << "instance " << i;
  }
}

TEST(WorkloadIoTest, ParsesHandWrittenWorkload) {
  std::istringstream in(
      "template\n"
      "node u0 director\n"
      "node u1 user\n"
      "output u0\n"
      "edge u1 u0 recommend\n"
      "vedge u1 u0 coReview\n"
      "literal u1 yearsOfExp >= ?\n"
      "instance x0=2 e0=1 matches=10 delta=1.5 f=4\n"
      "instance x0=_ e0=0\n");
  Result<Workload> r = ReadWorkloadText(in, std::make_shared<Schema>());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->instances.size(), 2u);
  EXPECT_EQ(r->instances[0].range_binding(0), 2);
  EXPECT_EQ(r->instances[0].edge_binding(0), 1);
  EXPECT_TRUE(r->instances[1].is_wildcard(0));
  EXPECT_EQ(r->quality[0].matches, 10u);
  EXPECT_DOUBLE_EQ(r->quality[0].diversity, 1.5);
  EXPECT_DOUBLE_EQ(r->quality[0].coverage, 4.0);
}

TEST(WorkloadIoTest, RejectsBadTokens) {
  std::string header =
      "template\nnode u0 a\nliteral u0 p >= ?\n";
  for (const char* bad :
       {"instance x0\n", "instance x9=1\n", "instance e0=2\n",
        "instance what=3\n", "instance x0=zz\n"}) {
    std::istringstream in(header + bad);
    EXPECT_FALSE(ReadWorkloadText(in, std::make_shared<Schema>()).ok())
        << "should reject: " << bad;
  }
}

TEST(WorkloadIoTest, FileRoundTrip) {
  SmallScenario s;
  Workload w{*s.tmpl, {Instantiation::MostRelaxed(*s.tmpl)}, {{5, 1.0, 2.0}}};
  std::string path = testing::TempDir() + "/fairsqg_workload_io_test.wl";
  ASSERT_TRUE(WriteWorkloadFile(w, path).ok());
  Result<Workload> r = ReadWorkloadFile(path, s.schema);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->instances.size(), 1u);
  EXPECT_TRUE(
      ReadWorkloadFile("/nonexistent.wl", s.schema).status().IsIoError());
}

}  // namespace
}  // namespace fairsqg
