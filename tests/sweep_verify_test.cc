// Literal-sweep batch verification (DESIGN.md §12): with
// QGenConfig::use_sweep_verify the verifier derives a whole range-variable
// chain's match sets from one matcher pass and serves them like cache hits.
// The contract under test: archives are byte-identical with sweeping on or
// off — for every generator, with and without a match-set cache, and under
// randomized cancellation — and sweeping silently disables itself when a
// per-match step budget is configured.

#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "core/bi_qgen.h"
#include "core/enum_qgen.h"
#include "core/match_cache.h"
#include "core/parallel_qgen.h"
#include "core/rf_qgen.h"
#include "core/verifier.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

struct NamedRunner {
  const char* name;
  std::function<Result<QGenResult>(const QGenConfig&)> run;
};

std::vector<NamedRunner> SweepRunners() {
  return {
      {"EnumQGen", [](const QGenConfig& c) { return EnumQGen::Run(c); }},
      {"RfQGen", [](const QGenConfig& c) { return RfQGen::Run(c); }},
      {"BiQGen", [](const QGenConfig& c) { return BiQGen::Run(c); }},
      {"BiQGen/parallel",
       [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); }},
      {"ParallelQGen",
       [](const QGenConfig& c) { return ParallelQGen::Run(c, 4); }},
  };
}

void ExpectSameArchive(const QGenResult& off, const QGenResult& on,
                       const std::string& label) {
  ASSERT_EQ(off.pareto.size(), on.pareto.size()) << label;
  for (size_t i = 0; i < off.pareto.size(); ++i) {
    EXPECT_EQ(off.pareto[i]->inst, on.pareto[i]->inst) << label << " #" << i;
    EXPECT_EQ(off.pareto[i]->matches, on.pareto[i]->matches)
        << label << " #" << i;
    EXPECT_DOUBLE_EQ(off.pareto[i]->obj.diversity, on.pareto[i]->obj.diversity)
        << label << " #" << i;
    EXPECT_DOUBLE_EQ(off.pareto[i]->obj.coverage, on.pareto[i]->obj.coverage)
        << label << " #" << i;
    EXPECT_EQ(off.pareto[i]->feasible, on.pareto[i]->feasible)
        << label << " #" << i;
  }
}

std::unique_ptr<MatchSetCache> MakeCache() {
  MatchSetCache::Options options;
  options.capacity_bytes = 8u << 20;
  options.num_shards = 4;
  return MatchSetCache::Create(options).ValueOrDie();
}

TEST(SweepVerifyTest, ArchivesByteIdenticalAcrossGeneratorsAndCaches) {
  SmallScenario s;
  for (const NamedRunner& runner : SweepRunners()) {
    for (bool with_cache : {false, true}) {
      std::string label = std::string(runner.name) +
                          (with_cache ? " cache=on" : " cache=off");

      QGenConfig off = s.Config();
      std::unique_ptr<MatchSetCache> off_cache;
      if (with_cache) {
        off_cache = MakeCache();
        off.match_cache = off_cache.get();
      }
      QGenResult base = runner.run(off).ValueOrDie();

      QGenConfig on = s.Config();
      on.use_sweep_verify = true;
      std::unique_ptr<MatchSetCache> on_cache;
      if (with_cache) {
        on_cache = MakeCache();
        on.match_cache = on_cache.get();
      }
      QGenResult swept = runner.run(on).ValueOrDie();

      ExpectSameArchive(base, swept, label);
      EXPECT_EQ(base.stats.verified, swept.stats.verified) << label;
      EXPECT_EQ(base.stats.feasible, swept.stats.feasible) << label;
      EXPECT_EQ(base.stats.sweep_chains, 0u) << label;
      EXPECT_GT(swept.stats.sweep_chains, 0u) << label;
      EXPECT_GT(swept.stats.sweep_instances, 0u) << label;
    }
  }
}

TEST(SweepVerifyTest, RandomizedCancellationEquivalence) {
  SmallScenario s;
  // Fixed seed: cancellation points are arbitrary but reproducible.
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<uint64_t> pick(1, 60);
  for (const NamedRunner& runner : SweepRunners()) {
    for (int round = 0; round < 3; ++round) {
      uint64_t n = pick(rng);
      std::string label =
          std::string(runner.name) + " cancel@" + std::to_string(n);

      RunContext off_ctx;
      off_ctx.CancelAfterVerifications(n);
      QGenConfig off = s.Config();
      off.run_context = &off_ctx;
      QGenResult base = runner.run(off).ValueOrDie();

      RunContext on_ctx;
      on_ctx.CancelAfterVerifications(n);
      QGenConfig on = s.Config();
      on.use_sweep_verify = true;
      on.run_context = &on_ctx;
      QGenResult swept = runner.run(on).ValueOrDie();

      // Sweeping adds no RunContext poll sites, so the same cancellation
      // budget truncates both runs at the same instance and the degraded
      // archives stay identical.
      ExpectSameArchive(base, swept, label);
      EXPECT_EQ(base.stats.verified, swept.stats.verified) << label;
    }
  }
}

TEST(SweepVerifyTest, StepLimitDisablesSweeping) {
  SmallScenario s;
  RunContext on_ctx;
  on_ctx.set_match_step_limit(100000);  // Generous: no search aborts.
  QGenConfig on = s.Config();
  on.use_sweep_verify = true;
  on.run_context = &on_ctx;
  QGenResult swept = BiQGen::Run(on).ValueOrDie();
  // A per-match step budget would be consumed differently by a pooled
  // chain search, so sweeping turns itself off entirely.
  EXPECT_EQ(swept.stats.sweep_chains, 0u);
  EXPECT_EQ(swept.stats.sweep_instances, 0u);

  RunContext off_ctx;
  off_ctx.set_match_step_limit(100000);
  QGenConfig off = s.Config();
  off.run_context = &off_ctx;
  QGenResult base = BiQGen::Run(off).ValueOrDie();
  ExpectSameArchive(base, swept, "step-limit");
}

TEST(SweepVerifyTest, InactiveSweepNodeChainsAreServed) {
  // Variant template whose range literal sits on the node attached only by
  // the variable edge: with the edge unbound that node is inactive, so the
  // whole chain shares one match set (the literal constrains nothing) and
  // the sweep publishes it to every member from a single matcher search.
  SmallScenario s;
  QueryTemplate tmpl(s.schema);
  QNodeId dir = tmpl.AddNode("director");
  QNodeId u1 = tmpl.AddNode("user");
  QNodeId u2 = tmpl.AddNode("user");
  tmpl.SetOutputNode(dir);
  tmpl.AddRangeLiteral(u2, "yearsOfExp", CompareOp::kGe);  // x0, on u2.
  tmpl.AddEdge(u1, dir, "recommend");
  tmpl.AddVariableEdge(u2, dir, "recommend");  // e0 gates u2's activity.
  VariableDomains domains =
      VariableDomains::Build(s.graph, tmpl).ValueOrDie().Coarsened(5);

  QGenConfig off;
  off.graph = &s.graph;
  off.tmpl = &tmpl;
  off.domains = &domains;
  off.groups = s.groups.get();
  off.epsilon = 0.05;
  QGenResult base = EnumQGen::Run(off).ValueOrDie();

  QGenConfig on = off;
  on.use_sweep_verify = true;
  QGenResult swept = EnumQGen::Run(on).ValueOrDie();

  ExpectSameArchive(base, swept, "inactive-node");
  EXPECT_GT(swept.stats.sweep_chains, 0u);
}

TEST(SweepVerifyTest, CounterAccountingOnEnum) {
  SmallScenario s;
  QGenConfig on = s.Config();
  on.use_sweep_verify = true;
  QGenResult swept = EnumQGen::Run(on).ValueOrDie();

  // Enum's odometer varies x0 fastest from the wildcard, so every x0 chain
  // head triggers a sweep covering the full domain: instances per chain is
  // exactly |dom(x0)|, and nothing ever falls back without a deadline.
  const size_t chain_len = s.domains->size(0);
  ASSERT_GT(chain_len, 1u);
  EXPECT_GT(swept.stats.sweep_chains, 0u);
  EXPECT_EQ(swept.stats.sweep_instances, swept.stats.sweep_chains * chain_len);
  EXPECT_EQ(swept.stats.sweep_fallbacks, 0u);
  // Swept members are served without touching the match-set cache, so every
  // serve shows up as neither hit nor miss; the verified count still covers
  // the whole space.
  EXPECT_EQ(swept.stats.verified, s.domains->InstanceSpaceSize(*s.tmpl));
}

}  // namespace
}  // namespace fairsqg
