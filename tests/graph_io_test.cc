#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

Graph MakeGraph() {
  GraphBuilder b;
  NodeId m = b.AddNode("movie");
  NodeId d = b.AddNode("director");
  b.SetAttr(m, "rating", AttrValue(7.5));
  b.SetAttr(m, "year", AttrValue(int64_t{1999}));
  b.SetAttr(m, "genre", AttrValue(std::string("action")));
  b.AddEdge(d, m, "directed");
  return std::move(b).Build().ValueOrDie();
}

TEST(GraphIoTest, RoundTrip) {
  Graph g = MakeGraph();
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphText(g, out).ok());

  std::istringstream in(out.str());
  Result<Graph> r = ReadGraphText(in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = *r;

  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  AttrId rating = g2.schema().AttrIdOf("rating");
  AttrId year = g2.schema().AttrIdOf("year");
  AttrId genre = g2.schema().AttrIdOf("genre");
  ASSERT_NE(g2.GetAttr(0, rating), nullptr);
  EXPECT_TRUE(g2.GetAttr(0, rating)->is_double());
  EXPECT_DOUBLE_EQ(g2.GetAttr(0, rating)->as_double(), 7.5);
  ASSERT_NE(g2.GetAttr(0, year), nullptr);
  EXPECT_TRUE(g2.GetAttr(0, year)->is_int());
  EXPECT_EQ(g2.GetAttr(0, year)->as_int(), 1999);
  EXPECT_EQ(g2.GetAttr(0, genre)->as_string(), "action");
  LabelId directed = g2.schema().EdgeLabelId("directed");
  EXPECT_TRUE(g2.HasEdge(1, 0, directed));
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header\n"
      "\n"
      "v 0 user yearsOfExp=i:10\n"
      "# middle\n"
      "v 1 user\n"
      "e 0 1 knows\n");
  Result<Graph> r = ReadGraphText(in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), 2u);
  EXPECT_EQ(r->num_edges(), 1u);
}

TEST(GraphIoTest, RejectsNonDenseIds) {
  std::istringstream in("v 1 user\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, RejectsBadEdge) {
  std::istringstream in("v 0 user\ne 0 7 knows\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, RejectsMalformedAttr) {
  std::istringstream in("v 0 user exp:10\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
  std::istringstream in2("v 0 user exp=q:10\n");
  EXPECT_FALSE(ReadGraphText(in2).ok());
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::istringstream in("x 0 1\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, FileNotFound) {
  EXPECT_TRUE(ReadGraphFile("/nonexistent/path.g").status().IsIoError());
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = MakeGraph();
  std::string path = testing::TempDir() + "/fairsqg_io_test.g";
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  Result<Graph> r = ReadGraphFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), 2u);
}

}  // namespace
}  // namespace fairsqg
