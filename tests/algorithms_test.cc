#include <algorithm>

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/cbm.h"
#include "core/enum_qgen.h"
#include "core/enumerate.h"
#include "core/indicators.h"
#include "core/kungs.h"
#include "core/rf_qgen.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

/// Ground truth for one scenario: every instance of I(Q), verified.
struct GroundTruth {
  std::vector<EvaluatedPtr> all;
  std::vector<EvaluatedPtr> feasible;

  explicit GroundTruth(const QGenConfig& config) {
    InstanceVerifier verifier(config);
    GenStats stats;
    all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
    feasible = FeasibleOnly(all);
  }
};

/// Asserts `solution` is an ε-Pareto-style set of the feasible space:
/// feasible members and full ε-coverage.
void ExpectEpsilonCoverage(const std::vector<EvaluatedPtr>& solution,
                           const std::vector<EvaluatedPtr>& feasible,
                           double epsilon, const char* who) {
  ASSERT_FALSE(solution.empty()) << who;
  for (const EvaluatedPtr& m : solution) {
    EXPECT_TRUE(m->feasible) << who << " returned an infeasible instance";
  }
  for (const EvaluatedPtr& x : feasible) {
    bool covered = false;
    for (const EvaluatedPtr& m : solution) {
      if (EpsilonDominates(m->obj, x->obj, epsilon + 1e-9)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << who << " missed instance with delta="
                         << x->obj.diversity << " f=" << x->obj.coverage;
  }
}

TEST(KungsTest, ReturnsExactParetoSet) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  GroundTruth truth(config);
  QGenResult result = Kungs::Run(config).ValueOrDie();

  // Cross-check against a brute-force nested-loop Pareto computation.
  std::vector<EvaluatedPtr> expected;
  for (const EvaluatedPtr& a : truth.feasible) {
    bool dominated = false;
    for (const EvaluatedPtr& b : truth.feasible) {
      if (Dominates(b->obj, a->obj)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expected.push_back(a);
  }
  // Compare coordinate sets (Kungs dedupes equal coordinates).
  auto coord_set = [](const std::vector<EvaluatedPtr>& v) {
    std::vector<std::pair<double, double>> out;
    for (const auto& e : v) out.emplace_back(e->obj.diversity, e->obj.coverage);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  EXPECT_EQ(coord_set(result.pareto), coord_set(expected));
  EXPECT_GE(result.pareto.size(), 1u);

  // The exact Pareto set scores a perfect ε-indicator.
  auto ind = EpsilonIndicator(result.pareto, truth.feasible, config.epsilon);
  EXPECT_DOUBLE_EQ(ind.eps_m, 0.0);
  EXPECT_DOUBLE_EQ(ind.indicator, 1.0);
}

TEST(EnumQGenTest, ProducesEpsilonParetoSet) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  GroundTruth truth(config);
  QGenResult result = EnumQGen::Run(config).ValueOrDie();
  ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon, "EnumQGen");
  EXPECT_EQ(result.stats.verified, truth.all.size());
  EXPECT_EQ(result.stats.feasible, truth.feasible.size());
}

TEST(RfQGenTest, ProducesEpsilonParetoSetWithFewerVerifications) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  GroundTruth truth(config);
  QGenResult result = RfQGen::Run(config).ValueOrDie();
  ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon, "RfQGen");
  EXPECT_LE(result.stats.verified, truth.all.size())
      << "RfQGen must not verify more than the full space";
  EXPECT_GT(result.stats.verified, 0u);
}

TEST(RfQGenTest, OptimizationsPreserveResultQuality) {
  SmallScenario s;
  for (bool tmpl_ref : {true, false}) {
    for (bool inc : {true, false}) {
      for (bool subtree : {true, false}) {
        QGenConfig config = s.Config(0.05);
        config.use_template_refinement = tmpl_ref;
        config.use_incremental_verify = inc;
        config.use_subtree_pruning = subtree;
        GroundTruth truth(config);
        QGenResult result = RfQGen::Run(config).ValueOrDie();
        ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon,
                              "RfQGen(ablated)");
      }
    }
  }
}

TEST(BiQGenTest, ProducesEpsilonParetoSet) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  GroundTruth truth(config);
  QGenResult result = BiQGen::Run(config).ValueOrDie();
  ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon, "BiQGen");
  EXPECT_LE(result.stats.verified, truth.all.size());
}

TEST(BiQGenTest, SandwichPruningPreservesQuality) {
  SmallScenario s;
  for (bool sandwich : {true, false}) {
    QGenConfig config = s.Config(0.05);
    config.use_sandwich_pruning = sandwich;
    GroundTruth truth(config);
    QGenResult result = BiQGen::Run(config).ValueOrDie();
    ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon,
                          "BiQGen(sandwich toggle)");
  }
}

TEST(CbmTest, AnchorsAreNonDominatedAndIncludeExtremes) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  GroundTruth truth(config);
  QGenResult result = Cbm::Run(config, 8).ValueOrDie();
  ASSERT_FALSE(result.pareto.empty());
  Objectives best = MaxObjectives(truth.feasible);
  Objectives got = MaxObjectives(result.pareto);
  EXPECT_DOUBLE_EQ(got.diversity, best.diversity);
  EXPECT_DOUBLE_EQ(got.coverage, best.coverage);
  for (const EvaluatedPtr& a : result.pareto) {
    for (const EvaluatedPtr& b : result.pareto) {
      EXPECT_FALSE(Dominates(b->obj, a->obj))
          << "CBM result contains a dominated anchor";
    }
  }
}

TEST(AlgorithmsTest, SizeBoundHolds) {
  SmallScenario s;
  for (double eps : {0.05, 0.2, 0.5}) {
    QGenConfig config = s.Config(eps);
    InstanceVerifier verifier(config);
    double max_d = verifier.diversity().MaxDiversity();
    double max_f = verifier.coverage().MaxCoverage();
    double bound = std::log1p(max_d) / std::log1p(eps) +
                   std::log1p(max_f) / std::log1p(eps) + 2;
    for (auto run : {&EnumQGen::Run, &RfQGen::Run, &BiQGen::Run}) {
      QGenResult r = run(config).ValueOrDie();
      EXPECT_LE(static_cast<double>(r.pareto.size()), bound) << "eps=" << eps;
    }
  }
}

TEST(AlgorithmsTest, LargerEpsilonNeverEnlargesArchive) {
  SmallScenario s;
  QGenResult fine = RfQGen::Run(s.Config(0.02)).ValueOrDie();
  QGenResult coarse = RfQGen::Run(s.Config(0.8)).ValueOrDie();
  EXPECT_LE(coarse.pareto.size(), fine.pareto.size());
}

TEST(AlgorithmsTest, TraceRecordsMonotoneBestObjectives) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  config.record_trace = true;
  QGenResult result = BiQGen::Run(config).ValueOrDie();
  ASSERT_FALSE(result.trace.empty());
  // Best objectives are monotone up to one (1+ε) box factor: a same-box
  // replacement may lower the best raw value slightly while keeping the
  // box (and hence the ε-guarantee) intact.
  double slack = 1.0 + config.epsilon + 1e-9;
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].verified, result.trace[i - 1].verified);
    EXPECT_GE((1.0 + result.trace[i].best.diversity) * slack,
              1.0 + result.trace[i - 1].best.diversity);
    EXPECT_GE((1.0 + result.trace[i].best.coverage) * slack,
              1.0 + result.trace[i - 1].best.coverage);
  }
}

TEST(AlgorithmsTest, MaxVerificationsCapRespected) {
  SmallScenario s;
  QGenConfig config = s.Config(0.05);
  config.max_verifications = 5;
  for (auto run : {&EnumQGen::Run, &RfQGen::Run, &BiQGen::Run}) {
    QGenResult r = run(config).ValueOrDie();
    EXPECT_LE(r.stats.verified, 5u);
  }
}

TEST(AlgorithmsTest, InvalidConfigRejected) {
  QGenConfig empty;
  EXPECT_FALSE(EnumQGen::Run(empty).ok());
  EXPECT_FALSE(RfQGen::Run(empty).ok());
  EXPECT_FALSE(BiQGen::Run(empty).ok());
  EXPECT_FALSE(Kungs::Run(empty).ok());
  EXPECT_FALSE(Cbm::Run(empty).ok());
}

// Different seeds give different graphs; the ε-Pareto property must hold on
// all of them for all three approximate algorithms.
class AlgorithmSeedTest : public testing::TestWithParam<int> {};

TEST_P(AlgorithmSeedTest, EpsilonParetoPropertyAcrossSeeds) {
  SmallScenario s(static_cast<uint64_t>(GetParam()) * 31 + 7);
  QGenConfig config = s.Config(0.1);
  InstanceVerifier verifier(config);
  EvaluatedPtr root = verifier.Verify(Instantiation::MostRelaxed(*s.tmpl));
  if (!root->feasible) GTEST_SKIP() << "seed yields an infeasible scenario";
  GroundTruth truth(config);
  for (auto [name, run] :
       {std::pair{"Enum", &EnumQGen::Run}, std::pair{"Rf", &RfQGen::Run},
        std::pair{"Bi", &BiQGen::Run}}) {
    QGenResult result = run(config).ValueOrDie();
    ExpectEpsilonCoverage(result.pareto, truth.feasible, config.epsilon, name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmSeedTest, testing::Range(0, 8));

}  // namespace
}  // namespace fairsqg
