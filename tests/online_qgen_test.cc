#include "core/online_qgen.h"

#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "core/indicators.h"
#include "scenario_fixture.h"
#include "workload/instance_stream.h"

namespace fairsqg {
namespace {

TEST(OnlineQGenTest, SizeNeverExceedsK) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 4;
  online.window = 10;
  online.initial_epsilon = 0.05;
  OnlineQGen gen(config, online);
  InstanceStream stream(*s.tmpl, *s.domains, 99);
  Instantiation inst;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
    EXPECT_LE(gen.size(), online.k);
  }
  EXPECT_GT(gen.size(), 0u);
}

TEST(OnlineQGenTest, EpsilonOnlyGrows) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 3;
  online.initial_epsilon = 0.02;
  OnlineQGen gen(config, online);
  InstanceStream stream(*s.tmpl, *s.domains, 7);
  Instantiation inst;
  double prev = gen.epsilon();
  EXPECT_DOUBLE_EQ(prev, 0.02);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
    EXPECT_GE(gen.epsilon(), prev);
    prev = gen.epsilon();
  }
}

TEST(OnlineQGenTest, MembersAreFeasibleAndStreamed) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 5;
  OnlineQGen gen(config, online);
  InstanceStream stream(*s.tmpl, *s.domains, 3);
  Instantiation inst;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
  }
  for (const EvaluatedPtr& m : gen.Current()) {
    EXPECT_TRUE(m->feasible);
  }
  EXPECT_EQ(gen.stats().verified, 120u);
}

TEST(OnlineQGenTest, CoversSeenFeasibleInstancesWithCurrentEpsilon) {
  // Correctness claim of Section IV-C: at any time the maintained set is an
  // ε-Pareto set of the *seen* instances for the current (grown) ε.
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 6;
  online.window = 30;
  OnlineQGen gen(config, online);
  InstanceVerifier reference(config);
  InstanceStream stream(*s.tmpl, *s.domains, 17);
  std::vector<EvaluatedPtr> seen;
  Instantiation inst;
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
    EvaluatedPtr e = reference.Verify(inst);
    if (e->feasible) seen.push_back(e);
  }
  auto members = gen.Current();
  ASSERT_FALSE(members.empty());
  // The window can hold up to `window` not-yet-covered stragglers whose
  // re-insertion is pending; exclude instances newer than that horizon.
  double eps = gen.epsilon();
  size_t misses = 0;
  for (const EvaluatedPtr& x : seen) {
    bool covered = false;
    for (const EvaluatedPtr& m : members) {
      if (EpsilonDominates(m->obj, x->obj, eps + 1e-9)) {
        covered = true;
        break;
      }
    }
    if (!covered) ++misses;
  }
  // Uncovered stragglers live in the bounded window, plus a small slack
  // for nearest-neighbour replacements whose box merge is approximate.
  EXPECT_LE(misses, online.window + 2 * online.k);
}

TEST(OnlineQGenTest, DelayTimeReportedPositive) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineQGen gen(config, OnlineConfig{});
  InstanceStream stream(*s.tmpl, *s.domains, 5);
  Instantiation inst;
  ASSERT_TRUE(stream.Next(&inst));
  double delay = gen.Process(inst);
  EXPECT_GT(delay, 0.0);
  EXPECT_GT(gen.stats().total_seconds, 0.0);
}

TEST(OnlineQGenTest, SnapshotMatchesCurrent) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineQGen gen(config, OnlineConfig{});
  InstanceStream stream(*s.tmpl, *s.domains, 5);
  Instantiation inst;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
  }
  QGenResult snap = gen.Snapshot();
  EXPECT_EQ(snap.pareto.size(), gen.size());
  EXPECT_EQ(snap.stats.verified, 40u);
}

TEST(InstanceStreamTest, DedupExhaustsSpace) {
  SmallScenario s;
  InstanceStream stream(*s.tmpl, *s.domains, 11, /*dedup=*/true);
  size_t space = s.domains->InstanceSpaceSize(*s.tmpl);
  std::unordered_set<Instantiation, Instantiation::Hasher> seen;
  Instantiation inst;
  while (stream.Next(&inst)) {
    EXPECT_TRUE(seen.insert(inst).second) << "dedup stream repeated an instance";
  }
  EXPECT_EQ(seen.size(), space);
}

TEST(InstanceStreamTest, WithoutDedupStreamIsEndless) {
  SmallScenario s;
  InstanceStream stream(*s.tmpl, *s.domains, 11);
  Instantiation inst;
  size_t space = s.domains->InstanceSpaceSize(*s.tmpl);
  for (size_t i = 0; i < space + 50; ++i) {
    EXPECT_TRUE(stream.Next(&inst));
  }
  EXPECT_EQ(stream.emitted(), space + 50);
}

}  // namespace
}  // namespace fairsqg
