#include "core/multi_output.h"

#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

// Two movie query nodes connected through a shared studio; both movies
// are designated outputs.
struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;
  GroupSet groups;
  QNodeId m1, m2;

  Fixture()
      : graph(MakeGraph()),
        tmpl(schema),
        domains(MakeTemplate()),
        groups(MakeGroups()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    const char* genres[] = {"action", "romance", "action", "romance",
                            "action", "romance"};
    NodeId studio = b.AddNode("studio");
    b.SetAttr(studio, "size", AttrValue(int64_t{100}));
    for (int i = 0; i < 6; ++i) {
      NodeId m = b.AddNode("movie");
      b.SetAttr(m, "genre", AttrValue(std::string(genres[i])));
      b.SetAttr(m, "rating", AttrValue(static_cast<double>(4 + i)));
      b.AddEdge(m, studio, "producedBy");
    }
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    m1 = tmpl.AddNode("movie");
    QNodeId studio = tmpl.AddNode("studio");
    m2 = tmpl.AddNode("movie");
    tmpl.SetOutputNode(m1);
    tmpl.AddRangeLiteral(m1, "rating", CompareOp::kGe);  // x0
    tmpl.AddEdge(m1, studio, "producedBy");
    tmpl.AddEdge(m2, studio, "producedBy");
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }

  GroupSet MakeGroups() {
    LabelId movie = schema->NodeLabelId("movie");
    AttrId genre = schema->AttrIdOf("genre");
    return GroupSet::FromCategoricalAttr(graph, movie, genre, 2, 1).ValueOrDie();
  }

  QGenConfig Config() {
    QGenConfig config;
    config.graph = &graph;
    config.tmpl = &tmpl;
    config.domains = &domains;
    config.groups = &groups;
    config.epsilon = 0.1;
    return config;
  }
};

TEST(MultiOutputTest, UnionContainsSingleOutputMatches) {
  Fixture f;
  QGenConfig config = f.Config();
  InstanceVerifier single(config);
  MultiOutputVerifier multi =
      MultiOutputVerifier::Create(config, {f.m1, f.m2}).ValueOrDie();

  // The predicate on m1 (rating >= x0) filters m1's matches but m2 is
  // unconstrained, so the union is strictly larger for refined bindings.
  Instantiation refined({2}, {});
  EvaluatedPtr s = single.Verify(refined);
  EvaluatedPtr m = multi.Verify(refined);
  EXPECT_TRUE(std::includes(m->matches.begin(), m->matches.end(),
                            s->matches.begin(), s->matches.end()));
  EXPECT_GT(m->matches.size(), s->matches.size());
}

TEST(MultiOutputTest, UnionMonotoneUnderRefinement) {
  Fixture f;
  QGenConfig config = f.Config();
  MultiOutputVerifier multi =
      MultiOutputVerifier::Create(config, {f.m1, f.m2}).ValueOrDie();
  EvaluatedPtr relaxed = multi.Verify(Instantiation({kWildcardBinding}, {}));
  EvaluatedPtr refined = multi.Verify(Instantiation({3}, {}));
  EXPECT_TRUE(std::includes(relaxed->matches.begin(), relaxed->matches.end(),
                            refined->matches.begin(), refined->matches.end()));
  EXPECT_LE(refined->obj.diversity, relaxed->obj.diversity + 1e-9);
}

TEST(MultiOutputTest, SingleOutputReducesToInstanceVerifier) {
  Fixture f;
  QGenConfig config = f.Config();
  InstanceVerifier single(config);
  MultiOutputVerifier multi =
      MultiOutputVerifier::Create(config, {f.m1}).ValueOrDie();
  for (int32_t binding : {-1, 0, 2, 4}) {
    Instantiation inst({binding}, {});
    EvaluatedPtr a = single.Verify(inst);
    EvaluatedPtr b = multi.Verify(inst);
    EXPECT_EQ(a->matches, b->matches);
    EXPECT_NEAR(a->obj.diversity, b->obj.diversity, 1e-9);
    EXPECT_DOUBLE_EQ(a->obj.coverage, b->obj.coverage);
  }
}

TEST(MultiOutputTest, CreateValidatesInputs) {
  Fixture f;
  QGenConfig config = f.Config();
  EXPECT_TRUE(MultiOutputVerifier::Create(config, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MultiOutputVerifier::Create(config, {99})
                  .status()
                  .IsInvalidArgument());
  // The studio node (index 1) has a different label.
  EXPECT_TRUE(MultiOutputVerifier::Create(config, {f.m1, 1})
                  .status()
                  .IsInvalidArgument());
  QGenConfig bad;
  EXPECT_FALSE(MultiOutputVerifier::Create(bad, {0}).ok());
}

TEST(MultiOutputTest, EnumQGenProducesEpsilonParetoSet) {
  Fixture f;
  QGenConfig config = f.Config();
  QGenResult result =
      MultiOutputEnumQGen(config, {f.m1, f.m2}).ValueOrDie();
  ASSERT_FALSE(result.pareto.empty());

  // Ground truth under union semantics by direct sweep.
  MultiOutputVerifier verifier =
      MultiOutputVerifier::Create(config, {f.m1, f.m2}).ValueOrDie();
  InstantiationEnumerator it(*config.tmpl, *config.domains);
  Instantiation inst;
  while (it.Next(&inst)) {
    EvaluatedPtr e = verifier.Verify(inst);
    if (!e->feasible) continue;
    bool covered = false;
    for (const EvaluatedPtr& m : result.pareto) {
      if (EpsilonDominates(m->obj, e->obj, config.epsilon + 1e-9)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

}  // namespace
}  // namespace fairsqg
