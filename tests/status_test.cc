#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace fairsqg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_EQ(a, b);
  Status c;
  c = a;
  EXPECT_TRUE(c.IsNotFound());
  EXPECT_EQ(c.message(), "gone");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  FAIRSQG_RETURN_NOT_OK(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = HalfOf(10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = HalfOf(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

Result<int> QuarterOf(int x) {
  FAIRSQG_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = QuarterOf(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 2);
  EXPECT_FALSE(QuarterOf(6).ok());
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace fairsqg
