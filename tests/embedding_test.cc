#include <set>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "matching/subgraph_matcher.h"

namespace fairsqg {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  // Two users (0, 1) each recommend director 2; user 0 also recommends
  // director 3.
  Fixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    b.AddNode("user");
    b.AddNode("user");
    b.AddNode("director");
    b.AddNode("director");
    b.AddEdge(0, 2, "recommend");
    b.AddEdge(1, 2, "recommend");
    b.AddEdge(0, 3, "recommend");
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    QNodeId u = tmpl.AddNode("user");
    QNodeId d = tmpl.AddNode("director");
    tmpl.SetOutputNode(d);
    tmpl.AddEdge(u, d, "recommend");
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }

  QueryInstance Instance() {
    return QueryInstance::Materialize(tmpl, domains,
                                      Instantiation::MostRelaxed(tmpl));
  }
};

TEST(EmbeddingTest, EnumeratesAllEmbeddings) {
  Fixture f;
  QueryInstance q = f.Instance();
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  std::set<std::pair<NodeId, NodeId>> seen;  // (user, director).
  size_t count = m.EnumerateEmbeddings(q, cands, [&](const auto& a) {
    seen.emplace(a[0], a[1]);
    return true;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(seen, (std::set<std::pair<NodeId, NodeId>>{{0, 2}, {1, 2}, {0, 3}}));
}

TEST(EmbeddingTest, VisitorCanStopEarly) {
  Fixture f;
  QueryInstance q = f.Instance();
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  size_t visited = 0;
  size_t count = m.EnumerateEmbeddings(q, cands, [&](const auto&) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(visited, 2u);
}

TEST(EmbeddingTest, LimitStopsEnumeration) {
  Fixture f;
  QueryInstance q = f.Instance();
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  size_t count =
      m.EnumerateEmbeddings(q, cands, [](const auto&) { return true; }, 1);
  EXPECT_EQ(count, 1u);
}

TEST(EmbeddingTest, SingleNodeQueryEmitsCandidates) {
  Fixture f;
  QueryTemplate t(f.schema);
  t.AddNode("director");
  VariableDomains d = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  std::set<NodeId> seen;
  size_t count = m.EnumerateEmbeddings(q, cands, [&](const auto& a) {
    seen.insert(a[0]);
    return true;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(seen, (std::set<NodeId>{2, 3}));
}

TEST(EmbeddingTest, InactiveNodesAreInvalidInAssignment) {
  Fixture f;
  // Add an optional third node; with its edge off, it is inactive.
  QueryTemplate t(f.schema);
  QNodeId u = t.AddNode("user");
  QNodeId d = t.AddNode("director");
  QNodeId extra = t.AddNode("user");
  t.SetOutputNode(d);
  t.AddEdge(u, d, "recommend");
  t.AddVariableEdge(extra, d, "recommend");
  VariableDomains dom = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q =
      QueryInstance::Materialize(t, dom, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  m.EnumerateEmbeddings(q, cands, [&](const auto& a) {
    EXPECT_NE(a[u], kInvalidNode);
    EXPECT_NE(a[d], kInvalidNode);
    EXPECT_EQ(a[extra], kInvalidNode);  // Outside u_o's component.
    return true;
  });
}

TEST(EmbeddingTest, CountConsistentWithMatchOutput) {
  Fixture f;
  QueryInstance q = f.Instance();
  SubgraphMatcher m(f.graph);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  std::set<NodeId> outputs;
  m.EnumerateEmbeddings(q, cands, [&](const auto& a) {
    outputs.insert(a[q.output_node()]);
    return true;
  });
  NodeSet match_set = m.MatchOutput(q, cands);
  EXPECT_EQ(outputs, std::set<NodeId>(match_set.begin(), match_set.end()));
}

}  // namespace
}  // namespace fairsqg
