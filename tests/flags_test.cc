#include "common/flags.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

FlagParser MakeParser() {
  FlagParser p;
  p.DefineInt64("count", 10, "a count");
  p.DefineDouble("eps", 0.01, "epsilon");
  p.DefineString("dataset", "dbp", "dataset name");
  p.DefineBool("verbose", false, "chatty output");
  return p;
}

TEST(FlagParserTest, DefaultsWithoutArgs) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.Parse(1, argv).ok());
  EXPECT_EQ(p.GetInt64("count"), 10);
  EXPECT_DOUBLE_EQ(p.GetDouble("eps"), 0.01);
  EXPECT_EQ(p.GetString("dataset"), "dbp");
  EXPECT_FALSE(p.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count=42", "--eps=0.5", "--dataset=lki",
                        "--verbose=true"};
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_EQ(p.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("eps"), 0.5);
  EXPECT_EQ(p.GetString("dataset"), "lki");
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count", "7", "--dataset", "cite"};
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_EQ(p.GetInt64("count"), 7);
  EXPECT_EQ(p.GetString("dataset"), "cite");
}

TEST(FlagParserTest, BareBoolFlag) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArgsCollected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "input.g", "--count=3", "out.g"};
  ASSERT_TRUE(p.Parse(4, argv).ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.g");
  EXPECT_EQ(p.positional()[1], "out.g");
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_TRUE(p.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagParserTest, BadValueRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
  FlagParser q = MakeParser();
  const char* argv2[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(q.Parse(2, argv2).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagParserTest, HelpListsAllFlags) {
  FlagParser p = MakeParser();
  std::string help = p.HelpString();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--eps"), std::string::npos);
  EXPECT_NE(help.find("--dataset"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace fairsqg
