#include "core/pareto_archive.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/concurrent_archive.h"

namespace fairsqg {
namespace {

EvaluatedPtr MakePoint(double diversity, double coverage) {
  auto e = std::make_shared<EvaluatedInstance>();
  e->obj = {diversity, coverage};
  e->feasible = true;
  return e;
}

TEST(ParetoArchiveTest, FirstInstanceAddsNewBox) {
  ParetoArchive archive(0.1);
  EXPECT_EQ(archive.Update(MakePoint(1, 1)), UpdateOutcome::kAddedNewBox);
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchiveTest, DominatedBoxRejected) {
  ParetoArchive archive(0.1);
  archive.Update(MakePoint(10, 10));
  EXPECT_EQ(archive.Update(MakePoint(1, 1)), UpdateOutcome::kRejectedDominated);
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchiveTest, DominatingBoxEvictsAll) {
  ParetoArchive archive(0.1);
  archive.Update(MakePoint(1, 8));
  archive.Update(MakePoint(8, 1));
  ASSERT_EQ(archive.size(), 2u);
  EXPECT_EQ(archive.Update(MakePoint(20, 20)), UpdateOutcome::kReplacedBoxes);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_DOUBLE_EQ(archive.Entries()[0]->obj.diversity, 20);
}

TEST(ParetoArchiveTest, SameBoxKeepsDominant) {
  ParetoArchive archive(0.5);  // Coarse boxes.
  EvaluatedPtr weak = MakePoint(1.00, 1.00);
  EvaluatedPtr strong = MakePoint(1.05, 1.05);  // Same box, dominates weak.
  ASSERT_EQ(BoxOf(weak->obj, 0.5).diversity, BoxOf(strong->obj, 0.5).diversity);
  archive.Update(weak);
  EXPECT_EQ(archive.Update(strong), UpdateOutcome::kReplacedInstance);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_DOUBLE_EQ(archive.Entries()[0]->obj.diversity, 1.05);
  // Re-offering the weaker one is rejected within the same box.
  EXPECT_EQ(archive.Update(weak), UpdateOutcome::kRejectedSameBox);
}

TEST(ParetoArchiveTest, SameBoxIncomparableKeepsIncumbent) {
  ParetoArchive archive(0.5);
  EvaluatedPtr first = MakePoint(1.05, 1.00);
  EvaluatedPtr second = MakePoint(1.00, 1.05);  // Same box, incomparable.
  archive.Update(first);
  EXPECT_EQ(archive.Update(second), UpdateOutcome::kRejectedSameBox);
  EXPECT_DOUBLE_EQ(archive.Entries()[0]->obj.diversity, 1.05);
}

TEST(ParetoArchiveTest, IncomparableBoxesCoexist) {
  ParetoArchive archive(0.1);
  archive.Update(MakePoint(10, 1));
  EXPECT_EQ(archive.Update(MakePoint(1, 10)), UpdateOutcome::kAddedNewBox);
  EXPECT_EQ(archive.size(), 2u);
}

TEST(ParetoArchiveTest, ClassifyMatchesUpdateWithoutMutating) {
  ParetoArchive archive(0.1);
  archive.Update(MakePoint(5, 5));
  EvaluatedPtr q = MakePoint(1, 1);
  EXPECT_EQ(archive.Classify(*q), UpdateOutcome::kRejectedDominated);
  EXPECT_EQ(archive.size(), 1u);
  EvaluatedPtr big = MakePoint(50, 50);
  EXPECT_EQ(archive.Classify(*big), UpdateOutcome::kReplacedBoxes);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_DOUBLE_EQ(archive.Entries()[0]->obj.diversity, 5);
}

TEST(ParetoArchiveTest, SortedEntriesByDiversityDesc) {
  ParetoArchive archive(0.01);
  archive.Update(MakePoint(1, 10));
  archive.Update(MakePoint(10, 1));
  archive.Update(MakePoint(5, 5));
  auto sorted = archive.SortedEntries();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0]->obj.diversity, 10);
  EXPECT_DOUBLE_EQ(sorted[2]->obj.diversity, 1);
}

TEST(ParetoArchiveTest, RemoveAndBestObjectives) {
  ParetoArchive archive(0.01);
  EvaluatedPtr a = MakePoint(1, 10);
  EvaluatedPtr b = MakePoint(10, 1);
  archive.Update(a);
  archive.Update(b);
  Objectives best = archive.BestObjectives();
  EXPECT_DOUBLE_EQ(best.diversity, 10);
  EXPECT_DOUBLE_EQ(best.coverage, 10);
  archive.Remove(a);
  EXPECT_EQ(archive.size(), 1u);
  archive.Remove(a);  // Idempotent.
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchiveTest, SetEpsilonMergesBoxes) {
  ParetoArchive archive(0.01);
  // A staircase of near-equal points: fine boxes keep many, coarse few.
  for (int i = 0; i < 20; ++i) {
    archive.Update(MakePoint(1.0 + 0.05 * i, 2.0 - 0.05 * i));
  }
  size_t fine = archive.size();
  archive.SetEpsilon(1.0);
  EXPECT_LT(archive.size(), fine);
  EXPECT_DOUBLE_EQ(archive.epsilon(), 1.0);
}

// ---------------------------------------------------------------------------
// Property suite: the archive's provable invariants under random streams.
// ---------------------------------------------------------------------------

class ArchivePropertyTest : public testing::TestWithParam<int> {};

TEST_P(ArchivePropertyTest, CoverageAntichainAndSizeBound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  double eps = 0.05 + 0.3 * rng.NextDouble();
  double max_d = 30.0;
  double max_f = 20.0;
  ParetoArchive archive(eps);
  std::vector<EvaluatedPtr> seen;
  for (int i = 0; i < 400; ++i) {
    EvaluatedPtr p = MakePoint(rng.NextDouble() * max_d, rng.NextDouble() * max_f);
    seen.push_back(p);
    archive.Update(p);

    // Invariant 1: every point ever offered is ε-dominated by some member.
    if (i % 20 == 0 || i == 399) {
      auto members = archive.Entries();
      for (const EvaluatedPtr& x : seen) {
        bool covered = false;
        for (const EvaluatedPtr& m : members) {
          if (EpsilonDominates(m->obj, x->obj, eps + 1e-9)) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "uncovered point after " << i << " updates";
      }
      // Invariant 2: members form an antichain of boxes (one per box, no
      // box dominance between members).
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = 0; b < members.size(); ++b) {
          if (a == b) continue;
          BoxCoord ba = BoxOf(members[a]->obj, eps);
          BoxCoord bb = BoxOf(members[b]->obj, eps);
          EXPECT_FALSE(BoxDominatesOrEqual(ba, bb))
              << "archive members must occupy incomparable boxes";
        }
      }
    }
  }
  // Invariant 3: size bound from Theorem 2 — at most one member per
  // diversity box index along the antichain.
  double bound = std::log1p(max_d) / std::log1p(eps) + 1;
  EXPECT_LE(static_cast<double>(archive.size()), bound)
      << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchivePropertyTest, testing::Range(0, 12));

TEST(ConcurrentParetoArchiveTest, MergedCoversEveryShardedUpdate) {
  constexpr double kEps = 0.1;
  constexpr size_t kShards = 4;
  ConcurrentParetoArchive archive(kEps, kShards);
  ASSERT_EQ(archive.num_shards(), kShards);

  // Concurrent thread-private updates (the intended usage pattern; also
  // what TSan scrutinizes under -DFAIRSQG_SANITIZE=thread).
  std::vector<std::vector<EvaluatedPtr>> offered(kShards);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kShards; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(7 * (w + 1));
      for (int i = 0; i < 200; ++i) {
        EvaluatedPtr p =
            MakePoint(rng.NextDouble() * 50.0, rng.NextDouble() * 50.0);
        offered[w].push_back(p);
        archive.shard(w).Update(p);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The ε-box merge must box-dominate (hence ε-dominate) every instance
  // any shard was ever offered — the transitivity argument of DESIGN.md.
  ParetoArchive merged = archive.Merged();
  for (const std::vector<EvaluatedPtr>& shard_offered : offered) {
    for (const EvaluatedPtr& x : shard_offered) {
      BoxCoord bx = BoxOf(x->obj, kEps);
      bool covered = false;
      for (const ParetoArchive::Entry& e : merged.entries()) {
        if (BoxDominatesOrEqual(e.box, bx)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST(ConcurrentParetoArchiveTest, EntriesViewMatchesAllocatingAccessor) {
  ParetoArchive archive(0.1);
  archive.Update(MakePoint(1, 8));
  archive.Update(MakePoint(8, 1));
  ASSERT_EQ(archive.entries().size(), archive.Entries().size());
  for (const ParetoArchive::Entry& e : archive.entries()) {
    EXPECT_EQ(e.box, BoxOf(e.instance->obj, archive.epsilon()));
  }
}

}  // namespace
}  // namespace fairsqg
