#include "graph/attr_value.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(AttrValueTest, TypePredicates) {
  EXPECT_TRUE(AttrValue(int64_t{5}).is_int());
  EXPECT_TRUE(AttrValue(int64_t{5}).is_numeric());
  EXPECT_TRUE(AttrValue(2.5).is_double());
  EXPECT_TRUE(AttrValue(std::string("x")).is_string());
  EXPECT_FALSE(AttrValue(std::string("x")).is_numeric());
}

TEST(AttrValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(AttrValue(int64_t{7}).ToNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(AttrValue(2.5).ToNumeric(), 2.5);
  EXPECT_DOUBLE_EQ(AttrValue(std::string("x")).ToNumeric(), 0.0);
}

TEST(AttrValueTest, ToString) {
  EXPECT_EQ(AttrValue(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(AttrValue(std::string("drama")).ToString(), "drama");
  EXPECT_EQ(AttrValue(2.5).ToString(), "2.5");
}

TEST(AttrValueTest, NumericComparisonAllOps) {
  AttrValue five(int64_t{5});
  AttrValue three(int64_t{3});
  EXPECT_TRUE(five.Compare(CompareOp::kGt, three));
  EXPECT_TRUE(five.Compare(CompareOp::kGe, three));
  EXPECT_FALSE(five.Compare(CompareOp::kEq, three));
  EXPECT_FALSE(five.Compare(CompareOp::kLe, three));
  EXPECT_FALSE(five.Compare(CompareOp::kLt, three));
  EXPECT_TRUE(five.Compare(CompareOp::kEq, AttrValue(int64_t{5})));
  EXPECT_TRUE(five.Compare(CompareOp::kGe, AttrValue(int64_t{5})));
  EXPECT_TRUE(five.Compare(CompareOp::kLe, AttrValue(int64_t{5})));
}

TEST(AttrValueTest, MixedIntDoubleComparison) {
  EXPECT_TRUE(AttrValue(int64_t{5}).Compare(CompareOp::kGt, AttrValue(4.5)));
  EXPECT_TRUE(AttrValue(4.5).Compare(CompareOp::kLt, AttrValue(int64_t{5})));
  EXPECT_TRUE(AttrValue(5.0).Compare(CompareOp::kEq, AttrValue(int64_t{5})));
}

TEST(AttrValueTest, StringComparison) {
  AttrValue a(std::string("action"));
  AttrValue r(std::string("romance"));
  EXPECT_TRUE(a.Compare(CompareOp::kLt, r));
  EXPECT_TRUE(r.Compare(CompareOp::kGt, a));
  EXPECT_TRUE(a.Compare(CompareOp::kEq, AttrValue(std::string("action"))));
}

TEST(AttrValueTest, MixedStringNumericNeverMatches) {
  AttrValue s(std::string("5"));
  AttrValue n(int64_t{5});
  for (CompareOp op : {CompareOp::kGt, CompareOp::kGe, CompareOp::kEq,
                       CompareOp::kLe, CompareOp::kLt}) {
    EXPECT_FALSE(s.Compare(op, n));
    EXPECT_FALSE(n.Compare(op, s));
  }
}

TEST(AttrValueTest, TotalOrderNumericsBeforeStrings) {
  AttrValue n(int64_t{1000});
  AttrValue s(std::string("a"));
  EXPECT_TRUE(n < s);
  EXPECT_FALSE(s < n);
}

TEST(AttrValueTest, EqualityAcrossNumericTypes) {
  EXPECT_EQ(AttrValue(int64_t{5}), AttrValue(5.0));
  EXPECT_NE(AttrValue(int64_t{5}), AttrValue(std::string("5")));
}

TEST(AttrValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(AttrValue(int64_t{5}).Hash(), AttrValue(5.0).Hash());
  EXPECT_EQ(AttrValue(std::string("x")).Hash(), AttrValue(std::string("x")).Hash());
  EXPECT_NE(AttrValue(int64_t{5}).Hash(), AttrValue(int64_t{6}).Hash());
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGe), ">=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLt), "<");
}

}  // namespace
}  // namespace fairsqg
