#ifndef FAIRSQG_TESTS_SCENARIO_FIXTURE_H_
#define FAIRSQG_TESTS_SCENARIO_FIXTURE_H_

#include <memory>

#include "core/config.h"
#include "core/groups.h"
#include "matching/subgraph_matcher.h"
#include "query/domains.h"
#include "workload/social_net_generator.h"

namespace fairsqg {

/// A compact talent-search scenario over a tiny synthetic social network,
/// sized so that full enumeration stays under a second: the Fig.-1
/// template (director recommended by an experienced user working at a
/// sizable org, optionally recommended by a second user) with two range
/// variables, one edge variable, and gender groups over directors.
struct SmallScenario {
  std::shared_ptr<Schema> schema;
  Graph graph;
  std::unique_ptr<QueryTemplate> tmpl;
  std::unique_ptr<VariableDomains> domains;
  std::unique_ptr<GroupSet> groups;

  explicit SmallScenario(uint64_t seed = 42, size_t coverage_per_group = 2)
      : schema(std::make_shared<Schema>()), graph(MakeGraph(seed, schema)) {
    tmpl = std::make_unique<QueryTemplate>(schema);
    QNodeId dir = tmpl->AddNode("director");
    QNodeId u1 = tmpl->AddNode("user");
    QNodeId u2 = tmpl->AddNode("user");
    QNodeId org = tmpl->AddNode("org");
    tmpl->SetOutputNode(dir);
    tmpl->AddRangeLiteral(u1, "yearsOfExp", CompareOp::kGe);   // x0
    tmpl->AddRangeLiteral(org, "employees", CompareOp::kGe);   // x1
    tmpl->AddEdge(u1, dir, "recommend");
    tmpl->AddEdge(u1, org, "worksAt");
    tmpl->AddVariableEdge(u2, dir, "recommend");               // e0
    VariableDomains full = VariableDomains::Build(graph, *tmpl).ValueOrDie();
    domains = std::make_unique<VariableDomains>(full.Coarsened(5));

    LabelId director = schema->NodeLabelId("director");
    AttrId gender = schema->AttrIdOf("gender");
    groups = std::make_unique<GroupSet>(
        GroupSet::FromCategoricalAttr(graph, director, gender, 2,
                                      coverage_per_group)
            .ValueOrDie());
  }

  static Graph MakeGraph(uint64_t seed, std::shared_ptr<Schema> schema) {
    SocialNetParams params;
    params.num_users = 220;
    params.num_directors = 40;
    params.num_orgs = 15;
    params.seed = seed;
    return GenerateSocialNetwork(params, std::move(schema)).ValueOrDie();
  }

  QGenConfig Config(double epsilon = 0.05) const {
    QGenConfig config;
    config.graph = &graph;
    config.tmpl = tmpl.get();
    config.domains = domains.get();
    config.groups = groups.get();
    config.epsilon = epsilon;
    return config;
  }
};

}  // namespace fairsqg

#endif  // FAIRSQG_TESTS_SCENARIO_FIXTURE_H_
