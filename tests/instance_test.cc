#include "query/instance.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  // Template: u0(user) -[recommend]-> u1(director=u_o) <-[xe0: recommend]- u2(user),
  //           u2 -[xe1: worksAt]-> u3(org); range var x0 on u0.yearsOfExp.
  Fixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    NodeId u = b.AddNode("user");
    b.SetAttr(u, "yearsOfExp", AttrValue(int64_t{10}));
    NodeId d = b.AddNode("director");
    NodeId u2 = b.AddNode("user");
    b.SetAttr(u2, "yearsOfExp", AttrValue(int64_t{4}));
    NodeId org = b.AddNode("org");
    b.AddEdge(u, d, "recommend");
    b.AddEdge(u2, d, "recommend");
    b.AddEdge(u2, org, "worksAt");
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    QNodeId u0 = tmpl.AddNode("user");
    QNodeId u1 = tmpl.AddNode("director");
    QNodeId u2 = tmpl.AddNode("user");
    QNodeId u3 = tmpl.AddNode("org");
    tmpl.SetOutputNode(u1);
    tmpl.AddRangeLiteral(u0, "yearsOfExp", CompareOp::kGe);  // x0
    tmpl.AddEdge(u0, u1, "recommend");
    tmpl.AddVariableEdge(u2, u1, "recommend");  // e0
    tmpl.AddVariableEdge(u2, u3, "worksAt");    // e1
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }
};

TEST(QueryInstanceTest, AllEdgesOnKeepsAllNodes) {
  Fixture f;
  Instantiation i({0}, {1, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  EXPECT_EQ(q.active_nodes().size(), 4u);
  EXPECT_EQ(q.active_edges().size(), 3u);
  EXPECT_EQ(q.output_node(), 1u);
}

TEST(QueryInstanceTest, DroppingEdgeVarPrunesComponent) {
  Fixture f;
  // e0 off: u2 and u3 disconnect from the output component.
  Instantiation i({0}, {0, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  EXPECT_EQ(q.active_nodes(), (std::vector<QNodeId>{0, 1}));
  EXPECT_EQ(q.active_edges().size(), 1u);
  EXPECT_FALSE(q.is_active(2));
  EXPECT_FALSE(q.is_active(3));
}

TEST(QueryInstanceTest, EdgeInsideDetachedComponentDropped) {
  Fixture f;
  // e0 off but e1 on: the u2-u3 edge exists but lies outside u_o's
  // component, so the instance keeps only the u0->u1 edge.
  Instantiation i({0}, {0, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  ASSERT_EQ(q.active_edges().size(), 1u);
  EXPECT_EQ(q.active_edges()[0].from, 0u);
  EXPECT_EQ(q.active_edges()[0].to, 1u);
}

TEST(QueryInstanceTest, WildcardDropsLiteral) {
  Fixture f;
  Instantiation i({kWildcardBinding}, {1, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  EXPECT_TRUE(q.literals_of(0).empty());
}

TEST(QueryInstanceTest, BoundLiteralResolvesDomainValue) {
  Fixture f;
  // Domain of x0 ascending: {4, 10}; index 1 -> 10.
  Instantiation i({1}, {1, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  ASSERT_EQ(q.literals_of(0).size(), 1u);
  const BoundLiteral& l = q.literals_of(0)[0];
  EXPECT_EQ(l.op, CompareOp::kGe);
  EXPECT_EQ(l.value.as_int(), 10);
}

TEST(QueryInstanceTest, FixedLiteralAlwaysPresent) {
  auto schema = std::make_shared<Schema>();
  GraphBuilder b(schema);
  NodeId v = b.AddNode("movie");
  b.SetAttr(v, "rating", AttrValue(7.5));
  Graph g = std::move(b).Build().ValueOrDie();

  QueryTemplate t(schema);
  QNodeId m = t.AddNode("movie");
  t.AddLiteral(m, "rating", CompareOp::kGt, AttrValue(7.0));
  VariableDomains d = VariableDomains::Build(g, t).ValueOrDie();
  QueryInstance q =
      QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  ASSERT_EQ(q.literals_of(m).size(), 1u);
  EXPECT_DOUBLE_EQ(q.literals_of(m)[0].value.as_double(), 7.0);
}

TEST(QueryInstanceTest, ToStringListsActivePartsOnly) {
  Fixture f;
  Instantiation i({0}, {0, 1});
  QueryInstance q = QueryInstance::Materialize(f.tmpl, f.domains, i);
  std::string s = q.ToString();
  EXPECT_NE(s.find("u0"), std::string::npos);
  EXPECT_NE(s.find("u1"), std::string::npos);
  EXPECT_EQ(s.find("u3"), std::string::npos);  // Outside the component.
}

}  // namespace
}  // namespace fairsqg
