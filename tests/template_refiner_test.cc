#include "core/template_refiner.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "matching/subgraph_matcher.h"

namespace fairsqg {
namespace {

// Two "clusters": matches live in cluster A; cluster B holds users with
// exotic attribute values that template refinement must rule out.
struct Fixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  Fixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  Graph MakeGraph() {
    GraphBuilder b(schema);
    // Cluster A: users 0-2 (exp 5, 10, 12) recommending director 3.
    for (int exp : {5, 10, 12}) {
      NodeId u = b.AddNode("user");
      b.SetAttr(u, "yearsOfExp", AttrValue(int64_t{exp}));
    }
    NodeId dir_a = b.AddNode("director");
    for (NodeId u = 0; u < 3; ++u) b.AddEdge(u, dir_a, "recommend");
    // Cluster B: far-away users with exp 40, 50 recommending director 6,
    // who lacks the required 'domain' attribute (never matches).
    for (int exp : {40, 50}) {
      NodeId u = b.AddNode("user");
      b.SetAttr(u, "yearsOfExp", AttrValue(int64_t{exp}));
    }
    NodeId dir_b = b.AddNode("director");
    b.AddEdge(4, dir_b, "recommend");
    b.AddEdge(5, dir_b, "recommend");
    b.SetAttr(dir_a, "domain", AttrValue(std::string("IT")));
    // Only cluster B has a coReview edge (between its two users).
    b.AddEdge(4, 5, "coReview");
    return std::move(b).Build().ValueOrDie();
  }

  VariableDomains MakeTemplate() {
    QNodeId d = tmpl.AddNode("director");
    QNodeId u = tmpl.AddNode("user");
    QNodeId u2 = tmpl.AddNode("user");
    tmpl.SetOutputNode(d);
    tmpl.AddLiteral(d, "domain", CompareOp::kEq, AttrValue(std::string("IT")));
    tmpl.AddRangeLiteral(u, "yearsOfExp", CompareOp::kGe);  // x0
    tmpl.AddEdge(u, d, "recommend");
    tmpl.AddVariableEdge(u2, u, "coReview");                // e0
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }
};

TEST(TemplateRefinerTest, RestrictsDomainToNeighborhoodValues) {
  Fixture f;
  // Matches of the most relaxed instance: only director 3 (cluster A).
  SubgraphMatcher matcher(f.graph);
  QueryInstance root = QueryInstance::Materialize(
      f.tmpl, f.domains, Instantiation::MostRelaxed(f.tmpl));
  NodeSet matches = matcher.MatchOutput(root);
  ASSERT_EQ(matches, NodeSet({3}));

  RefinementHints hints =
      ComputeRefinementHints(f.graph, f.tmpl, f.domains, matches);
  ASSERT_TRUE(hints.restrict_range[0]);
  // Full domain is {5, 10, 12, 40, 50}; G_q^d only contains cluster A, so
  // 40 and 50 (indexes 3, 4) must be excluded.
  ASSERT_EQ(f.domains.size(0), 5u);
  EXPECT_EQ(hints.allowed_range_indexes[0],
            (std::vector<int32_t>{0, 1, 2}));
}

TEST(TemplateRefinerTest, PinsEdgeVariableWithoutMatchingEdge) {
  Fixture f;
  SubgraphMatcher matcher(f.graph);
  QueryInstance root = QueryInstance::Materialize(
      f.tmpl, f.domains, Instantiation::MostRelaxed(f.tmpl));
  NodeSet matches = matcher.MatchOutput(root);
  RefinementHints hints =
      ComputeRefinementHints(f.graph, f.tmpl, f.domains, matches);
  // The only coReview edge lives in cluster B, outside G_q^d.
  EXPECT_TRUE(hints.edge_fixed_zero[0]);
}

TEST(TemplateRefinerTest, KeepsEdgeVariableWhenEdgeExistsNearby) {
  Fixture f;
  // Seed the neighborhood from cluster B instead: coReview exists there.
  RefinementHints hints =
      ComputeRefinementHints(f.graph, f.tmpl, f.domains, {6});
  EXPECT_FALSE(hints.edge_fixed_zero[0]);
  // And the allowed values flip to cluster B's {40, 50} (indexes 3, 4).
  EXPECT_EQ(hints.allowed_range_indexes[0], (std::vector<int32_t>{3, 4}));
}

TEST(TemplateRefinerTest, EmptyMatchesBlockEverything) {
  Fixture f;
  RefinementHints hints = ComputeRefinementHints(f.graph, f.tmpl, f.domains, {});
  EXPECT_TRUE(hints.restrict_range[0]);
  EXPECT_TRUE(hints.allowed_range_indexes[0].empty());
  EXPECT_TRUE(hints.edge_fixed_zero[0]);
}

TEST(TemplateRefinerTest, SkippedValuesCannotChangeMatchSets) {
  // The soundness property behind the hints: for every domain index the
  // hints exclude, binding it yields the same match set as binding the
  // next allowed index (or the refinement is vacuous).
  Fixture f;
  SubgraphMatcher matcher(f.graph);
  QueryInstance root = QueryInstance::Materialize(
      f.tmpl, f.domains, Instantiation::MostRelaxed(f.tmpl));
  NodeSet matches = matcher.MatchOutput(root);
  RefinementHints hints =
      ComputeRefinementHints(f.graph, f.tmpl, f.domains, matches);
  const auto& allowed = hints.allowed_range_indexes[0];
  for (int32_t idx = 0; idx < static_cast<int32_t>(f.domains.size(0)); ++idx) {
    if (std::find(allowed.begin(), allowed.end(), idx) != allowed.end()) continue;
    // Skipped index: match set equals that of the next allowed index above
    // (or empty when none remains).
    Instantiation skipped({idx}, {0});
    NodeSet skipped_matches = matcher.MatchOutput(
        QueryInstance::Materialize(f.tmpl, f.domains, skipped));
    auto it = std::upper_bound(allowed.begin(), allowed.end(), idx);
    if (it == allowed.end()) {
      EXPECT_TRUE(skipped_matches.empty());
    } else {
      Instantiation next({*it}, {0});
      NodeSet next_matches = matcher.MatchOutput(
          QueryInstance::Materialize(f.tmpl, f.domains, next));
      EXPECT_EQ(skipped_matches, next_matches) << "index " << idx;
    }
  }
}

}  // namespace
}  // namespace fairsqg
