#include "core/dominance.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairsqg {
namespace {

TEST(DominanceTest, StrictAndNonStrict) {
  Objectives a{2.0, 3.0};
  Objectives b{1.0, 3.0};
  Objectives c{1.0, 2.0};
  EXPECT_TRUE(Dominates(a, b));   // Equal coverage, higher diversity.
  EXPECT_TRUE(Dominates(a, c));
  EXPECT_TRUE(Dominates(b, c));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, a));  // No self-dominance.
}

TEST(DominanceTest, IncomparablePairs) {
  Objectives a{2.0, 1.0};
  Objectives b{1.0, 2.0};
  EXPECT_FALSE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
}

TEST(EpsilonDominanceTest, ReflexiveAndTolerant) {
  Objectives a{2.0, 3.0};
  EXPECT_TRUE(EpsilonDominates(a, a, 0.01));
  // b is slightly better; within a 10% tolerance a still eps-dominates it.
  Objectives b{2.1, 3.1};
  EXPECT_TRUE(EpsilonDominates(a, b, 0.1));
  EXPECT_FALSE(EpsilonDominates(a, b, 0.001));
}

TEST(EpsilonDominanceTest, ZeroValuesWellBehaved) {
  Objectives zero{0.0, 0.0};
  Objectives tiny{0.005, 0.0};
  EXPECT_TRUE(EpsilonDominates(zero, tiny, 0.01));
  Objectives big{10.0, 10.0};
  EXPECT_FALSE(EpsilonDominates(zero, big, 0.01));
  EXPECT_TRUE(EpsilonDominates(big, zero, 0.0001));
}

TEST(BoxTest, BoxIndexesGrowWithValues) {
  double eps = 0.1;
  BoxCoord b0 = BoxOf({0.0, 0.0}, eps);
  BoxCoord b1 = BoxOf({10.0, 5.0}, eps);
  EXPECT_EQ(b0.diversity, 0);
  EXPECT_EQ(b0.coverage, 0);
  EXPECT_GT(b1.diversity, b0.diversity);
  EXPECT_GT(b1.coverage, b0.coverage);
  EXPECT_GT(b1.diversity, b1.coverage);  // 10 > 5.
}

TEST(BoxTest, SameBoxWithinOneEpsilonFactor) {
  double eps = 0.5;
  // 1+v in [ (1.5)^k, (1.5)^{k+1} ) share box k.
  BoxCoord a = BoxOf({0.6, 0.0}, eps);   // 1.6 -> box 1.
  BoxCoord b = BoxOf({1.0, 0.0}, eps);   // 2.0 -> box 1.
  BoxCoord c = BoxOf({1.3, 0.0}, eps);   // 2.3 -> box 2.
  EXPECT_EQ(a.diversity, b.diversity);
  EXPECT_NE(a.diversity, c.diversity);
}

TEST(BoxTest, BoxDominance) {
  BoxCoord a{3, 4};
  BoxCoord b{3, 3};
  BoxCoord c{2, 5};
  EXPECT_TRUE(BoxDominates(a, b));
  EXPECT_FALSE(BoxDominates(b, a));
  EXPECT_FALSE(BoxDominates(a, c));
  EXPECT_FALSE(BoxDominates(c, a));
  EXPECT_FALSE(BoxDominates(a, a));
  EXPECT_TRUE(BoxDominatesOrEqual(a, a));
  EXPECT_TRUE(BoxDominatesOrEqual(a, b));
}

TEST(RequiredEpsilonTest, ZeroWhenDominating) {
  EXPECT_DOUBLE_EQ(RequiredEpsilon({5, 5}, {4, 4}), 0.0);
  EXPECT_DOUBLE_EQ(RequiredEpsilon({5, 5}, {5, 5}), 0.0);
}

TEST(RequiredEpsilonTest, MatchesEpsilonDominance) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    Objectives a{rng.NextDouble() * 10, rng.NextDouble() * 10};
    Objectives b{rng.NextDouble() * 10, rng.NextDouble() * 10};
    double need = RequiredEpsilon(a, b);
    // a eps-dominates b exactly for eps >= need.
    EXPECT_TRUE(EpsilonDominates(a, b, need + 1e-12));
    if (need > 1e-9) {
      EXPECT_FALSE(EpsilonDominates(a, b, need * 0.999));
    }
  }
}

TEST(BoxTest, BoxDominanceImpliesEpsilonDominance) {
  // The archive's core soundness property: if Box(a) >= Box(b)
  // componentwise then a ε-dominates b.
  Rng rng(11);
  double eps = 0.2;
  for (int i = 0; i < 5000; ++i) {
    Objectives a{rng.NextDouble() * 40, rng.NextDouble() * 40};
    Objectives b{rng.NextDouble() * 40, rng.NextDouble() * 40};
    if (BoxDominatesOrEqual(BoxOf(a, eps), BoxOf(b, eps))) {
      EXPECT_TRUE(EpsilonDominates(a, b, eps + 1e-9))
          << "a=(" << a.diversity << "," << a.coverage << ") b=("
          << b.diversity << "," << b.coverage << ")";
    }
  }
}

}  // namespace
}  // namespace fairsqg
