// RunReport schema lock-in (DESIGN.md §13): a golden-file test over a
// fully deterministic synthetic report, plus structural checks on a report
// produced from a real generation run.
//
// The golden file is tests/data/run_report_golden.json. It is built from
// hand-pinned GenStats / metrics / spans (no clocks, no randomness), so
// its dump is byte-stable across machines; any schema drift — a renamed
// key, a changed number format, a reordered field — fails this test and
// forces a conscious kSchemaVersion bump.
//
// To regenerate after an intentional schema change:
//     FAIRSQG_REGEN_GOLDEN=1 ./run_report_test
// then commit the rewritten golden file together with the schema bump.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

std::string GoldenPath() {
  return std::string(FAIRSQG_TEST_DATA_DIR) + "/run_report_golden.json";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A report with every field populated from pinned values — no clock
/// reads, no randomness, so Dump() is identical on every machine.
obs::RunReport PinnedReport() {
  obs::RunReport report;
  report.SetAlgorithm("biqgen");

  GenStats stats;
  stats.generated = 120;
  stats.verified = 96;
  stats.pruned = 24;
  stats.feasible = 42;
  stats.pruned_sandwich = 9;
  stats.pruned_subtree = 15;
  stats.enqueued = 130;
  stats.stolen = 7;
  stats.cache_hits = 11;
  stats.cache_misses = 85;
  stats.deadline_exceeded = false;
  stats.aborted_matches = 3;
  stats.timed_out_instances = 1;
  stats.sweep_chains = 8;
  stats.sweep_instances = 64;
  stats.sweep_fallbacks = 2;
  stats.total_seconds = 0.25;
  stats.verify_cpu_seconds = 0.125;
  stats.verify_wall_seconds = 0.0625;
  stats.per_worker_verify_seconds = {0.03125, 0.03125};
  report.SetGenStats(stats);

  obs::MetricsSnapshot metrics;
  metrics.counters["fairsqg.verify.completed"] = 96;
  metrics.counters["fairsqg.verify.cache_lookups"] = 96;
  metrics.counters["fairsqg.verify.cache_hits"] = 11;
  metrics.counters["fairsqg.verify.cache_misses"] = 85;
  metrics.counters["fairsqg.sweep.chains"] = 8;
  metrics.gauges["fairsqg.pool.workers"] = 4;
  obs::HistogramSnapshot hist;
  hist.count = 3;
  hist.sum = 14;
  hist.min = 2;
  hist.max = 8;
  hist.buckets[1] = 1;  // [2, 4)
  hist.buckets[2] = 1;  // [4, 8)
  hist.buckets[3] = 1;  // [8, 16)
  metrics.histograms["fairsqg.verify.duration_ns"] = hist;
  report.AttachMetrics(metrics);

  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord run;
  run.id = 1;
  run.parent = 0;
  run.name = "bi_qgen.run";
  run.start_ns = 1000;
  run.dur_ns = 9000;
  run.thread = 0;
  run.worker = -1;
  obs::SpanRecord verify;
  verify.id = 2;
  verify.parent = 1;
  verify.name = "verify";
  verify.start_ns = 2000;
  verify.dur_ns = 500;
  verify.thread = 1;
  verify.worker = 0;
  obs::SpanRecord stop;
  stop.id = 3;
  stop.parent = 1;
  stop.name = "run_context.stop";
  stop.start_ns = 9500;
  stop.dur_ns = 0;
  stop.thread = 0;
  stop.worker = -1;
  stop.instant = true;
  // Deliberately out of start order: AttachTrace must sort by start_ns.
  spans = {stop, run, verify};
  report.AttachTrace(spans, obs::TraceDetail::kFull, /*dropped=*/0);
  return report;
}

TEST(RunReportTest, GoldenFileMatchesByteForByte) {
  obs::RunReport report = PinnedReport();
  std::string dumped = report.Dump() + "\n";
  if (std::getenv("FAIRSQG_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(GoldenPath().c_str(), "w");
    ASSERT_NE(f, nullptr) << GoldenPath();
    std::fwrite(dumped.data(), 1, dumped.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }
  std::string golden = ReadFileOrDie(GoldenPath());
  EXPECT_EQ(dumped, golden)
      << "run-report schema drifted; if intentional, bump "
         "RunReport::kSchemaVersion and rerun with FAIRSQG_REGEN_GOLDEN=1";
}

TEST(RunReportTest, GoldenFileParsesWithExpectedSchema) {
  obs::Json parsed;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(ReadFileOrDie(GoldenPath()), &parsed, &error))
      << error;
  ASSERT_TRUE(parsed.is_object());
  ASSERT_NE(parsed.Find("kind"), nullptr);
  EXPECT_EQ(parsed.Find("kind")->as_string(), obs::RunReport::kKind);
  ASSERT_NE(parsed.Find("schema_version"), nullptr);
  EXPECT_EQ(parsed.Find("schema_version")->as_int(),
            obs::RunReport::kSchemaVersion);
  // Top-level key set is closed: a new key is a schema change.
  std::set<std::string> keys;
  for (const auto& [key, value] : parsed.items()) keys.insert(key);
  EXPECT_EQ(keys, (std::set<std::string>{"algorithm", "kind", "metrics",
                                         "schema_version", "stats", "trace"}));
  // stats carries every GenStats counter.
  const obs::Json* stats = parsed.Find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* key :
       {"generated", "verified", "pruned", "feasible", "pruned_sandwich",
        "pruned_subtree", "enqueued", "stolen", "cache_hits", "cache_misses",
        "deadline_exceeded", "aborted_matches", "timed_out_instances",
        "sweep_chains", "sweep_instances", "sweep_fallbacks", "total_seconds",
        "verify_cpu_seconds", "verify_wall_seconds",
        "per_worker_verify_seconds"}) {
    EXPECT_NE(stats->Find(key), nullptr) << "stats." << key;
  }
  // metrics splits by instrument kind.
  const obs::Json* metrics = parsed.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* key : {"counters", "gauges", "histograms"}) {
    EXPECT_NE(metrics->Find(key), nullptr) << "metrics." << key;
  }
  // trace spans are sorted by start_ns with a well-formed parent tree.
  const obs::Json* trace = parsed.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_NE(trace->Find("detail"), nullptr);
  EXPECT_NE(trace->Find("dropped"), nullptr);
  const obs::Json* spans = trace->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  std::set<int64_t> ids;
  int64_t prev_start = 0;
  for (const obs::Json& span : spans->elements()) {
    ASSERT_TRUE(span.is_object());
    int64_t start = span.Find("start_ns")->as_int();
    EXPECT_GE(start, prev_start) << "spans not sorted by start_ns";
    prev_start = start;
    EXPECT_GE(span.Find("dur_ns")->as_int(), 0);
    ids.insert(span.Find("id")->as_int());
  }
  for (const obs::Json& span : spans->elements()) {
    int64_t parent = span.Find("parent")->as_int();
    EXPECT_TRUE(parent == 0 || ids.count(parent) == 1)
        << "dangling parent " << parent;
  }
}

TEST(RunReportTest, WriteFileRoundTripsAndChromeTraceMarksInstants) {
  obs::RunReport report = PinnedReport();
  report.SetField("dataset", obs::Json(std::string("lki")));

  std::string report_path = testing::TempDir() + "/run_report_rt.json";
  ASSERT_TRUE(report.WriteFile(report_path).ok());
  obs::Json parsed;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(ReadFileOrDie(report_path), &parsed, &error))
      << error;
  ASSERT_NE(parsed.Find("dataset"), nullptr);
  EXPECT_EQ(parsed.Find("dataset")->as_string(), "lki");
  EXPECT_EQ(parsed.Find("kind")->as_string(), obs::RunReport::kKind);

  obs::SpanRecord instant;
  instant.id = 1;
  instant.parent = 0;
  instant.name = "run_context.stop";
  instant.start_ns = 4000;
  instant.dur_ns = 0;
  instant.thread = 0;
  instant.worker = -1;
  instant.instant = true;
  std::string trace_path = testing::TempDir() + "/chrome_trace_rt.json";
  ASSERT_TRUE(obs::WriteChromeTrace({instant}, trace_path).ok());
  ASSERT_TRUE(obs::Json::Parse(ReadFileOrDie(trace_path), &parsed, &error))
      << error;
  const obs::Json* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  const obs::Json& event = events->elements()[0];
  EXPECT_EQ(event.Find("ph")->as_string(), "i");
  EXPECT_EQ(event.Find("s")->as_string(), "t");

  // Unwritable destination surfaces as a Status error, not a crash.
  EXPECT_FALSE(report.WriteFile("/nonexistent-dir/run_report.json").ok());
}

TEST(RunReportTest, RealRunProducesWellFormedReport) {
  SmallScenario s;
  obs::Tracer::Global().Enable(obs::TraceDetail::kFull);
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::Global().set_enabled(true);
  QGenResult result = BiQGen::Run(s.Config(0.05)).ValueOrDie();
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  uint64_t dropped = obs::Tracer::Global().dropped();
  obs::Tracer::Global().Disable();
  obs::MetricsRegistry::Global().set_enabled(false);

  obs::RunReport report;
  report.SetAlgorithm("biqgen");
  report.SetGenStats(result.stats);
  report.AttachMetrics(obs::MetricsRegistry::Global().Snapshot());
  report.AttachTrace(spans, obs::TraceDetail::kFull, dropped);

  // The dump must survive a parse round-trip through our own parser and
  // re-dump identically (Json objects are sorted maps, so dump order is
  // canonical).
  std::string dumped = report.Dump();
  obs::Json parsed;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(dumped, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Dump(), dumped);

  EXPECT_EQ(parsed.Find("kind")->as_string(), obs::RunReport::kKind);
  EXPECT_EQ(static_cast<size_t>(parsed.Find("stats")->Find("verified")->as_int()),
            result.stats.verified);
  // The chrome-trace exporter accepts the same spans.
  obs::Json chrome = obs::ChromeTraceJson(spans);
  ASSERT_NE(chrome.Find("traceEvents"), nullptr);
  EXPECT_EQ(chrome.Find("traceEvents")->size(), spans.size());
}

}  // namespace
}  // namespace fairsqg
