#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

// Small talent-search-like graph used across the graph tests.
Graph MakeSampleGraph() {
  GraphBuilder b;
  NodeId u0 = b.AddNode("user");
  NodeId u1 = b.AddNode("user");
  NodeId u2 = b.AddNode("user");
  NodeId org = b.AddNode("org");
  b.SetAttr(u0, "yearsOfExp", AttrValue(int64_t{10}));
  b.SetAttr(u0, "major", AttrValue(std::string("cs")));
  b.SetAttr(u1, "yearsOfExp", AttrValue(int64_t{5}));
  b.SetAttr(u1, "major", AttrValue(std::string("ee")));
  b.SetAttr(u2, "yearsOfExp", AttrValue(int64_t{12}));
  b.SetAttr(org, "employees", AttrValue(int64_t{1000}));
  b.AddEdge(u0, u1, "recommend");
  b.AddEdge(u1, u2, "recommend");
  b.AddEdge(u0, org, "worksAt");
  b.AddEdge(u1, org, "worksAt");
  return std::move(b).Build().ValueOrDie();
}

TEST(GraphTest, CountsAndLabels) {
  Graph g = MakeSampleGraph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  LabelId user = g.schema().NodeLabelId("user");
  LabelId org = g.schema().NodeLabelId("org");
  EXPECT_EQ(g.node_label(0), user);
  EXPECT_EQ(g.node_label(3), org);
  EXPECT_EQ(g.NodesWithLabel(user).size(), 3u);
  EXPECT_EQ(g.NodesWithLabel(org).size(), 1u);
}

TEST(GraphTest, UnknownLabelYieldsEmptySet) {
  Graph g = MakeSampleGraph();
  EXPECT_TRUE(g.NodesWithLabel(kInvalidLabel).empty());
}

TEST(GraphTest, AttributeLookup) {
  Graph g = MakeSampleGraph();
  AttrId years = g.schema().AttrIdOf("yearsOfExp");
  AttrId major = g.schema().AttrIdOf("major");
  ASSERT_NE(g.GetAttr(0, years), nullptr);
  EXPECT_EQ(g.GetAttr(0, years)->as_int(), 10);
  ASSERT_NE(g.GetAttr(0, major), nullptr);
  EXPECT_EQ(g.GetAttr(0, major)->as_string(), "cs");
  EXPECT_EQ(g.GetAttr(2, major), nullptr);  // u2 has no major.
  EXPECT_EQ(g.GetAttr(3, years), nullptr);  // org has no yearsOfExp.
}

TEST(GraphTest, AttrTupleSortedByAttrId) {
  Graph g = MakeSampleGraph();
  auto tuple = g.attrs(0);
  ASSERT_EQ(tuple.size(), 2u);
  EXPECT_LT(tuple[0].attr, tuple[1].attr);
}

TEST(GraphTest, AdjacencyAndDegrees) {
  Graph g = MakeSampleGraph();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphTest, HasEdgeRespectsLabelAndDirection) {
  Graph g = MakeSampleGraph();
  LabelId rec = g.schema().EdgeLabelId("recommend");
  LabelId works = g.schema().EdgeLabelId("worksAt");
  EXPECT_TRUE(g.HasEdge(0, 1, rec));
  EXPECT_FALSE(g.HasEdge(1, 0, rec));       // direction matters
  EXPECT_FALSE(g.HasEdge(0, 1, works));     // label matters
  EXPECT_TRUE(g.HasEdge(0, 3, works));
  EXPECT_FALSE(g.HasEdge(2, 3, works));
}

TEST(GraphTest, DuplicateEdgesDeduplicated) {
  GraphBuilder b;
  NodeId a = b.AddNode("x");
  NodeId c = b.AddNode("x");
  b.AddEdge(a, c, "e");
  b.AddEdge(a, c, "e");
  b.AddEdge(a, c, "f");  // different label, kept
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, BuildRejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddNode("x");
  b.AddEdge(0, 5, "e");
  EXPECT_TRUE(std::move(b).Build().status().IsInvalidArgument());
}

TEST(GraphTest, SetAttrOverwrites) {
  GraphBuilder b;
  NodeId v = b.AddNode("x");
  b.SetAttr(v, "a", AttrValue(int64_t{1}));
  b.SetAttr(v, "a", AttrValue(int64_t{2}));
  Graph g = std::move(b).Build().ValueOrDie();
  AttrId a = g.schema().AttrIdOf("a");
  EXPECT_EQ(g.GetAttr(v, a)->as_int(), 2);
  EXPECT_EQ(g.attrs(v).size(), 1u);
}

TEST(GraphTest, GlobalActiveDomainSortedUnique) {
  Graph g = MakeSampleGraph();
  AttrId years = g.schema().AttrIdOf("yearsOfExp");
  const auto& dom = g.ActiveDomain(years);
  ASSERT_EQ(dom.size(), 3u);
  EXPECT_EQ(dom[0].as_int(), 5);
  EXPECT_EQ(dom[1].as_int(), 10);
  EXPECT_EQ(dom[2].as_int(), 12);
}

TEST(GraphTest, PerLabelActiveDomain) {
  Graph g = MakeSampleGraph();
  LabelId user = g.schema().NodeLabelId("user");
  LabelId org = g.schema().NodeLabelId("org");
  AttrId years = g.schema().AttrIdOf("yearsOfExp");
  AttrId employees = g.schema().AttrIdOf("employees");
  EXPECT_EQ(g.ActiveDomain(user, years).size(), 3u);
  EXPECT_TRUE(g.ActiveDomain(org, years).empty());
  EXPECT_EQ(g.ActiveDomain(org, employees).size(), 1u);
  EXPECT_GE(g.MaxActiveDomainSize(), 3u);
}

TEST(GraphTest, EmptyGraphBuilds) {
  GraphBuilder b;
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphTest, SchemaSharedAcrossBuilder) {
  auto schema = std::make_shared<Schema>();
  LabelId pre = schema->InternNodeLabel("movie");
  GraphBuilder b(schema);
  NodeId v = b.AddNode("movie");
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.node_label(v), pre);
  EXPECT_EQ(g.schema_ptr().get(), schema.get());
}

}  // namespace
}  // namespace fairsqg
