#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/attr_range_index.h"
#include "graph/graph_builder.h"
#include "matching/candidate_space.h"
#include "query/domains.h"
#include "query/instance.h"

namespace fairsqg {
namespace {

constexpr CompareOp kAllOps[] = {CompareOp::kGt, CompareOp::kGe, CompareOp::kEq,
                                 CompareOp::kLe, CompareOp::kLt};

/// Reference slice: every indexed node whose value satisfies `op x`.
NodeSet BruteSlice(const AttrRangeIndex& idx, CompareOp op, const AttrValue& x) {
  NodeSet out;
  for (size_t i = 0; i < idx.size(); ++i) {
    if (idx.value_at(i).Compare(op, x)) out.push_back(idx.node_at(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeSet SortedSlice(const AttrRangeIndex& idx, CompareOp op, const AttrValue& x) {
  auto slice = idx.SliceFor(op, x);
  NodeSet out(slice.begin(), slice.end());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AttrRangeIndexTest, SlicesMatchBruteForceOnIntegers) {
  std::vector<std::pair<AttrValue, NodeId>> entries;
  int64_t values[] = {5, 1, 9, 5, 3, 7, 5, 1};
  for (NodeId v = 0; v < 8; ++v) entries.emplace_back(AttrValue(values[v]), v);
  AttrRangeIndex idx = AttrRangeIndex::Build(std::move(entries));
  ASSERT_EQ(idx.size(), 8u);
  for (int64_t x : {0, 1, 4, 5, 9, 12}) {
    for (CompareOp op : kAllOps) {
      EXPECT_EQ(SortedSlice(idx, op, AttrValue(x)), BruteSlice(idx, op, AttrValue(x)))
          << "op=" << CompareOpToString(op) << " x=" << x;
    }
  }
}

TEST(AttrRangeIndexTest, IntAndDoubleEntriesShareNumericOrder) {
  std::vector<std::pair<AttrValue, NodeId>> entries;
  entries.push_back({AttrValue(int64_t{2}), 0});
  entries.push_back({AttrValue(2.0), 1});
  entries.push_back({AttrValue(1.5), 2});
  entries.push_back({AttrValue(int64_t{3}), 3});
  AttrRangeIndex idx = AttrRangeIndex::Build(std::move(entries));
  for (const AttrValue& x : {AttrValue(2.0), AttrValue(int64_t{2}), AttrValue(1.7)}) {
    for (CompareOp op : kAllOps) {
      EXPECT_EQ(SortedSlice(idx, op, x), BruteSlice(idx, op, x))
          << "op=" << CompareOpToString(op) << " x=" << x.ToString();
    }
  }
}

TEST(AttrRangeIndexTest, MixedNumericAndStringEntries) {
  std::vector<std::pair<AttrValue, NodeId>> entries;
  entries.push_back({AttrValue(int64_t{4}), 0});
  entries.push_back({AttrValue(std::string("alpha")), 1});
  entries.push_back({AttrValue(2.5), 2});
  entries.push_back({AttrValue(std::string("zeta")), 3});
  entries.push_back({AttrValue(std::string("alpha")), 4});
  AttrRangeIndex idx = AttrRangeIndex::Build(std::move(entries));
  // A numeric probe must never surface a string entry and vice versa
  // (Compare's mixed-type rule), for every operator.
  for (const AttrValue& x : {AttrValue(int64_t{3}), AttrValue(std::string("alpha")),
                             AttrValue(std::string("m")), AttrValue(0.0)}) {
    for (CompareOp op : kAllOps) {
      EXPECT_EQ(SortedSlice(idx, op, x), BruteSlice(idx, op, x))
          << "op=" << CompareOpToString(op) << " x=" << x.ToString();
    }
  }
}

TEST(AttrRangeIndexTest, GraphExposesIndexOnlyForPresentPairs) {
  GraphBuilder b;
  NodeId u = b.AddNode("user");
  b.SetAttr(u, "exp", AttrValue(int64_t{3}));
  b.AddNode("director");
  Graph g = std::move(b).Build().ValueOrDie();
  LabelId user = g.schema().NodeLabelId("user");
  LabelId director = g.schema().NodeLabelId("director");
  AttrId exp = g.schema().AttrIdOf("exp");
  ASSERT_NE(g.RangeIndex(user, exp), nullptr);
  EXPECT_EQ(g.RangeIndex(user, exp)->size(), 1u);
  // No director carries "exp": no index, and no literal over it can match.
  EXPECT_EQ(g.RangeIndex(director, exp), nullptr);
}

struct TinyGraph {
  Graph graph;
  LabelId user;
  AttrId exp;
  AttrId name;

  TinyGraph() : graph(Make()) {
    user = graph.schema().NodeLabelId("user");
    exp = graph.schema().AttrIdOf("exp");
    name = graph.schema().AttrIdOf("name");
  }

  static Graph Make() {
    GraphBuilder b;
    NodeId v0 = b.AddNode("user");  // Both attributes.
    b.SetAttr(v0, "exp", AttrValue(int64_t{10}));
    b.SetAttr(v0, "name", AttrValue(std::string("ada")));
    NodeId v1 = b.AddNode("user");  // Missing "name".
    b.SetAttr(v1, "exp", AttrValue(int64_t{5}));
    b.AddNode("director");
    return std::move(b).Build().ValueOrDie();
  }
};

TEST(NodeSatisfiesTest, EmptyLiteralListChecksLabelOnly) {
  TinyGraph t;
  std::vector<BoundLiteral> none;
  EXPECT_TRUE(NodeSatisfies(t.graph, 0, t.user, none));
  EXPECT_TRUE(NodeSatisfies(t.graph, 1, t.user, none));
  EXPECT_FALSE(NodeSatisfies(t.graph, 2, t.user, none));  // Wrong label.
}

TEST(NodeSatisfiesTest, MissingAttributeNeverSatisfies) {
  TinyGraph t;
  for (CompareOp op : kAllOps) {
    std::vector<BoundLiteral> lits = {
        {0, t.name, op, AttrValue(std::string("ada"))}};
    bool reflexive = op == CompareOp::kGe || op == CompareOp::kEq ||
                     op == CompareOp::kLe;
    EXPECT_EQ(NodeSatisfies(t.graph, 0, t.user, lits), reflexive)
        << "present attribute, op " << CompareOpToString(op);
    EXPECT_FALSE(NodeSatisfies(t.graph, 1, t.user, lits))
        << "missing attribute satisfied op " << CompareOpToString(op);
  }
}

TEST(NodeSatisfiesTest, TypeMismatchedComparisonIsFalse) {
  TinyGraph t;
  for (CompareOp op : kAllOps) {
    // String constant against the integer attribute: false for every op,
    // including kEq and the "reflexive-looking" kGe/kLe.
    std::vector<BoundLiteral> lits = {{0, t.exp, op, AttrValue(std::string("10"))}};
    EXPECT_FALSE(NodeSatisfies(t.graph, 0, t.user, lits))
        << "type mismatch satisfied op " << CompareOpToString(op);
  }
}

/// Random attributed graph + random fixed-literal instance; asserts the
/// index-sliced build equals the reference scan build on every node, and
/// that the bitset view agrees with the sorted set.
class CandidateBuildPropertyTest : public ::testing::Test {
 protected:
  static Graph RandomGraph(Rng* rng, size_t n) {
    GraphBuilder b;
    const char* string_pool[] = {"ac", "bd", "ce", "dg"};
    for (size_t i = 0; i < n; ++i) {
      NodeId v = b.AddNode(rng->NextBernoulli(0.7) ? "user" : "director");
      if (rng->NextBernoulli(0.8)) {
        b.SetAttr(v, "a", AttrValue(rng->NextInRange(0, 20)));
      }
      if (rng->NextBernoulli(0.6)) {
        // Mix ints and doubles on the same attribute.
        if (rng->NextBernoulli(0.5)) {
          b.SetAttr(v, "b", AttrValue(static_cast<double>(rng->NextInRange(0, 10)) / 2));
        } else {
          b.SetAttr(v, "b", AttrValue(rng->NextInRange(0, 5)));
        }
      }
      if (rng->NextBernoulli(0.5)) {
        b.SetAttr(v, "c", AttrValue(std::string(string_pool[rng->NextBounded(4)])));
      }
    }
    for (size_t e = 0; e < 3 * n; ++e) {
      b.AddEdge(static_cast<NodeId>(rng->NextBounded(n)),
                static_cast<NodeId>(rng->NextBounded(n)), "rec");
    }
    return std::move(b).Build().ValueOrDie();
  }

  static AttrValue RandomConstant(Rng* rng) {
    const char* string_pool[] = {"ac", "bd", "ce", "m"};
    switch (rng->NextBounded(3)) {
      case 0:
        return AttrValue(rng->NextInRange(0, 20));
      case 1:
        return AttrValue(static_cast<double>(rng->NextInRange(0, 20)) / 2);
      default:
        return AttrValue(std::string(string_pool[rng->NextBounded(4)]));
    }
  }

  static CompareOp RandomOp(Rng* rng) {
    return kAllOps[rng->NextBounded(5)];
  }
};

TEST_F(CandidateBuildPropertyTest, IndexedBuildEqualsScanBuild) {
  Rng rng(20260807);
  const char* attrs[] = {"a", "b", "c"};
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 20 + rng.NextBounded(280);
    Graph g = RandomGraph(&rng, n);
    QueryTemplate tmpl(g.schema_ptr());
    QNodeId u0 = tmpl.AddNode("user");
    QNodeId u1 = tmpl.AddNode("director");
    tmpl.SetOutputNode(u1);
    size_t num_lits = rng.NextBounded(4);  // 0..3 literals on u0.
    for (size_t i = 0; i < num_lits; ++i) {
      tmpl.AddLiteral(u0, attrs[rng.NextBounded(3)], RandomOp(&rng),
                      RandomConstant(&rng));
    }
    if (rng.NextBernoulli(0.5)) {
      tmpl.AddLiteral(u1, "a", RandomOp(&rng), RandomConstant(&rng));
    }
    tmpl.AddEdge(u0, u1, "rec");
    VariableDomains domains = VariableDomains::Build(g, tmpl).ValueOrDie();
    QueryInstance q =
        QueryInstance::Materialize(tmpl, domains, Instantiation({}, {}));

    for (bool degree_filter : {false, true}) {
      MatchStats stats;
      CandidateSpace indexed =
          CandidateSpace::Build(g, q, degree_filter, /*use_index=*/true, &stats);
      CandidateSpace scanned =
          CandidateSpace::Build(g, q, degree_filter, /*use_index=*/false);
      for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
        EXPECT_EQ(indexed.of(u), scanned.of(u))
            << "trial=" << trial << " node=" << u
            << " degree_filter=" << degree_filter;
        EXPECT_TRUE(std::is_sorted(indexed.of(u).begin(), indexed.of(u).end()));
        // Bitset view is exactly the characteristic function of the set.
        EXPECT_EQ(indexed.bits(u).Count(), indexed.of(u).size());
        for (NodeId v : indexed.of(u)) {
          EXPECT_TRUE(indexed.bits(u).Test(v));
        }
      }
      if (num_lits > 0) {
        EXPECT_GT(stats.index_slices, 0u);
      }
    }
  }
}

TEST_F(CandidateBuildPropertyTest, IndexedDeriveRefinedEqualsScanDerive) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    size_t n = 30 + rng.NextBounded(200);
    Graph g = RandomGraph(&rng, n);
    QueryTemplate tmpl(g.schema_ptr());
    QNodeId u0 = tmpl.AddNode("user");
    QNodeId u1 = tmpl.AddNode("director");
    tmpl.SetOutputNode(u1);
    RangeVarId x0 = tmpl.AddRangeLiteral(u0, "a", CompareOp::kGe);
    if (rng.NextBernoulli(0.5)) {
      tmpl.AddLiteral(u0, "b", RandomOp(&rng), RandomConstant(&rng));
    }
    tmpl.AddEdge(u0, u1, "rec");
    VariableDomains domains = VariableDomains::Build(g, tmpl).ValueOrDie();
    if (domains.size(x0) < 2) continue;  // Need a refinement step.

    QueryInstance parent_q = QueryInstance::Materialize(
        tmpl, domains, Instantiation({kWildcardBinding}, {}));
    QueryInstance child_q =
        QueryInstance::Materialize(tmpl, domains, Instantiation({1}, {}));
    CandidateSpace parent = CandidateSpace::Build(g, parent_q);
    CandidateSpace indexed = CandidateSpace::DeriveRefined(
        g, child_q, parent, /*changed_var=*/0, /*use_index=*/true);
    CandidateSpace scanned = CandidateSpace::DeriveRefined(
        g, child_q, parent, /*changed_var=*/0, /*use_index=*/false);
    for (QNodeId u = 0; u < tmpl.num_nodes(); ++u) {
      EXPECT_EQ(indexed.of(u), scanned.of(u)) << "trial=" << trial << " u=" << u;
      EXPECT_EQ(indexed.bits(u).Count(), indexed.of(u).size());
    }
  }
}

struct CowFixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  std::unique_ptr<VariableDomains> domains;

  CowFixture() : graph(Make(schema)), tmpl(schema) {
    QNodeId u0 = tmpl.AddNode("user");
    QNodeId u1 = tmpl.AddNode("director");
    QNodeId u2 = tmpl.AddNode("user");
    tmpl.SetOutputNode(u1);
    tmpl.AddRangeLiteral(u0, "exp", CompareOp::kGe);  // x0
    tmpl.AddEdge(u0, u1, "rec");
    tmpl.AddVariableEdge(u2, u1, "rec");  // e0
    domains = std::make_unique<VariableDomains>(
        VariableDomains::Build(graph, tmpl).ValueOrDie());
  }

  static Graph Make(std::shared_ptr<Schema> schema) {
    GraphBuilder b(std::move(schema));
    for (int e : {2, 5, 9, 12}) {
      NodeId v = b.AddNode("user");
      b.SetAttr(v, "exp", AttrValue(int64_t{e}));
    }
    b.AddNode("director");
    b.AddEdge(0, 4, "rec");
    b.AddEdge(2, 4, "rec");
    return std::move(b).Build().ValueOrDie();
  }

  QueryInstance Materialize(int32_t x0, uint8_t e0) const {
    return QueryInstance::Materialize(tmpl, *domains, Instantiation({x0}, {e0}));
  }
};

TEST(CandidateSpaceCowTest, RefinementSharesUnchangedNodesByPointer) {
  CowFixture f;
  QueryInstance parent_q = f.Materialize(kWildcardBinding, 0);
  QueryInstance child_q = f.Materialize(0, 0);
  CandidateSpace parent = CandidateSpace::Build(f.graph, parent_q);
  CandidateSpace child =
      CandidateSpace::DeriveRefined(f.graph, child_q, parent, /*changed_var=*/0);
  // u0 carries the changed literal: fresh storage. u1, u2 untouched: the
  // exact same heap objects, not equal copies.
  EXPECT_FALSE(child.SharesEntryWith(parent, 0));
  EXPECT_TRUE(child.SharesEntryWith(parent, 1));
  EXPECT_TRUE(child.SharesEntryWith(parent, 2));
  EXPECT_NE(&child.of(0), &parent.of(0));
  EXPECT_EQ(&child.of(1), &parent.of(1));
  EXPECT_EQ(&child.of(2), &parent.of(2));
}

TEST(CandidateSpaceCowTest, EdgeVariableStepCopiesNothing) {
  CowFixture f;
  QueryInstance parent_q = f.Materialize(0, 0);
  QueryInstance child_q = f.Materialize(0, 1);
  CandidateSpace parent = CandidateSpace::Build(f.graph, parent_q);
  // changed_var in lattice encoding: range vars first, so e0 is var 1.
  CandidateSpace child =
      CandidateSpace::DeriveRefined(f.graph, child_q, parent, /*changed_var=*/1);
  for (QNodeId u = 0; u < 3; ++u) {
    EXPECT_TRUE(child.SharesEntryWith(parent, u)) << "u=" << u;
    EXPECT_EQ(&child.of(u), &parent.of(u)) << "u=" << u;
    EXPECT_EQ(&child.bits(u), &parent.bits(u)) << "u=" << u;
  }
}

TEST(CandidateSpaceTest, UnconstrainedNodeAliasesGraphLabelSet) {
  CowFixture f;
  QueryInstance q = f.Materialize(kWildcardBinding, 0);
  CandidateSpace space = CandidateSpace::Build(f.graph, q);
  LabelId user = f.graph.schema().NodeLabelId("user");
  LabelId director = f.graph.schema().NodeLabelId("director");
  // No literals and no degree filter: the space aliases the Graph-owned
  // label index instead of copying it.
  EXPECT_EQ(&space.of(1), &f.graph.NodesWithLabel(director));
  EXPECT_EQ(&space.of(2), &f.graph.NodesWithLabel(user));
  EXPECT_EQ(&space.bits(2), &f.graph.LabelBitset(user));
}

}  // namespace
}  // namespace fairsqg
