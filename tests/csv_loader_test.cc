#include "graph/csv_loader.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(CsvLoaderTest, LoadsTypedGraph) {
  std::istringstream nodes(
      "id,label,yearsOfExp:int,rating:double,major:string\n"
      "u1,user,12,4.5,physics\n"
      "u2,user,3,,math\n"
      "o1,org,,,\n");
  std::istringstream edges(
      "from,to,label\n"
      "u1,o1,worksAt\n"
      "u2,u1,recommend\n");
  std::unordered_map<std::string, NodeId> ids;
  Result<Graph> r = LoadCsvGraph(nodes, edges, nullptr, &ids);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g = *r;
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(ids.size(), 3u);

  NodeId u1 = ids.at("u1");
  AttrId years = g.schema().AttrIdOf("yearsOfExp");
  AttrId rating = g.schema().AttrIdOf("rating");
  AttrId major = g.schema().AttrIdOf("major");
  ASSERT_NE(g.GetAttr(u1, years), nullptr);
  EXPECT_EQ(g.GetAttr(u1, years)->as_int(), 12);
  EXPECT_TRUE(g.GetAttr(u1, rating)->is_double());
  EXPECT_DOUBLE_EQ(g.GetAttr(u1, rating)->as_double(), 4.5);
  EXPECT_EQ(g.GetAttr(u1, major)->as_string(), "physics");

  // Empty cells mean the attribute is absent.
  NodeId u2 = ids.at("u2");
  EXPECT_EQ(g.GetAttr(u2, rating), nullptr);
  NodeId o1 = ids.at("o1");
  EXPECT_EQ(g.attrs(o1).size(), 0u);

  LabelId works = g.schema().EdgeLabelId("worksAt");
  EXPECT_TRUE(g.HasEdge(u1, o1, works));
}

TEST(CsvLoaderTest, CommentsAndBlankLinesSkipped) {
  std::istringstream nodes(
      "id,label\n"
      "# a comment\n"
      "\n"
      "a,x\n");
  std::istringstream edges("from,to,label\n");
  Result<Graph> r = LoadCsvGraph(nodes, edges);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_nodes(), 1u);
}

TEST(CsvLoaderTest, RejectsBadNodeHeader) {
  std::istringstream nodes("name,label\na,x\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsUntypedAttrColumn) {
  std::istringstream nodes("id,label,age\na,x,3\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsUnknownType) {
  std::istringstream nodes("id,label,age:short\na,x,3\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsDuplicateIds) {
  std::istringstream nodes("id,label\na,x\na,y\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsWrongCellCount) {
  std::istringstream nodes("id,label,p:int\na,x\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsBadTypedCell) {
  std::istringstream nodes("id,label,p:int\na,x,notanint\n");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsUnknownEdgeEndpoint) {
  std::istringstream nodes("id,label\na,x\n");
  std::istringstream edges("from,to,label\na,zzz,e\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsBadEdgeHeader) {
  std::istringstream nodes("id,label\na,x\n");
  std::istringstream edges("src,dst,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
}

TEST(CsvLoaderTest, RejectsEmptyFiles) {
  std::istringstream nodes("");
  std::istringstream edges("from,to,label\n");
  EXPECT_FALSE(LoadCsvGraph(nodes, edges).ok());
  std::istringstream nodes2("id,label\n");
  std::istringstream edges2("");
  EXPECT_FALSE(LoadCsvGraph(nodes2, edges2).ok());
}

TEST(CsvLoaderTest, MissingFilesAreIoErrors) {
  EXPECT_TRUE(LoadCsvGraphFiles("/no/nodes.csv", "/no/edges.csv")
                  .status()
                  .IsIoError());
}

}  // namespace
}  // namespace fairsqg
