#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "graph/graph_stats.h"
#include "workload/datasets.h"
#include "workload/scenario.h"
#include "workload/template_generator.h"

namespace fairsqg {
namespace {

TEST(DatasetsTest, AllThreeDatasetsBuild) {
  for (const char* name : kDatasetNames) {
    Result<Dataset> d = MakeDataset(name, 0.05, 7);
    ASSERT_TRUE(d.ok()) << name << ": " << d.status().ToString();
    EXPECT_GT(d->graph.num_nodes(), 100u) << name;
    EXPECT_GT(d->graph.num_edges(), 100u) << name;
    EXPECT_FALSE(d->graph.NodesWithLabel(d->output_label).empty()) << name;
  }
}

TEST(DatasetsTest, DeterministicPerSeed) {
  Dataset a = MakeDataset("lki", 0.05, 13).ValueOrDie();
  Dataset b = MakeDataset("lki", 0.05, 13).ValueOrDie();
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId v = 0; v < std::min<size_t>(a.graph.num_nodes(), 200); ++v) {
    EXPECT_EQ(a.graph.node_label(v), b.graph.node_label(v));
    EXPECT_EQ(a.graph.degree(v), b.graph.degree(v));
  }
  Dataset c = MakeDataset("lki", 0.05, 14).ValueOrDie();
  EXPECT_NE(a.graph.num_edges(), c.graph.num_edges());
}

TEST(DatasetsTest, ScaleGrowsGraph) {
  Dataset small = MakeDataset("cite", 0.02, 7).ValueOrDie();
  Dataset big = MakeDataset("cite", 0.08, 7).ValueOrDie();
  EXPECT_GT(big.graph.num_nodes(), small.graph.num_nodes() * 2);
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_TRUE(MakeDataset("imdb").status().IsInvalidArgument());
  EXPECT_TRUE(MakeDataset("dbp", -1).status().IsInvalidArgument());
}

TEST(DatasetsTest, GroupAttrIsCategoricalOnOutputLabel) {
  for (const char* name : kDatasetNames) {
    Dataset d = MakeDataset(name, 0.05, 7).ValueOrDie();
    size_t with_attr = 0;
    for (NodeId v : d.graph.NodesWithLabel(d.output_label)) {
      const AttrValue* value = d.graph.GetAttr(v, d.group_attr);
      if (value != nullptr && value->is_string()) ++with_attr;
    }
    EXPECT_GT(with_attr, 0u) << name;
  }
}

TEST(DatasetsTest, StatsRowRenders) {
  Dataset d = MakeDataset("dbp", 0.05, 7).ValueOrDie();
  GraphStats stats = ComputeGraphStats(d.graph);
  std::string row = FormatStatsRow("DBP", stats);
  EXPECT_NE(row.find("|V|="), std::string::npos);
  EXPECT_GT(stats.avg_attrs_per_node, 1.0);
  EXPECT_GE(stats.num_node_labels, 3u);
}

TEST(TemplateGeneratorTest, RespectsSpec) {
  Dataset d = MakeDataset("lki", 0.08, 21).ValueOrDie();
  TemplateSpec spec;
  spec.output_label = d.output_label;
  spec.num_edges = 4;
  spec.num_range_vars = 3;
  spec.num_edge_vars = 2;
  spec.seed = 5;
  QueryTemplate t = GenerateTemplate(d.graph, spec).ValueOrDie();
  EXPECT_EQ(t.num_edges(), 4u);
  EXPECT_EQ(t.num_range_vars(), 3u);
  EXPECT_EQ(t.num_edge_vars(), 2u);
  EXPECT_EQ(t.node_label(t.output_node()), d.output_label);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TemplateGeneratorTest, SampledTemplateHasMatches) {
  Dataset d = MakeDataset("dbp", 0.08, 3).ValueOrDie();
  TemplateSpec spec;
  spec.output_label = d.output_label;
  spec.num_edges = 3;
  spec.num_range_vars = 2;
  spec.num_edge_vars = 1;
  spec.seed = 9;
  QueryTemplate t = GenerateTemplate(d.graph, spec).ValueOrDie();
  VariableDomains domains = VariableDomains::Build(d.graph, t).ValueOrDie();
  SubgraphMatcher matcher(d.graph);
  QueryInstance root =
      QueryInstance::Materialize(t, domains, Instantiation::MostRelaxed(t));
  EXPECT_FALSE(matcher.MatchOutput(root).empty())
      << "template sampled from the graph must match at least its own source";
}

TEST(TemplateGeneratorTest, RejectsBadSpecs) {
  Dataset d = MakeDataset("lki", 0.05, 21).ValueOrDie();
  TemplateSpec spec;
  spec.output_label = kInvalidLabel;
  EXPECT_TRUE(GenerateTemplate(d.graph, spec).status().IsInvalidArgument());
  spec.output_label = d.output_label;
  spec.num_edge_vars = 10;
  spec.num_edges = 3;
  EXPECT_TRUE(GenerateTemplate(d.graph, spec).status().IsInvalidArgument());
}

TEST(ScenarioTest, BuildsFeasibleScenario) {
  ScenarioOptions options;
  options.dataset = "lki";
  options.scale = 0.08;
  options.num_groups = 2;
  options.total_coverage = 8;
  options.max_domain_values = 5;
  Scenario s = MakeScenario(options).ValueOrDie();
  QGenConfig config = s.MakeConfig(0.05);
  ASSERT_TRUE(config.Validate().ok());

  InstanceVerifier verifier(config);
  EvaluatedPtr root = verifier.Verify(Instantiation::MostRelaxed(*s.tmpl));
  EXPECT_TRUE(root->feasible) << "MakeScenario must deliver a feasible root";
}

TEST(ScenarioTest, CoarseningBoundsInstanceSpace) {
  ScenarioOptions options;
  options.dataset = "lki";
  options.scale = 0.08;
  options.total_coverage = 8;
  options.max_domain_values = 4;
  options.num_range_vars = 2;
  options.num_edge_vars = 1;
  Scenario s = MakeScenario(options).ValueOrDie();
  // <= (4+1)^2 * 2.
  EXPECT_LE(s.domains->InstanceSpaceSize(*s.tmpl), 50u);
}

TEST(ScenarioTest, InvalidOptionsRejected) {
  ScenarioOptions options;
  options.num_groups = 0;
  EXPECT_FALSE(MakeScenario(options).ok());
  ScenarioOptions options2;
  options2.total_coverage = 1;
  options2.num_groups = 2;
  EXPECT_FALSE(MakeScenario(options2).ok());
}

}  // namespace
}  // namespace fairsqg
