#include "core/enumerate.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

TEST(EnumeratorTest, YieldsExactlyTheInstanceSpace) {
  SmallScenario s;
  InstantiationEnumerator it(*s.tmpl, *s.domains);
  size_t space = it.SpaceSize();
  std::unordered_set<Instantiation, Instantiation::Hasher> seen;
  Instantiation inst;
  bool saw_root = false;
  bool saw_bottom = false;
  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  Instantiation bottom = Instantiation::MostRefined(*s.tmpl, *s.domains);
  while (it.Next(&inst)) {
    EXPECT_TRUE(seen.insert(inst).second) << "enumerator repeated an instance";
    saw_root |= (inst == root);
    saw_bottom |= (inst == bottom);
  }
  EXPECT_EQ(seen.size(), space);
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_bottom);
  // Exhausted enumerators stay exhausted.
  EXPECT_FALSE(it.Next(&inst));
  // Reset restarts from the most relaxed instantiation.
  it.Reset();
  ASSERT_TRUE(it.Next(&inst));
  EXPECT_EQ(inst, root);
}

TEST(EnumeratorTest, FirstInstantiationIsMostRelaxed) {
  SmallScenario s;
  InstantiationEnumerator it(*s.tmpl, *s.domains);
  Instantiation inst;
  ASSERT_TRUE(it.Next(&inst));
  EXPECT_EQ(inst, Instantiation::MostRelaxed(*s.tmpl));
}

TEST(EnumeratorTest, EveryInstanceRefinesTheRoot) {
  SmallScenario s;
  InstantiationEnumerator it(*s.tmpl, *s.domains);
  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  Instantiation bottom = Instantiation::MostRefined(*s.tmpl, *s.domains);
  Instantiation inst;
  while (it.Next(&inst)) {
    EXPECT_TRUE(inst.Refines(root));
    EXPECT_TRUE(bottom.Refines(inst));
  }
}

TEST(ExactParetoSetTest, HandlesTiesAndDuplicates) {
  auto mk = [](double d, double f) {
    auto e = std::make_shared<EvaluatedInstance>();
    e->obj = {d, f};
    e->feasible = true;
    return e;
  };
  // (5,1), (5,3): equal diversity, second dominates. (3,3) dominated by
  // (5,3). (1,9) incomparable. Duplicate (5,3) deduplicated.
  auto front = ExactParetoSet({mk(5, 1), mk(5, 3), mk(3, 3), mk(1, 9), mk(5, 3)});
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(front[0]->obj.diversity, 5);
  EXPECT_DOUBLE_EQ(front[0]->obj.coverage, 3);
  EXPECT_DOUBLE_EQ(front[1]->obj.diversity, 1);
  EXPECT_DOUBLE_EQ(front[1]->obj.coverage, 9);
}

TEST(ExactParetoSetTest, EmptyAndSingleton) {
  EXPECT_TRUE(ExactParetoSet({}).empty());
  auto e = std::make_shared<EvaluatedInstance>();
  e->obj = {1, 1};
  EXPECT_EQ(ExactParetoSet({e}).size(), 1u);
}

// Randomized: incremental diversity parts equal full recomputation along
// random subset chains.
class IncrementalPartsTest : public testing::TestWithParam<int> {};

TEST_P(IncrementalPartsTest, RefineAndRelaxPartsMatchFull) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);
  const DiversityEvaluator& diversity = verifier.diversity();

  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 1);
  const NodeSet& all =
      s.graph.NodesWithLabel(s.schema->NodeLabelId("director"));
  // Random parent ⊆ all, child ⊆ parent.
  NodeSet parent;
  for (NodeId v : all) {
    if (rng.NextBernoulli(0.7)) parent.push_back(v);
  }
  NodeSet child;
  for (NodeId v : parent) {
    if (rng.NextBernoulli(0.6)) child.push_back(v);
  }

  DiversityEvaluator::Parts parent_parts = diversity.ComputeParts(parent);
  DiversityEvaluator::Parts inc =
      diversity.RefineParts(parent_parts, parent, child);
  DiversityEvaluator::Parts full = diversity.ComputeParts(child);
  EXPECT_NEAR(inc.relevance_sum, full.relevance_sum,
              1e-7 * (1 + full.relevance_sum));
  EXPECT_NEAR(inc.pair_sum, full.pair_sum, 1e-6 * (1 + full.pair_sum));

  // And back up: relaxing child to parent recovers the parent's parts.
  DiversityEvaluator::Parts back = diversity.RelaxParts(full, child, parent);
  EXPECT_NEAR(back.relevance_sum, parent_parts.relevance_sum,
              1e-7 * (1 + parent_parts.relevance_sum));
  EXPECT_NEAR(back.pair_sum, parent_parts.pair_sum,
              1e-6 * (1 + parent_parts.pair_sum));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPartsTest, testing::Range(0, 10));

}  // namespace
}  // namespace fairsqg
