#include "common/run_context.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(RunContextTest, DefaultIsUnbounded) {
  RunContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.HardExpired());
  EXPECT_FALSE(ctx.Expired());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ctx.PollVerification());
  EXPECT_EQ(ctx.polls(), 1000u);
}

TEST(RunContextTest, CancelTripsHardExpiry) {
  RunContext ctx;
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_TRUE(ctx.HardExpired());
  EXPECT_TRUE(ctx.Expired());
  EXPECT_TRUE(ctx.PollVerification());
  // A refused poll is not counted.
  EXPECT_EQ(ctx.polls(), 0u);
}

TEST(RunContextTest, ExpiredDeadline) {
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(-1);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.HardExpired());
  ctx.ClearDeadline();
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.HardExpired());
}

TEST(RunContextTest, FutureDeadlineNotExpired) {
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(60000);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_FALSE(ctx.HardExpired());
  EXPECT_FALSE(ctx.Expired());
}

TEST(RunContextTest, PollBudgetAdmitsExactlyN) {
  RunContext ctx;
  ctx.CancelAfterVerifications(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(ctx.PollVerification()) << "poll " << i;
  }
  // The 6th is refused, and refusal is sticky.
  EXPECT_TRUE(ctx.PollVerification());
  EXPECT_TRUE(ctx.PollVerification());
  EXPECT_EQ(ctx.polls(), 5u);
  // Budget exhaustion is soft: scheduling stops, in-flight matches don't.
  EXPECT_TRUE(ctx.Expired());
  EXPECT_FALSE(ctx.HardExpired());
}

TEST(RunContextTest, PollBudgetIsExactUnderContention) {
  RunContext ctx;
  constexpr uint64_t kLimit = 1000;
  ctx.CancelAfterVerifications(kLimit);
  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!ctx.PollVerification()) admitted.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(admitted.load(), kLimit);
}

TEST(RunContextTest, StepLimitAndPolicyAccessors) {
  RunContext ctx;
  EXPECT_EQ(ctx.match_step_limit(), 0u);
  ctx.set_match_step_limit(128);
  EXPECT_EQ(ctx.match_step_limit(), 128u);
  EXPECT_EQ(ctx.on_expiry(), ExpiryPolicy::kPartial);
  ctx.set_on_expiry(ExpiryPolicy::kFail);
  EXPECT_EQ(ctx.on_expiry(), ExpiryPolicy::kFail);
}

}  // namespace
}  // namespace fairsqg
