// Contract checks (FAIRSQG_CHECK aborts) and degenerate-input behaviour
// across modules.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/measures.h"
#include "core/online_qgen.h"
#include "core/pareto_archive.h"
#include "graph/graph_builder.h"
#include "workload/instance_stream.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

using ContractsDeathTest = testing::Test;

TEST(ContractsDeathTest, RngRejectsZeroBound) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBounded(0), "positive bound");
}

TEST(ContractsDeathTest, RngRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextInRange(3, 2), "lo <= hi");
}

TEST(ContractsDeathTest, ArchiveRejectsNonPositiveEpsilon) {
  EXPECT_DEATH(ParetoArchive(0.0), "epsilon must be positive");
  EXPECT_DEATH(ParetoArchive(-1.0), "epsilon");
}

TEST(ContractsDeathTest, ArchiveEpsilonOnlyGrows) {
  ParetoArchive archive(0.5);
  EXPECT_DEATH(archive.SetEpsilon(0.1), "only grow");
}

TEST(ContractsDeathTest, OnlineRejectsZeroK) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 0;
  EXPECT_DEATH(OnlineQGen(config, online), "k must be positive");
}

TEST(ContractsDeathTest, DictionaryRejectsBadId) {
  Dictionary d;
  d.Intern("only");
  EXPECT_DEATH(d.Name(7), "out of range");
}

TEST(DegenerateInputTest, DiversityOnUnknownLabelIsZero) {
  GraphBuilder b;
  b.AddNode("only");
  Graph g = std::move(b).Build().ValueOrDie();
  DiversityEvaluator eval(g, kInvalidLabel, DiversityConfig{});
  EXPECT_DOUBLE_EQ(eval.Diversity({}), 0.0);
  EXPECT_DOUBLE_EQ(eval.MaxDiversity(), 0.0);
}

TEST(DegenerateInputTest, DiversityWithoutAttributes) {
  GraphBuilder b;
  NodeId a = b.AddNode("bare");
  NodeId c = b.AddNode("bare");
  b.AddEdge(a, c, "e");
  Graph g = std::move(b).Build().ValueOrDie();
  DiversityEvaluator eval(g, g.schema().NodeLabelId("bare"), DiversityConfig{});
  // No attributes: all pairwise distances are 0; relevance still counts.
  EXPECT_DOUBLE_EQ(eval.Distance(a, c), 0.0);
  EXPECT_GT(eval.Diversity({a, c}), 0.0);  // Degree relevance.
}

TEST(DegenerateInputTest, SingleNodeLabelHasZeroPairScale) {
  GraphBuilder b;
  NodeId only = b.AddNode("solo");
  b.SetAttr(only, "x", AttrValue(int64_t{1}));
  Graph g = std::move(b).Build().ValueOrDie();
  DiversityConfig cfg;
  cfg.lambda = 1.0;  // Pure pairwise term, but |V_label| == 1.
  DiversityEvaluator eval(g, g.schema().NodeLabelId("solo"), cfg);
  EXPECT_DOUBLE_EQ(eval.Diversity({only}), 0.0);
}

TEST(DegenerateInputTest, EmptyGroupSetScoresEverythingFeasible) {
  GroupSet groups = GroupSet::Create(5, {}, {}).ValueOrDie();
  CoverageEvaluator eval(groups);
  CoverageResult r = eval.Evaluate({0, 1, 2});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 0.0);  // C = 0.
}

TEST(DegenerateInputTest, ZeroConstraintGroupAlwaysSatisfied) {
  GroupSet groups = GroupSet::Create(5, {{0, 1}}, {0}).ValueOrDie();
  CoverageEvaluator eval(groups);
  EXPECT_TRUE(eval.Evaluate({}).feasible);
  EXPECT_TRUE(eval.Evaluate({0, 1}).feasible);  // Over-coverage stays feasible.
}

TEST(DegenerateInputTest, OnlineKOneMaintainsSingleton) {
  SmallScenario s;
  QGenConfig config = s.Config();
  OnlineConfig online;
  online.k = 1;
  online.window = 5;
  OnlineQGen gen(config, online);
  InstanceStream stream(*s.tmpl, *s.domains, 77);
  Instantiation inst;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(stream.Next(&inst));
    gen.Process(inst);
    EXPECT_LE(gen.size(), 1u);
  }
  EXPECT_EQ(gen.size(), 1u);
}

TEST(DegenerateInputTest, TemplateWithoutVariablesHasSingletonSpace) {
  SmallScenario s;
  QueryTemplate t(s.schema);
  QNodeId d = t.AddNode("director");
  QNodeId u = t.AddNode("user");
  t.SetOutputNode(d);
  t.AddEdge(u, d, "recommend");
  VariableDomains domains = VariableDomains::Build(s.graph, t).ValueOrDie();
  EXPECT_EQ(domains.InstanceSpaceSize(t), 1u);
  EXPECT_EQ(Instantiation::MostRelaxed(t), Instantiation::MostRefined(t, domains));
}

}  // namespace
}  // namespace fairsqg
