// Property suite: random attributed graphs survive a text-serialization
// round trip exactly (structure, labels, typed attributes, adjacency).

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace fairsqg {
namespace {

Graph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  const char* labels[] = {"alpha", "beta", "gamma"};
  const char* elabels[] = {"knows", "likes"};
  size_t n = 5 + rng.NextBounded(30);
  for (size_t i = 0; i < n; ++i) {
    NodeId v = b.AddNode(labels[rng.NextBounded(3)]);
    if (rng.NextBernoulli(0.8)) {
      b.SetAttr(v, "count", AttrValue(rng.NextInRange(-100, 100)));
    }
    if (rng.NextBernoulli(0.5)) {
      b.SetAttr(v, "score",
                AttrValue(static_cast<double>(rng.NextInRange(0, 1000)) / 8.0));
    }
    if (rng.NextBernoulli(0.6)) {
      std::string tag = "tag-" + std::to_string(rng.NextBounded(6));
      b.SetAttr(v, "tag", AttrValue(tag));
    }
  }
  size_t m = rng.NextBounded(4 * n);
  for (size_t i = 0; i < m; ++i) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    if (from != to) b.AddEdge(from, to, elabels[rng.NextBounded(2)]);
  }
  return std::move(b).Build().ValueOrDie();
}

class GraphIoFuzzTest : public testing::TestWithParam<int> {};

TEST_P(GraphIoFuzzTest, RoundTripIsExact) {
  Graph g = RandomGraph(static_cast<uint64_t>(GetParam()) * 7901 + 3);
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphText(g, out).ok());
  std::istringstream in(out.str());
  Result<Graph> r = ReadGraphText(in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = *r;

  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g2.schema().NodeLabelName(g2.node_label(v)),
              g.schema().NodeLabelName(g.node_label(v)));
    auto attrs = g.attrs(v);
    auto attrs2 = g2.attrs(v);
    ASSERT_EQ(attrs2.size(), attrs.size()) << "node " << v;
    for (size_t i = 0; i < attrs.size(); ++i) {
      EXPECT_EQ(g2.schema().AttrName(attrs2[i].attr),
                g.schema().AttrName(attrs[i].attr));
      EXPECT_EQ(attrs2[i].value, attrs[i].value);
      EXPECT_EQ(attrs2[i].value.is_int(), attrs[i].value.is_int());
      EXPECT_EQ(attrs2[i].value.is_double(), attrs[i].value.is_double());
    }
    // Adjacency as multisets of (neighbor, label name): the interning
    // order — and hence the in-memory sort within a (from, to) pair — may
    // legitimately differ after a round trip.
    auto edge_set = [](const Graph& graph, NodeId node) {
      std::vector<std::pair<NodeId, std::string>> out;
      for (const AdjEntry& e : graph.OutEdges(node)) {
        out.emplace_back(e.neighbor, graph.schema().EdgeLabelName(e.edge_label));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(edge_set(g2, v), edge_set(g, v)) << "node " << v;
  }
  // Second round trip is byte-identical (canonical form).
  std::ostringstream out2;
  ASSERT_TRUE(WriteGraphText(g2, out2).ok());
  EXPECT_EQ(out2.str(), out.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoFuzzTest, testing::Range(0, 15));

}  // namespace
}  // namespace fairsqg
