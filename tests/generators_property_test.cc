// Distribution properties of the synthetic dataset generators: the
// structural features the substitution argument in DESIGN.md relies on
// (degree/popularity skew, attribute mixes, schema invariants).

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "core/bi_qgen.h"
#include "core/rf_qgen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario_fixture.h"
#include "workload/citation_generator.h"
#include "workload/movie_kg_generator.h"
#include "workload/social_net_generator.h"

namespace fairsqg {
namespace {

TEST(SocialNetPropertyTest, EveryPersonWorksSomewhereExactlyOnce) {
  auto schema = std::make_shared<Schema>();
  SocialNetParams p;
  p.num_users = 400;
  p.num_directors = 50;
  p.num_orgs = 20;
  Graph g = GenerateSocialNetwork(p, schema).ValueOrDie();
  LabelId works = g.schema().EdgeLabelId("worksAt");
  for (const char* label : {"user", "director"}) {
    for (NodeId v : g.NodesWithLabel(g.schema().NodeLabelId(label))) {
      size_t count = 0;
      for (const AdjEntry& e : g.OutEdges(v)) {
        if (e.edge_label == works) ++count;
      }
      EXPECT_EQ(count, 1u) << label << " " << v;
    }
  }
}

TEST(SocialNetPropertyTest, GenderRatioTracksParameter) {
  auto schema = std::make_shared<Schema>();
  SocialNetParams p;
  p.num_users = 2000;
  p.num_directors = 200;
  p.num_orgs = 30;
  p.female_ratio = 0.3;
  Graph g = GenerateSocialNetwork(p, schema).ValueOrDie();
  AttrId gender = g.schema().AttrIdOf("gender");
  size_t female = 0;
  size_t total = 0;
  for (NodeId v : g.NodesWithLabel(g.schema().NodeLabelId("user"))) {
    const AttrValue* value = g.GetAttr(v, gender);
    ASSERT_NE(value, nullptr);
    ++total;
    if (value->as_string() == "female") ++female;
  }
  EXPECT_NEAR(static_cast<double>(female) / static_cast<double>(total), 0.3,
              0.05);
}

TEST(SocialNetPropertyTest, RecommendationPopularityIsSkewed) {
  auto schema = std::make_shared<Schema>();
  SocialNetParams p;
  p.num_users = 1500;
  p.num_directors = 150;
  p.num_orgs = 25;
  Graph g = GenerateSocialNetwork(p, schema).ValueOrDie();
  LabelId rec = g.schema().EdgeLabelId("recommend");
  // Preferential attachment: the most-recommended person should collect
  // far more endorsements than the median person.
  std::vector<size_t> in_rec;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t count = 0;
    for (const AdjEntry& e : g.InEdges(v)) {
      if (e.edge_label == rec) ++count;
    }
    in_rec.push_back(count);
  }
  std::sort(in_rec.begin(), in_rec.end());
  size_t max = in_rec.back();
  size_t median = in_rec[in_rec.size() / 2];
  EXPECT_GT(max, 5 * (median + 1));
}

TEST(MovieKgPropertyTest, EveryMovieHasDirectorAndStudio) {
  auto schema = std::make_shared<Schema>();
  MovieKgParams p;
  p.num_movies = 500;
  p.num_directors = 100;
  p.num_actors = 250;
  p.num_studios = 20;
  Graph g = GenerateMovieKg(p, schema).ValueOrDie();
  LabelId directed = g.schema().EdgeLabelId("directed");
  LabelId produced = g.schema().EdgeLabelId("producedBy");
  for (NodeId m : g.NodesWithLabel(g.schema().NodeLabelId("movie"))) {
    size_t directors = 0;
    for (const AdjEntry& e : g.InEdges(m)) {
      if (e.edge_label == directed) ++directors;
    }
    EXPECT_GE(directors, 1u) << "movie " << m;
    size_t studios = 0;
    for (const AdjEntry& e : g.OutEdges(m)) {
      if (e.edge_label == produced) ++studios;
    }
    EXPECT_EQ(studios, 1u) << "movie " << m;
  }
}

TEST(MovieKgPropertyTest, GenresAreSkewedCategoricals) {
  auto schema = std::make_shared<Schema>();
  MovieKgParams p;
  p.num_movies = 2000;
  p.num_directors = 300;
  p.num_actors = 800;
  p.num_studios = 40;
  Graph g = GenerateMovieKg(p, schema).ValueOrDie();
  AttrId genre = g.schema().AttrIdOf("genre");
  std::map<std::string, size_t> histogram;
  for (NodeId m : g.NodesWithLabel(g.schema().NodeLabelId("movie"))) {
    const AttrValue* value = g.GetAttr(m, genre);
    ASSERT_NE(value, nullptr);
    ++histogram[value->as_string()];
  }
  EXPECT_GE(histogram.size(), 5u);
  size_t max = 0;
  size_t min = p.num_movies;
  for (const auto& [name, count] : histogram) {
    max = std::max(max, count);
    min = std::min(min, count);
  }
  // DBpedia-like genre skew: top genre dwarfs the rarest.
  EXPECT_GT(max, 5 * min);
}

TEST(MovieKgPropertyTest, RatingsAreOneDecimalInRange) {
  auto schema = std::make_shared<Schema>();
  MovieKgParams p;
  p.num_movies = 300;
  p.num_directors = 60;
  p.num_actors = 150;
  p.num_studios = 10;
  Graph g = GenerateMovieKg(p, schema).ValueOrDie();
  AttrId rating = g.schema().AttrIdOf("rating");
  for (NodeId m : g.NodesWithLabel(g.schema().NodeLabelId("movie"))) {
    const AttrValue* value = g.GetAttr(m, rating);
    ASSERT_NE(value, nullptr);
    double r = value->as_double();
    EXPECT_GE(r, 3.0);
    EXPECT_LE(r, 9.5);
    EXPECT_NEAR(r * 10.0, std::round(r * 10.0), 1e-9) << "one decimal place";
  }
}

TEST(CitationPropertyTest, CitationsPointBackwardsInTime) {
  auto schema = std::make_shared<Schema>();
  CitationParams p;
  p.num_papers = 800;
  p.num_authors = 300;
  Graph g = GenerateCitationGraph(p, schema).ValueOrDie();
  LabelId cites = g.schema().EdgeLabelId("cites");
  AttrId year = g.schema().AttrIdOf("year");
  for (NodeId v : g.NodesWithLabel(g.schema().NodeLabelId("paper"))) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      if (e.edge_label != cites) continue;
      EXPECT_LE(g.GetAttr(e.neighbor, year)->as_int() - 2,
                g.GetAttr(v, year)->as_int())
          << v << " cites a much newer paper " << e.neighbor;
    }
  }
}

TEST(CitationPropertyTest, NumberOfCitationsMatchesInDegree) {
  auto schema = std::make_shared<Schema>();
  CitationParams p;
  p.num_papers = 600;
  p.num_authors = 200;
  Graph g = GenerateCitationGraph(p, schema).ValueOrDie();
  LabelId cites = g.schema().EdgeLabelId("cites");
  AttrId attr = g.schema().AttrIdOf("numberOfCitations");
  for (NodeId v : g.NodesWithLabel(g.schema().NodeLabelId("paper"))) {
    size_t in_cites = 0;
    for (const AdjEntry& e : g.InEdges(v)) {
      if (e.edge_label == cites) ++in_cites;
    }
    // The attribute is derived from pre-dedup edge counts, so it can only
    // exceed the deduplicated in-degree.
    EXPECT_GE(static_cast<size_t>(g.GetAttr(v, attr)->as_int()), in_cites);
  }
}

// Property form of the observability differential (DESIGN.md §13): across
// randomized scenario seeds and epsilons, enabling full tracing + metrics
// never changes a query generator's archive. Complements the fixed-config
// sweep in observability_test.cc with scenario diversity.
TEST(QGenPropertyTest, ArchivesInvariantUnderObservability) {
  std::mt19937 rng(7);
  for (int round = 0; round < 3; ++round) {
    uint64_t seed = rng();
    double epsilon = 0.02 + 0.02 * static_cast<double>(round);
    SmallScenario s(seed);
    struct {
      const char* name;
      std::function<Result<QGenResult>(const QGenConfig&)> run;
    } runners[] = {
        {"RfQGen", [](const QGenConfig& c) { return RfQGen::Run(c); }},
        {"BiQGen/parallel",
         [](const QGenConfig& c) { return BiQGen::RunParallel(c, 4); }},
    };
    for (const auto& runner : runners) {
      std::string label = std::string(runner.name) + " seed=" +
                          std::to_string(seed) +
                          " eps=" + std::to_string(epsilon);
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);
      QGenResult plain = runner.run(s.Config(epsilon)).ValueOrDie();

      obs::Tracer::Global().Enable(obs::TraceDetail::kFull);
      obs::MetricsRegistry::Global().Reset();
      obs::MetricsRegistry::Global().set_enabled(true);
      QGenResult observed = runner.run(s.Config(epsilon)).ValueOrDie();
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);

      ASSERT_EQ(plain.pareto.size(), observed.pareto.size()) << label;
      for (size_t i = 0; i < plain.pareto.size(); ++i) {
        EXPECT_EQ(plain.pareto[i]->inst, observed.pareto[i]->inst) << label;
        EXPECT_EQ(plain.pareto[i]->matches, observed.pareto[i]->matches)
            << label;
        EXPECT_DOUBLE_EQ(plain.pareto[i]->obj.diversity,
                         observed.pareto[i]->obj.diversity)
            << label;
        EXPECT_DOUBLE_EQ(plain.pareto[i]->obj.coverage,
                         observed.pareto[i]->obj.coverage)
            << label;
      }
      EXPECT_EQ(plain.stats.verified, observed.stats.verified) << label;
    }
  }
}

TEST(GeneratorsTest, RejectEmptyPopulations) {
  auto schema = std::make_shared<Schema>();
  SocialNetParams s;
  s.num_users = 0;
  EXPECT_FALSE(GenerateSocialNetwork(s, schema).ok());
  MovieKgParams m;
  m.num_studios = 0;
  EXPECT_FALSE(GenerateMovieKg(m, schema).ok());
  CitationParams c;
  c.num_papers = 0;
  EXPECT_FALSE(GenerateCitationGraph(c, schema).ok());
}

}  // namespace
}  // namespace fairsqg
