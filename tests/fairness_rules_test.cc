#include "core/fairness_rules.h"

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

GroupSet MakeGroups(std::vector<size_t> sizes) {
  std::vector<NodeSet> sets;
  NodeId next = 0;
  for (size_t size : sizes) {
    NodeSet set;
    for (size_t i = 0; i < size; ++i) set.push_back(next++);
    sets.push_back(std::move(set));
  }
  std::vector<size_t> zeros(sizes.size(), 0);
  return GroupSet::Create(next, std::move(sets), std::move(zeros)).ValueOrDie();
}

TEST(EqualOpportunityTest, EvenSplit) {
  GroupSet groups = MakeGroups({50, 50});
  GroupSet eo = EqualOpportunityConstraints(100, groups, 40).ValueOrDie();
  EXPECT_EQ(eo.constraint(0), 20u);
  EXPECT_EQ(eo.constraint(1), 20u);
  EXPECT_EQ(eo.total_constraint(), 40u);
}

TEST(EqualOpportunityTest, RemainderToFirstGroups) {
  GroupSet groups = MakeGroups({50, 50, 50});
  GroupSet eo = EqualOpportunityConstraints(150, groups, 10).ValueOrDie();
  EXPECT_EQ(eo.constraint(0), 4u);
  EXPECT_EQ(eo.constraint(1), 3u);
  EXPECT_EQ(eo.constraint(2), 3u);
}

TEST(EqualOpportunityTest, FailsWhenGroupTooSmall) {
  GroupSet groups = MakeGroups({50, 5});
  EXPECT_TRUE(EqualOpportunityConstraints(55, groups, 40)
                  .status()
                  .IsFailedPrecondition());
}

TEST(DisparateImpactTest, EightyPercentRule) {
  GroupSet groups = MakeGroups({100, 60});
  GroupSet di = DisparateImpactConstraints(160, groups, 50, 0.8).ValueOrDie();
  // Majority is group 0 (size 100). Targets: c + ceil(0.8 c) <= 50.
  // c=28 -> 28 + 23 = 51 > 50; c=27 -> 27 + 22 = 49 <= 50.
  EXPECT_EQ(di.constraint(0), 27u);
  EXPECT_EQ(di.constraint(1), 22u);
  EXPECT_LE(di.total_constraint(), 50u);
  // The minority target honours the 80% ratio.
  EXPECT_GE(static_cast<double>(di.constraint(1)) + 1e-9,
            0.8 * static_cast<double>(di.constraint(0)));
}

TEST(DisparateImpactTest, MajorityIsLargestGroup) {
  GroupSet groups = MakeGroups({30, 90, 50});
  GroupSet di = DisparateImpactConstraints(170, groups, 60, 0.5).ValueOrDie();
  // Group 1 (90 nodes) is the majority; others get ceil(0.5 * c).
  EXPECT_GT(di.constraint(1), di.constraint(0));
  EXPECT_EQ(di.constraint(0), di.constraint(2));
}

TEST(DisparateImpactTest, CappedByMinorityGroupSize) {
  GroupSet groups = MakeGroups({100, 4});
  GroupSet di = DisparateImpactConstraints(104, groups, 100, 0.8).ValueOrDie();
  // Minority has 4 nodes: c_major limited to 5 (ceil(0.8*5)=4).
  EXPECT_LE(di.constraint(1), 4u);
  EXPECT_LE(di.constraint(0), 5u);
}

TEST(DisparateImpactTest, RejectsBadRatio) {
  GroupSet groups = MakeGroups({10, 10});
  EXPECT_TRUE(
      DisparateImpactConstraints(20, groups, 10, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      DisparateImpactConstraints(20, groups, 10, 1.5).status().IsInvalidArgument());
}

TEST(DisparateImpactTest, RejectsZeroBudget) {
  GroupSet groups = MakeGroups({10, 10});
  EXPECT_TRUE(DisparateImpactConstraints(20, groups, 0, 0.8)
                  .status()
                  .IsFailedPrecondition());
}

TEST(SatisfiesDisparateImpactTest, Checks) {
  EXPECT_TRUE(SatisfiesDisparateImpact({10, 8}, 0.8));
  EXPECT_FALSE(SatisfiesDisparateImpact({10, 7}, 0.8));
  EXPECT_TRUE(SatisfiesDisparateImpact({5, 5, 5}, 1.0));
  EXPECT_TRUE(SatisfiesDisparateImpact({}, 0.8));
  EXPECT_TRUE(SatisfiesDisparateImpact({0, 0}, 0.8));
}

}  // namespace
}  // namespace fairsqg
