#include "core/verifier.h"

#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "query/refinement.h"
#include "scenario_fixture.h"

namespace fairsqg {
namespace {

TEST(VerifierTest, RootInstanceIsFeasible) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);
  EvaluatedPtr root = verifier.Verify(Instantiation::MostRelaxed(*s.tmpl));
  EXPECT_TRUE(root->feasible) << "fixture must have a feasible root";
  EXPECT_GT(root->matches.size(), 0u);
  EXPECT_GT(root->obj.diversity, 0.0);
}

TEST(VerifierTest, VerifySequenceNumbersIncrease) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);
  EvaluatedPtr a = verifier.Verify(Instantiation::MostRelaxed(*s.tmpl));
  EvaluatedPtr b = verifier.Verify(Instantiation::MostRefined(*s.tmpl, *s.domains));
  EXPECT_LT(a->verify_seq, b->verify_seq);
  EXPECT_EQ(verifier.num_verified(), 2u);
}

TEST(VerifierTest, RefinedVerificationMatchesFull) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);

  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  CandidateSpace root_cands;
  EvaluatedPtr root_eval = verifier.Verify(root, &root_cands);

  // Walk every one-step refinement and compare incremental vs full.
  auto children = LatticeNeighbors::RefineChildren(
      *s.tmpl, *s.domains, root, RefinementHints::None(*s.tmpl));
  ASSERT_FALSE(children.empty());
  for (const LatticeStep& step : children) {
    EvaluatedPtr inc = verifier.VerifyRefined(step.inst, root_cands,
                                              *root_eval, step.var_index);
    EvaluatedPtr full = verifier.Verify(step.inst);
    EXPECT_EQ(inc->matches, full->matches);
    EXPECT_NEAR(inc->obj.diversity, full->obj.diversity,
                1e-7 * (1.0 + full->obj.diversity));
    EXPECT_DOUBLE_EQ(inc->obj.coverage, full->obj.coverage);
    EXPECT_EQ(inc->feasible, full->feasible);
  }
}

TEST(VerifierTest, RefinedChainTwoLevels) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);

  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  CandidateSpace c0;
  EvaluatedPtr e0 = verifier.Verify(root, &c0);

  Instantiation mid = root;
  mid.set_range_binding(0, 1);
  CandidateSpace c1;
  EvaluatedPtr e1 = verifier.VerifyRefined(mid, c0, *e0, 0, &c1);

  Instantiation leaf = mid;
  leaf.set_edge_binding(0, 1);
  EvaluatedPtr e2 = verifier.VerifyRefined(
      leaf, c1, *e1, static_cast<uint32_t>(s.tmpl->num_range_vars()));
  EvaluatedPtr full = verifier.Verify(leaf);
  EXPECT_EQ(e2->matches, full->matches);
}

TEST(VerifierTest, RelaxedVerificationMatchesFull) {
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);

  Instantiation bottom = Instantiation::MostRefined(*s.tmpl, *s.domains);
  EvaluatedPtr bottom_eval = verifier.Verify(bottom);

  auto children = LatticeNeighbors::RelaxChildren(*s.tmpl, *s.domains, bottom);
  ASSERT_FALSE(children.empty());
  for (const LatticeStep& step : children) {
    EvaluatedPtr inc = verifier.VerifyRelaxed(step.inst, *bottom_eval);
    EvaluatedPtr full = verifier.Verify(step.inst);
    EXPECT_EQ(inc->matches, full->matches);
    EXPECT_NEAR(inc->obj.diversity, full->obj.diversity,
                1e-7 * (1.0 + full->obj.diversity));
    EXPECT_DOUBLE_EQ(inc->obj.coverage, full->obj.coverage);
  }
}

TEST(VerifierTest, Lemma2MonotonicityAcrossLattice) {
  // Sweep the full space and check Lemma 2 on every comparable pair:
  // q' refines q  =>  q'(G) ⊆ q(G), δ(q') <= δ(q), and f(q') >= f(q)
  // when both are feasible.
  SmallScenario s;
  QGenConfig config = s.Config();
  InstanceVerifier verifier(config);
  GenStats stats;
  auto all = VerifyAllInstances(config, &verifier, &stats).ValueOrDie();
  ASSERT_GT(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = 0; j < all.size(); ++j) {
      if (i == j) continue;
      const EvaluatedPtr& a = all[i];
      const EvaluatedPtr& b = all[j];
      if (!b->inst.Refines(a->inst)) continue;
      EXPECT_LE(b->obj.diversity, a->obj.diversity + 1e-9);
      EXPECT_TRUE(std::includes(a->matches.begin(), a->matches.end(),
                                b->matches.begin(), b->matches.end()));
      if (a->feasible && b->feasible) {
        EXPECT_GE(b->obj.coverage, a->obj.coverage - 1e-9);
      }
      if (!a->feasible) {
        EXPECT_FALSE(b->feasible);
      }
    }
  }
}

TEST(VerifierTest, SweepCountsOneMatcherSearchPerChain) {
  // A literal sweep derives the whole x0 chain from one matcher pass: the
  // head search is the only instances_matched increment, and every member
  // is afterwards served from the sweep store without a new search.
  SmallScenario s;
  QGenConfig config = s.Config();
  config.use_sweep_verify = true;
  InstanceVerifier sweep(config);
  QGenConfig plain_config = s.Config();
  InstanceVerifier plain(plain_config);

  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  const uint64_t before = sweep.match_stats().instances_matched;
  EvaluatedPtr head = sweep.Verify(root);
  ASSERT_NE(head, nullptr);
  const uint64_t after_head = sweep.match_stats().instances_matched;
  EXPECT_EQ(after_head - before, 1u);
  EXPECT_EQ(head->matches, plain.Verify(root)->matches);

  Instantiation member = root;
  for (size_t k = 0; k < s.domains->size(0); ++k) {
    member.set_range_binding(0, static_cast<int32_t>(k));
    EvaluatedPtr got = sweep.Verify(member);
    EvaluatedPtr want = plain.Verify(member);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->matches, want->matches) << "x0=" << k;
    EXPECT_DOUBLE_EQ(got->obj.diversity, want->obj.diversity);
    EXPECT_DOUBLE_EQ(got->obj.coverage, want->obj.coverage);
  }
  // No member verification started another matcher search.
  EXPECT_EQ(sweep.match_stats().instances_matched, after_head);
  EXPECT_EQ(sweep.sweep_chains(), 1u);
  EXPECT_EQ(sweep.sweep_instances(), s.domains->size(0));
}

TEST(VerifierTest, IncrementalDisabledFallsBackToFull) {
  SmallScenario s;
  QGenConfig config = s.Config();
  config.use_incremental_verify = false;
  InstanceVerifier verifier(config);
  Instantiation root = Instantiation::MostRelaxed(*s.tmpl);
  CandidateSpace cands;
  EvaluatedPtr root_eval = verifier.Verify(root, &cands);
  Instantiation child = root;
  child.set_range_binding(0, 0);
  EvaluatedPtr inc = verifier.VerifyRefined(child, cands, *root_eval, 0);
  EvaluatedPtr full = verifier.Verify(child);
  EXPECT_EQ(inc->matches, full->matches);
}

}  // namespace
}  // namespace fairsqg
