// Table-driven negative-path coverage for the two text loaders: every
// malformed corpus file under tests/data/ must come back as a clean
// kInvalidArgument/kIoError Status carrying enough context to locate the
// defect (line numbers where applicable) — never a CHECK-abort.

#include <cctype>
#include <string>

#include <gtest/gtest.h>

#include "graph/csv_loader.h"
#include "query/template_io.h"

namespace fairsqg {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(FAIRSQG_TEST_DATA_DIR) + "/" + name;
}

std::string TestName(const std::string& raw) {
  std::string name = raw;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

struct CsvCase {
  const char* nodes;          // File under tests/data/.
  const char* edges;
  StatusCode code;
  const char* substring;      // Must appear in the error message.
};

class MalformedCsvTest : public ::testing::TestWithParam<CsvCase> {};

TEST_P(MalformedCsvTest, FailsWithStatus) {
  const CsvCase& c = GetParam();
  Result<Graph> g = LoadCsvGraphFiles(DataPath(c.nodes), DataPath(c.edges));
  ASSERT_FALSE(g.ok()) << c.nodes << " + " << c.edges;
  EXPECT_EQ(g.status().code(), c.code) << g.status().ToString();
  EXPECT_NE(g.status().message().find(c.substring), std::string::npos)
      << "message '" << g.status().message() << "' lacks '" << c.substring
      << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedCsvTest,
    ::testing::Values(
        CsvCase{"nodes_bad_header.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "id,label"},
        CsvCase{"nodes_missing_type.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, ":type"},
        CsvCase{"nodes_unknown_type.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "unknown column type"},
        CsvCase{"nodes_empty_attr_name.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "empty attribute column name"},
        CsvCase{"nodes_wrong_cell_count.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "node line 3"},
        CsvCase{"nodes_empty_id.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "empty id"},
        CsvCase{"nodes_duplicate_id.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "duplicate id 'n1'"},
        CsvCase{"nodes_empty_label.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "node line 2: empty label"},
        CsvCase{"nodes_bad_int.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "node line 2, column 'age'"},
        CsvCase{"nodes_int_out_of_range.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "column 'age'"},
        CsvCase{"nodes_bad_double.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "column 'score'"},
        CsvCase{"nodes_double_out_of_range.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "out of range"},
        CsvCase{"nodes_empty.csv", "edges_good.csv",
                StatusCode::kInvalidArgument, "node CSV is empty"},
        CsvCase{"nodes_good.csv", "edges_bad_header.csv",
                StatusCode::kInvalidArgument, "from,to,label"},
        CsvCase{"nodes_good.csv", "edges_wrong_cell_count.csv",
                StatusCode::kInvalidArgument, "edge line 2"},
        CsvCase{"nodes_good.csv", "edges_unknown_endpoint.csv",
                StatusCode::kInvalidArgument, "unknown endpoint id 'n9'"},
        CsvCase{"nodes_good.csv", "edges_empty_label.csv",
                StatusCode::kInvalidArgument, "empty edge label"},
        CsvCase{"nodes_good.csv", "edges_empty.csv",
                StatusCode::kInvalidArgument, "edge CSV is empty"}),
    [](const ::testing::TestParamInfo<CsvCase>& info) {
      return TestName(std::string(info.param.nodes) + "__" + info.param.edges);
    });

TEST(MalformedCsvTest, MissingFileIsIoError) {
  Result<Graph> g =
      LoadCsvGraphFiles(DataPath("no_such_file.csv"), DataPath("edges_good.csv"));
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(MalformedCsvTest, GoodPairLoads) {
  Result<Graph> g =
      LoadCsvGraphFiles(DataPath("nodes_good.csv"), DataPath("edges_good.csv"));
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
}

struct TemplateCase {
  const char* file;
  StatusCode code;
  const char* substring;
};

class MalformedTemplateTest : public ::testing::TestWithParam<TemplateCase> {};

TEST_P(MalformedTemplateTest, FailsWithStatus) {
  const TemplateCase& c = GetParam();
  Result<QueryTemplate> t =
      ReadTemplateFile(DataPath(c.file), std::make_shared<Schema>());
  ASSERT_FALSE(t.ok()) << c.file;
  EXPECT_EQ(t.status().code(), c.code) << t.status().ToString();
  EXPECT_NE(t.status().message().find(c.substring), std::string::npos)
      << "message '" << t.status().message() << "' lacks '" << c.substring
      << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedTemplateTest,
    ::testing::Values(
        TemplateCase{"tmpl_bad_record.qt", StatusCode::kInvalidArgument,
                     "line 3: unknown record 'frobnicate'"},
        TemplateCase{"tmpl_sparse_node_ids.qt", StatusCode::kInvalidArgument,
                     "line 2: node ids must be dense"},
        TemplateCase{"tmpl_bad_node_ref.qt", StatusCode::kInvalidArgument,
                     "line 5: node ref out of range: 'u9'"},
        TemplateCase{"tmpl_bad_op.qt", StatusCode::kInvalidArgument,
                     "line 4: bad comparison op: '>>'"},
        TemplateCase{"tmpl_bad_value.qt", StatusCode::kInvalidArgument,
                     "line 4: bad value tag"},
        TemplateCase{"tmpl_bad_value_int.qt", StatusCode::kInvalidArgument,
                     "line 4: not an int64"},
        TemplateCase{"tmpl_missing_header.qt", StatusCode::kInvalidArgument,
                     "missing 'template' header"},
        TemplateCase{"tmpl_duplicate_output.qt", StatusCode::kInvalidArgument,
                     "line 5: duplicate 'output' line"},
        TemplateCase{"tmpl_duplicate_edge_var.qt", StatusCode::kInvalidArgument,
                     "duplicate query edge"},
        TemplateCase{"tmpl_missing_output.qt", StatusCode::kInvalidArgument,
                     "missing 'output' line"},
        TemplateCase{"tmpl_disconnected.qt", StatusCode::kInvalidArgument,
                     "not connected"}),
    [](const ::testing::TestParamInfo<TemplateCase>& info) {
      return TestName(info.param.file);
    });

TEST(MalformedTemplateTest, MissingFileIsIoError) {
  Result<QueryTemplate> t =
      ReadTemplateFile(DataPath("no_such_template.qt"), std::make_shared<Schema>());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace fairsqg
