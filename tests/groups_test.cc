#include "core/groups.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace fairsqg {
namespace {

TEST(GroupSetTest, CreateBasics) {
  GroupSet g = GroupSet::Create(10, {{1, 2, 3}, {4, 5}}, {2, 1}).ValueOrDie();
  EXPECT_EQ(g.num_groups(), 2u);
  EXPECT_EQ(g.total_constraint(), 3u);
  EXPECT_EQ(g.constraint(0), 2u);
  EXPECT_EQ(g.group_of(2), 0u);
  EXPECT_EQ(g.group_of(5), 1u);
  EXPECT_EQ(g.group_of(0), GroupSet::kNoGroup);
  EXPECT_EQ(g.group_of(99), GroupSet::kNoGroup);
}

TEST(GroupSetTest, RejectsOverlap) {
  EXPECT_TRUE(GroupSet::Create(10, {{1, 2}, {2, 3}}, {1, 1})
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupSetTest, RejectsConstraintAboveSize) {
  EXPECT_TRUE(GroupSet::Create(10, {{1, 2}}, {3}).status().IsInvalidArgument());
}

TEST(GroupSetTest, RejectsOutOfRangeNode) {
  EXPECT_TRUE(GroupSet::Create(3, {{7}}, {1}).status().IsInvalidArgument());
}

TEST(GroupSetTest, RejectsArityMismatch) {
  EXPECT_TRUE(GroupSet::Create(3, {{1}}, {1, 1}).status().IsInvalidArgument());
}

TEST(GroupSetTest, DeduplicatesWithinGroup) {
  GroupSet g = GroupSet::Create(5, {{2, 2, 1}}, {2}).ValueOrDie();
  EXPECT_EQ(g.group(0), NodeSet({1, 2}));
}

TEST(GroupSetTest, CoverageCounts) {
  GroupSet g = GroupSet::Create(10, {{1, 2, 3}, {4, 5}}, {1, 1}).ValueOrDie();
  std::vector<size_t> counts = g.CoverageCounts({1, 3, 4, 9});
  EXPECT_EQ(counts, (std::vector<size_t>{2, 1}));
  EXPECT_EQ(g.CoverageCounts({}), (std::vector<size_t>{0, 0}));
}

Graph MakeLabeledGraph() {
  GraphBuilder b;
  const char* genres[] = {"action", "action", "action", "romance",
                          "romance", "horror", "horror", "horror"};
  for (const char* genre : genres) {
    NodeId v = b.AddNode("movie");
    b.SetAttr(v, "genre", AttrValue(std::string(genre)));
  }
  NodeId d = b.AddNode("director");
  b.AddEdge(d, 0, "directed");
  return std::move(b).Build().ValueOrDie();
}

TEST(GroupSetTest, FromCategoricalAttrKeepsMostPopulous) {
  Graph g = MakeLabeledGraph();
  LabelId movie = g.schema().NodeLabelId("movie");
  AttrId genre = g.schema().AttrIdOf("genre");
  GroupSet groups =
      GroupSet::FromCategoricalAttr(g, movie, genre, 2, 2).ValueOrDie();
  EXPECT_EQ(groups.num_groups(), 2u);
  // action (3) and horror (3) outrank romance (2).
  EXPECT_EQ(groups.name(0), "action");
  EXPECT_EQ(groups.name(1), "horror");
  EXPECT_EQ(groups.group(0).size(), 3u);
  EXPECT_EQ(groups.total_constraint(), 4u);
}

TEST(GroupSetTest, FromCategoricalAttrRejectsTooManyGroups) {
  Graph g = MakeLabeledGraph();
  LabelId movie = g.schema().NodeLabelId("movie");
  AttrId genre = g.schema().AttrIdOf("genre");
  EXPECT_TRUE(GroupSet::FromCategoricalAttr(g, movie, genre, 7, 1)
                  .status()
                  .IsFailedPrecondition());
}

TEST(GroupSetTest, FromCategoricalAttrRejectsHighCoverage) {
  Graph g = MakeLabeledGraph();
  LabelId movie = g.schema().NodeLabelId("movie");
  AttrId genre = g.schema().AttrIdOf("genre");
  EXPECT_TRUE(GroupSet::FromCategoricalAttr(g, movie, genre, 2, 10)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace fairsqg
