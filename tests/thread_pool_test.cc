#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace fairsqg {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<size_t> count{0};
  constexpr size_t kTasks = 500;
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(pool.stats().executed, kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPoolTest, WorkerIndexIdentifiesPoolThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.WorkerIndex(), ThreadPool::kNotAWorker);
  std::atomic<size_t> bad_index{0};
  for (size_t i = 0; i < 64; ++i) {
    pool.Submit([&] {
      if (pool.WorkerIndex() >= pool.num_workers()) bad_index.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad_index.load(), 0u);
}

TEST(ThreadPoolTest, TasksMaySubmitFurtherTasks) {
  ThreadPool pool(4);
  std::atomic<size_t> count{0};
  constexpr size_t kParents = 16;
  constexpr size_t kChildren = 8;
  for (size_t i = 0; i < kParents; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      for (size_t j = 0; j < kChildren; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  // Wait() must cover tasks transitively submitted by tasks.
  pool.Wait();
  EXPECT_EQ(count.load(), kParents * (1 + kChildren));
}

TEST(ThreadPoolTest, StealsFromABusyWorkersQueue) {
  ThreadPool pool(2);
  constexpr size_t kTasks = 16;
  std::atomic<size_t> blocked_worker{ThreadPool::kNotAWorker};
  std::atomic<size_t> done{0};
  // Occupy one worker until every follow-up task has run...
  pool.Submit([&] {
    blocked_worker.store(pool.WorkerIndex());
    while (done.load() < kTasks) std::this_thread::yield();
  });
  while (blocked_worker.load() == ThreadPool::kNotAWorker) {
    std::this_thread::yield();
  }
  // ...then pile the follow-ups onto that worker's own deque: the other
  // worker is the only one that can run them, and only by stealing.
  for (size_t i = 0; i < kTasks; ++i) {
    pool.SubmitOn(blocked_worker.load(), [&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GE(pool.stats().stolen, kTasks);
}

TEST(ThreadPoolTest, ExceptionPropagatesToWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: the pool stays usable and Wait() is clean again.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, FirstOfSeveralExceptionsIsReported) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(pool.stats().executed, 8u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<size_t> done{0};
  constexpr size_t kTasks = 200;
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): shutdown itself must not drop queued work.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorSwallowsUnobservedExceptions) {
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("unobserved"); });
    // Destroying without Wait() must not terminate the process.
  }
  SUCCEED();
}

}  // namespace
}  // namespace fairsqg
