#include "matching/subgraph_matcher.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "matching/brute_force.h"

namespace fairsqg {
namespace {

struct TalentFixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  Graph graph;
  QueryTemplate tmpl;
  VariableDomains domains;

  TalentFixture() : graph(MakeGraph()), tmpl(schema), domains(MakeTemplate()) {}

  // Users 0..3 (exp 12, 8, 15, 3), directors 4, 5, org 6.
  // 0 -rec-> 4, 1 -rec-> 4, 2 -rec-> 5, 0 -worksAt-> 6, 2 -worksAt-> 6.
  Graph MakeGraph() {
    GraphBuilder b(schema);
    int exps[] = {12, 8, 15, 3};
    for (int e : exps) {
      NodeId v = b.AddNode("user");
      b.SetAttr(v, "yearsOfExp", AttrValue(int64_t{e}));
    }
    b.AddNode("director");
    b.AddNode("director");
    NodeId org = b.AddNode("org");
    b.SetAttr(org, "employees", AttrValue(int64_t{1000}));
    b.AddEdge(0, 4, "recommend");
    b.AddEdge(1, 4, "recommend");
    b.AddEdge(2, 5, "recommend");
    b.AddEdge(0, 6, "worksAt");
    b.AddEdge(2, 6, "worksAt");
    return std::move(b).Build().ValueOrDie();
  }

  // u0(user, exp >= x0) -recommend-> u1(director, output).
  VariableDomains MakeTemplate() {
    QNodeId u0 = tmpl.AddNode("user");
    QNodeId u1 = tmpl.AddNode("director");
    tmpl.SetOutputNode(u1);
    tmpl.AddRangeLiteral(u0, "yearsOfExp", CompareOp::kGe);
    tmpl.AddEdge(u0, u1, "recommend");
    return VariableDomains::Build(graph, tmpl).ValueOrDie();
  }

  QueryInstance Materialize(int32_t x0) {
    return QueryInstance::Materialize(tmpl, domains, Instantiation({x0}, {}));
  }
};

TEST(SubgraphMatcherTest, WildcardMatchesAllRecommendedDirectors) {
  TalentFixture f;
  SubgraphMatcher m(f.graph);
  QueryInstance q = f.Materialize(kWildcardBinding);
  EXPECT_EQ(m.MatchOutput(q), NodeSet({4, 5}));
}

TEST(SubgraphMatcherTest, PredicateFiltersRecommenders) {
  TalentFixture f;
  SubgraphMatcher m(f.graph);
  // Domain ascending {3, 8, 12, 15}; index 2 -> exp >= 12: users 0 and 2.
  QueryInstance q = f.Materialize(2);
  EXPECT_EQ(m.MatchOutput(q), NodeSet({4, 5}));
  // Index 3 -> exp >= 15: only user 2 -> only director 5.
  QueryInstance q2 = f.Materialize(3);
  EXPECT_EQ(m.MatchOutput(q2), NodeSet({5}));
}

TEST(SubgraphMatcherTest, DirectionMatters) {
  TalentFixture f;
  // Reverse the edge: director -recommend-> user never occurs in the data.
  QueryTemplate t(f.schema);
  QNodeId u0 = t.AddNode("user");
  QNodeId u1 = t.AddNode("director");
  t.SetOutputNode(u1);
  t.AddEdge(u1, u0, "recommend");
  VariableDomains d = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  EXPECT_TRUE(m.MatchOutput(q).empty());
}

TEST(SubgraphMatcherTest, EdgeLabelMatters) {
  TalentFixture f;
  QueryTemplate t(f.schema);
  QNodeId u0 = t.AddNode("user");
  QNodeId u1 = t.AddNode("director");
  t.SetOutputNode(u1);
  t.AddEdge(u0, u1, "worksAt");  // No user worksAt a director.
  VariableDomains d = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  EXPECT_TRUE(m.MatchOutput(q).empty());
}

TEST(SubgraphMatcherTest, InjectivityRequiresDistinctRecommenders) {
  TalentFixture f;
  // Two distinct users recommending the same director: only director 4.
  QueryTemplate t(f.schema);
  QNodeId a = t.AddNode("user");
  QNodeId b = t.AddNode("user");
  QNodeId dir = t.AddNode("director");
  t.SetOutputNode(dir);
  t.AddEdge(a, dir, "recommend");
  t.AddEdge(b, dir, "recommend");
  VariableDomains d = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  EXPECT_EQ(m.MatchOutput(q), NodeSet({4}));
}

TEST(SubgraphMatcherTest, SingleNodeQueryMatchesByPredicate) {
  TalentFixture f;
  QueryTemplate t(f.schema);
  QNodeId u = t.AddNode("user");
  t.AddLiteral(u, "yearsOfExp", CompareOp::kGt, AttrValue(int64_t{10}));
  VariableDomains d = VariableDomains::Build(f.graph, t).ValueOrDie();
  QueryInstance q = QueryInstance::Materialize(t, d, Instantiation::MostRelaxed(t));
  SubgraphMatcher m(f.graph);
  EXPECT_EQ(m.MatchOutput(q), NodeSet({0, 2}));
}

TEST(SubgraphMatcherTest, OutputRestrictLimitsResults) {
  TalentFixture f;
  SubgraphMatcher m(f.graph);
  QueryInstance q = f.Materialize(kWildcardBinding);
  CandidateSpace cands = CandidateSpace::Build(f.graph, q);
  NodeSet restrict_to = {5};
  EXPECT_EQ(m.MatchOutput(q, cands, &restrict_to), NodeSet({5}));
  NodeSet empty;
  EXPECT_TRUE(m.MatchOutput(q, cands, &empty).empty());
}

TEST(SubgraphMatcherTest, DerivedCandidatesMatchFreshBuild) {
  TalentFixture f;
  QueryInstance parent = f.Materialize(1);
  QueryInstance child = f.Materialize(2);
  CandidateSpace parent_cands = CandidateSpace::Build(f.graph, parent);
  CandidateSpace derived =
      CandidateSpace::DeriveRefined(f.graph, child, parent_cands, 0);
  CandidateSpace fresh = CandidateSpace::Build(f.graph, child);
  for (QNodeId u = 0; u < f.tmpl.num_nodes(); ++u) {
    EXPECT_EQ(derived.of(u), fresh.of(u)) << "node " << u;
  }
}

TEST(SubgraphMatcherTest, StatsAccumulate) {
  TalentFixture f;
  SubgraphMatcher m(f.graph);
  m.MatchOutput(f.Materialize(0));
  EXPECT_EQ(m.stats().instances_matched, 1u);
  EXPECT_GT(m.stats().output_candidates_tested, 0u);
  m.mutable_stats().Reset();
  EXPECT_EQ(m.stats().instances_matched, 0u);
}

// ---------------------------------------------------------------------------
// Randomized cross-validation against the brute-force reference matcher.
// ---------------------------------------------------------------------------

class MatcherRandomTest : public testing::TestWithParam<int> {};

TEST_P(MatcherRandomTest, AgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto schema = std::make_shared<Schema>();

  // Random labelled graph with 1-2 numeric attrs per node.
  GraphBuilder b(schema);
  const int n = 14;
  const char* labels[] = {"a", "b", "c"};
  const char* elabels[] = {"e", "f"};
  for (int i = 0; i < n; ++i) {
    NodeId v = b.AddNode(labels[rng.NextBounded(3)]);
    b.SetAttr(v, "p", AttrValue(rng.NextInRange(0, 5)));
    if (rng.NextBernoulli(0.7)) {
      b.SetAttr(v, "q", AttrValue(rng.NextInRange(0, 3)));
    }
  }
  for (int i = 0; i < 30; ++i) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    if (from != to) b.AddEdge(from, to, elabels[rng.NextBounded(2)]);
  }
  Graph g = std::move(b).Build().ValueOrDie();

  // Random connected template of 3-4 nodes with literals and optional edges.
  QueryTemplate t(schema);
  int qn = 3 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < qn; ++i) t.AddNode(labels[rng.NextBounded(3)]);
  t.SetOutputNode(static_cast<QNodeId>(rng.NextBounded(qn)));
  for (int i = 1; i < qn; ++i) {
    // Tree backbone keeps the template connected.
    QNodeId other = static_cast<QNodeId>(rng.NextBounded(i));
    if (rng.NextBernoulli(0.5)) {
      t.AddEdge(static_cast<QNodeId>(i), other, elabels[rng.NextBounded(2)]);
    } else {
      t.AddEdge(other, static_cast<QNodeId>(i), elabels[rng.NextBounded(2)]);
    }
  }
  if (rng.NextBernoulli(0.6)) {
    QNodeId x = static_cast<QNodeId>(rng.NextBounded(qn));
    QNodeId y = static_cast<QNodeId>(rng.NextBounded(qn));
    const char* el = elabels[rng.NextBounded(2)];
    LabelId el_id = schema->EdgeLabelId(el);
    bool duplicate = false;
    for (const QueryEdge& e : t.edges()) {
      if (e.from == x && e.to == y && e.label == el_id) duplicate = true;
    }
    if (x != y && !duplicate) t.AddVariableEdge(x, y, el);
  }
  RangeVarId var =
      t.AddRangeLiteral(static_cast<QNodeId>(rng.NextBounded(qn)), "p",
                        rng.NextBernoulli(0.5) ? CompareOp::kGe : CompareOp::kLe);
  ASSERT_TRUE(t.Validate().ok());
  VariableDomains d = VariableDomains::Build(g, t).ValueOrDie();

  SubgraphMatcher m(g);
  // Exercise several instantiations per topology.
  int max_idx = static_cast<int>(d.size(var));
  for (int32_t binding = -1; binding < max_idx; ++binding) {
    for (uint8_t eb = 0; eb < (t.num_edge_vars() > 0 ? 2 : 1); ++eb) {
      std::vector<uint8_t> edge_bindings(t.num_edge_vars(), eb);
      QueryInstance q = QueryInstance::Materialize(
          t, d, Instantiation({binding}, std::move(edge_bindings)));
      NodeSet fast = m.MatchOutput(q);
      NodeSet slow = BruteForceMatchOutput(g, q);
      ASSERT_EQ(fast, slow) << "seed=" << GetParam() << " binding=" << binding
                            << " edges=" << static_cast<int>(eb) << "\n"
                            << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherRandomTest, testing::Range(0, 25));

}  // namespace
}  // namespace fairsqg
