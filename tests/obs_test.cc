// Unit coverage of the observability primitives: the self-contained JSON
// value (dump/parse round-trips, escape handling, error reporting), the
// sharded metrics registry (cross-thread counters, histogram bucketing),
// and the span tracer (ring wrap, parent chains, detail gating).

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairsqg::obs {
namespace {

// ---------------------------------------------------------------- Json --

TEST(ObsJsonTest, DumpIsDeterministicAndSorted) {
  Json obj = Json::Object();
  obj.Set("zulu", Json(static_cast<int64_t>(1)));
  obj.Set("alpha", Json("first"));
  obj.Set("mike", Json(true));
  // std::map ordering: keys dump sorted regardless of insertion order.
  EXPECT_EQ(obj.Dump(0), R"({"alpha":"first","mike":true,"zulu":1})");
}

TEST(ObsJsonTest, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Json(static_cast<uint64_t>(1) << 52).Dump(0), "4503599627370496");
  EXPECT_EQ(Json(static_cast<int64_t>(-42)).Dump(0), "-42");
  EXPECT_EQ(Json(0.5).Dump(0), "0.5");
  // Non-finite numbers have no JSON spelling; they degrade to null.
  EXPECT_EQ(Json(std::nan("")).Dump(0), "null");
}

TEST(ObsJsonTest, StringEscapesRoundTrip) {
  const std::string raw = "tab\there \"quoted\" back\\slash\nnewline \x01 end";
  Json v(raw);
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(v.Dump(0), &parsed, &error)) << error;
  EXPECT_EQ(parsed.as_string(), raw);
}

TEST(ObsJsonTest, ParsesUnicodeEscapes) {
  Json parsed;
  std::string error;
  // "\u00e9" is é (U+00E9, two UTF-8 bytes), "\u2713" is ✓ (three bytes).
  ASSERT_TRUE(Json::Parse(R"("caf\u00e9 \u2713")", &parsed, &error)) << error;
  EXPECT_EQ(parsed.as_string(), "caf\xc3\xa9 \xe2\x9c\x93");
}

TEST(ObsJsonTest, NestedRoundTripPreservesStructure) {
  Json root = Json::Object();
  Json arr = Json::Array();
  arr.Push(Json(static_cast<int64_t>(1)));
  arr.Push(Json());  // null
  Json inner = Json::Object();
  inner.Set("flag", Json(false));
  arr.Push(std::move(inner));
  root.Set("items", std::move(arr));
  root.Set("empty_obj", Json::Object());
  root.Set("empty_arr", Json::Array());

  for (int indent : {0, 2, 4}) {
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::Parse(root.Dump(indent), &parsed, &error))
        << "indent=" << indent << ": " << error;
    // Canonical re-dump equality implies structural equality.
    EXPECT_EQ(parsed.Dump(0), root.Dump(0)) << "indent=" << indent;
  }
}

TEST(ObsJsonTest, ParseRejectsMalformedInput) {
  Json out;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "\"bad\\q\"", "\"\\u12\"", "nul"}) {
    EXPECT_FALSE(Json::Parse(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ObsJsonTest, ParseRejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  Json out;
  std::string error;
  EXPECT_FALSE(Json::Parse(deep, &out, &error));
}

TEST(ObsJsonTest, FindAndAtAccessors) {
  Json root = Json::Object();
  root.Set("x", Json(3.0));
  EXPECT_EQ(root.Find("missing"), nullptr);
  ASSERT_NE(root.Find("x"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("x")->as_double(), 3.0);
  EXPECT_EQ(Json(1.0).Find("x"), nullptr);  // Non-object: no lookup.
  Json arr = Json::Array();
  arr.Push(Json("a"));
  arr.Push(Json("b"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(1).as_string(), "b");
}

// ------------------------------------------------------------- Metrics --

TEST(ObsMetricsTest, CounterSumsAcrossThreads) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  MetricsRegistry::Counter* c = reg.GetCounter("obs_test.threads");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("obs_test.threads"), kThreads * kPerThread);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(ObsMetricsTest, GetCounterReturnsStablePointer) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricsRegistry::Counter* first = reg.GetCounter("obs_test.stable");
  // Registering unrelated instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("obs_test.filler." + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("obs_test.stable"), first);
}

TEST(ObsMetricsTest, GaugeStoresLastValue) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricsRegistry::Gauge* g = reg.GetGauge("obs_test.gauge");
  g->Set(2.5);
  g->Set(-1.25);
  EXPECT_DOUBLE_EQ(g->Value(), -1.25);
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauges.at("obs_test.gauge"), -1.25);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(ObsMetricsTest, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricsRegistry::Histogram* h = reg.GetHistogram("obs_test.hist");
  h->Reset();
  h->Observe(0.5);   // Bucket 0: v <= 1.
  h->Observe(1.0);   // Bucket 0.
  h->Observe(3.0);   // Bucket 1: [2, 4).
  h->Observe(1024);  // Bucket 10: [1024, 2048).
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 3.0 + 1024);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1024);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  h->Reset();
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST(ObsMetricsTest, HistogramMinMaxUnderConcurrency) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricsRegistry::Histogram* h = reg.GetHistogram("obs_test.hist_mt");
  h->Reset();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h, t] {
      for (int i = 1; i <= 1000; ++i) h->Observe(t * 1000 + i);
    });
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 4000u);
  EXPECT_DOUBLE_EQ(snap.min, 1);
  EXPECT_DOUBLE_EQ(snap.max, 4000);
}

TEST(ObsMetricsTest, CountMacroRespectsEnabledGate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  reg.set_enabled(false);
  FAIRSQG_COUNT("obs_test.gated");
  reg.set_enabled(true);
  FAIRSQG_COUNT("obs_test.gated");
  FAIRSQG_COUNT_N("obs_test.gated", 4);
  reg.set_enabled(false);
  FAIRSQG_COUNT("obs_test.gated");
  EXPECT_EQ(reg.GetCounter("obs_test.gated")->Value(), 5u);
  reg.Reset();
}

// --------------------------------------------------------------- Trace --

TEST(ObsTraceTest, ParseAndNameRoundTrip) {
  for (TraceDetail d :
       {TraceDetail::kOff, TraceDetail::kPhase, TraceDetail::kFull}) {
    TraceDetail parsed = TraceDetail::kOff;
    EXPECT_TRUE(ParseTraceDetail(TraceDetailName(d), &parsed));
    EXPECT_EQ(parsed, d);
  }
  TraceDetail out;
  EXPECT_FALSE(ParseTraceDetail("verbose", &out));
}

TEST(ObsTraceTest, NestedSpansLinkParents) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(TraceDetail::kFull);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner", TraceDetail::kFull);
      tracer.Instant("tick", TraceDetail::kFull);
    }
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  tracer.Disable();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  const SpanRecord* tick = nullptr;
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == "outer") outer = &s;
    if (std::string(s.name) == "inner") inner = &s;
    if (std::string(s.name) == "tick") tick = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(tick->parent, inner->id);
  EXPECT_TRUE(tick->instant);
  EXPECT_EQ(tick->dur_ns, 0);
  EXPECT_GE(inner->dur_ns, 0);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);
  EXPECT_LE(outer->start_ns, inner->start_ns);
}

TEST(ObsTraceTest, DetailGateSuppressesFullSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(TraceDetail::kPhase);
  {
    TraceSpan phase("phase_level");
    TraceSpan full("full_level", TraceDetail::kFull);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  tracer.Disable();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "phase_level");
}

TEST(ObsTraceTest, RingWrapCountsDropped) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(TraceDetail::kPhase);
  const size_t total = Tracer::kDefaultCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    TraceSpan s("wrap");
  }
  EXPECT_EQ(tracer.total_recorded(), total);
  EXPECT_EQ(tracer.dropped(), 100u);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), Tracer::kDefaultCapacity);
  tracer.Disable();
  // Re-enabling clears the buffer and the counters.
  tracer.Enable(TraceDetail::kPhase);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.Disable();
}

TEST(ObsTraceTest, ConcurrentSpansGetDistinctThreadIds) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(TraceDetail::kPhase);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan s("mt");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  std::vector<SpanRecord> spans = tracer.Snapshot();
  tracer.Disable();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * 50);
  std::vector<uint32_t> threads;
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.dur_ns, 0);
    threads.push_back(s.thread);
  }
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  EXPECT_EQ(threads.size(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace fairsqg::obs
